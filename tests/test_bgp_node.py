"""Tests for repro.bgp.node (route selection logic)."""

import pytest

from repro.bgp.messages import RouteAdvertisement
from repro.bgp.node import BGPNode
from repro.bgp.policy import HopCountPolicy, LowestCostPolicy
from repro.exceptions import ProtocolError


def advert(sender, destination, path, cost, node_costs=None, prices=None):
    return RouteAdvertisement(
        sender=sender,
        destination=destination,
        path=path,
        cost=cost,
        node_costs=node_costs or {node: 1.0 for node in path},
        prices=prices or {},
    )


class TestReceive:
    def test_stores_table(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0)])
        assert node.rib_in.advert(1, 2) is not None

    def test_rejects_spoofed_sender(self):
        node = BGPNode(0, 1.0)
        with pytest.raises(ProtocolError, match="session"):
            node.receive_table(1, [advert(2, 3, (2, 3), 0.0)])


class TestDecide:
    def test_adopts_single_route(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0, {1: 3.0, 2: 1.0})])
        changed = node.decide()
        assert changed == {2}
        entry = node.route(2)
        assert entry.path == (0, 1, 2)
        assert entry.cost == 3.0  # neighbor 1 becomes transit

    def test_direct_neighbor_destination_costs_zero(self):
        node = BGPNode(0, 1.0)
        node.receive_table(
            2, [advert(2, 2, (2,), 0.0, {2: 5.0})]
        )
        node.decide()
        assert node.route(2).cost == 0.0
        assert node.route(2).path == (0, 2)

    def test_prefers_cheaper_route(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 9, (1, 9), 0.0, {1: 10.0, 9: 1.0})])
        node.receive_table(2, [advert(2, 9, (2, 9), 0.0, {2: 3.0, 9: 1.0})])
        node.decide()
        assert node.route(9).path == (0, 2, 9)

    def test_loop_suppression(self):
        node = BGPNode(0, 1.0)
        # neighbor's path already contains us -> unusable
        node.receive_table(1, [advert(1, 9, (1, 0, 9), 1.0, {1: 1.0, 0: 1.0, 9: 1.0})])
        node.decide()
        assert node.route(9) is None

    def test_tie_break_matches_policy(self):
        node = BGPNode(0, 1.0, policy=LowestCostPolicy())
        node.receive_table(1, [advert(1, 9, (1, 9), 0.0, {1: 2.0, 9: 1.0})])
        node.receive_table(2, [advert(2, 9, (2, 9), 0.0, {2: 2.0, 9: 1.0})])
        node.decide()
        # equal cost, equal hops: lexicographic path -> via 1
        assert node.route(9).path == (0, 1, 9)

    def test_hopcount_policy_ignores_cost(self):
        node = BGPNode(0, 1.0, policy=HopCountPolicy())
        node.receive_table(1, [advert(1, 9, (1, 9), 0.0, {1: 100.0, 9: 1.0})])
        node.receive_table(
            2, [advert(2, 9, (2, 3, 9), 1.0, {2: 0.0, 3: 1.0, 9: 1.0})]
        )
        node.decide()
        assert node.route(9).path == (0, 1, 9)  # fewer hops despite cost 100

    def test_route_withdrawn_when_neighbor_table_loses_it(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 9, (1, 9), 0.0)])
        node.decide()
        assert node.route(9) is not None
        node.receive_table(1, [])
        changed = node.decide()
        assert node.route(9) is None
        assert 9 in changed

    def test_cost_snapshot_includes_self(self):
        node = BGPNode(0, 7.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0, {1: 3.0, 2: 1.0})])
        node.decide()
        assert node.route(2).node_costs[0] == 7.0

    def test_redeclaration_updates_snapshot(self):
        node = BGPNode(0, 7.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0, {1: 3.0, 2: 1.0})])
        node.decide()
        node.set_declared_cost(9.0)
        changed = node.decide()
        assert 2 in changed
        assert node.route(2).node_costs[0] == 9.0


class TestAdvertisements:
    def test_self_route_first(self):
        node = BGPNode(0, 2.5)
        adverts = node.advertisements()
        assert adverts[0].is_self_route
        assert adverts[0].node_costs[0] == 2.5

    def test_table_rows_follow(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0)])
        node.decide()
        adverts = node.advertisements()
        assert len(adverts) == 2
        assert adverts[1].destination == 2
        assert adverts[1].path == (0, 1, 2)

    def test_plain_node_has_no_prices(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0)])
        node.decide()
        assert all(not a.prices for a in node.advertisements())

    def test_restart_clears_state_and_bumps_generation(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0)])
        node.decide()
        generation = node.generation
        node.restart()
        assert node.generation == generation + 1
        assert node.route(2) is None
        assert node.rib_in.neighbors() == ()

    def test_table_size_entries(self):
        node = BGPNode(0, 1.0)
        node.receive_table(1, [advert(1, 2, (1, 2), 0.0)])
        node.decide()
        assert node.table_size_entries() == 6  # 3 path + 3 costs
