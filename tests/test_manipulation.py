"""Tests for repro.strategic.manipulation (the Sect. 7 closing problem)."""

import pytest

from repro.bgp.messages import RouteAdvertisement
from repro.graphs.generators import fig1_graph, integer_costs, random_biconnected_graph
from repro.strategic.manipulation import (
    ManipulativePriceNode,
    audit_advertisement,
    manipulation_outcome,
)
from repro.traffic.generators import uniform_traffic


class TestAudit:
    def test_honest_advert_passes(self):
        advert = RouteAdvertisement(
            sender=0, destination=2, path=(0, 1, 2), cost=3.0,
            node_costs={0: 1.0, 1: 3.0, 2: 5.0},
        )
        assert audit_advertisement(advert)

    def test_deflated_advert_fails(self):
        advert = RouteAdvertisement(
            sender=0, destination=2, path=(0, 1, 2), cost=2.0,
            node_costs={0: 1.0, 1: 3.0, 2: 5.0},
        )
        assert not audit_advertisement(advert)

    def test_missing_cost_fails(self):
        advert = RouteAdvertisement(
            sender=0, destination=2, path=(0, 1, 2), cost=3.0,
            node_costs={0: 1.0, 2: 5.0},
        )
        assert not audit_advertisement(advert)

    def test_self_route_passes(self):
        advert = RouteAdvertisement(
            sender=0, destination=0, path=(0,), cost=0.0, node_costs={0: 1.0}
        )
        assert audit_advertisement(advert)


class TestManipulativeNode:
    def test_rejects_negative_deflation(self):
        with pytest.raises(ValueError):
            ManipulativePriceNode(0, 1.0, deflate_by=-1.0)

    def test_zero_deflation_is_honest(self, fig1):
        traffic = dict(uniform_traffic(fig1).items())
        manipulator = max(fig1.nodes, key=fig1.degree)
        outcome = manipulation_outcome(fig1, manipulator, traffic, deflate_by=0.0)
        assert outcome.gain == pytest.approx(0.0)
        assert not outcome.caught  # nothing inconsistent to flag


class TestManipulationOutcome:
    def test_fig1_attack_profits_and_is_caught(self, fig1, labels):
        traffic = dict(uniform_traffic(fig1).items())
        outcome = manipulation_outcome(fig1, labels["B"], traffic, deflate_by=1.0)
        assert outcome.profitable
        assert outcome.caught

    @pytest.mark.parametrize("seed", range(3))
    def test_attack_never_goes_unaudited(self, seed):
        graph = random_biconnected_graph(
            10, 0.25, seed=seed, cost_sampler=integer_costs(1, 5)
        )
        traffic = dict(uniform_traffic(graph).items())
        candidates = [
            node for node in graph.nodes if graph.degree(node) < graph.num_nodes - 1
        ]
        manipulator = max(candidates, key=graph.degree)
        outcome = manipulation_outcome(graph, manipulator, traffic, deflate_by=1.0)
        # the simple deflation always leaves an inconsistent advert behind
        assert outcome.caught

    def test_attack_can_attract_traffic(self):
        graph = random_biconnected_graph(
            10, 0.25, seed=1, cost_sampler=integer_costs(1, 5)
        )
        traffic = dict(uniform_traffic(graph).items())
        candidates = [
            node for node in graph.nodes if graph.degree(node) < graph.num_nodes - 1
        ]
        manipulator = max(candidates, key=graph.degree)
        outcome = manipulation_outcome(graph, manipulator, traffic, deflate_by=2.0)
        assert (
            outcome.packets_carried_manipulated
            >= outcome.packets_carried_honest
        )
