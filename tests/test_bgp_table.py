"""Tests for repro.bgp.table (RouteEntry / AdjRIBIn)."""

import pytest

from repro.bgp.messages import RouteAdvertisement
from repro.bgp.table import AdjRIBIn, RouteEntry


def advert(sender, destination, path, cost=1.0):
    return RouteAdvertisement(
        sender=sender,
        destination=destination,
        path=path,
        cost=cost,
        node_costs={node: 1.0 for node in path},
    )


class TestRouteEntry:
    def test_properties(self):
        entry = RouteEntry(path=(0, 1, 2), cost=3.0, node_costs={0: 1, 1: 3, 2: 1})
        assert entry.destination == 2
        assert entry.next_hop == 1
        assert entry.hops == 2
        assert entry.transit == (1,)

    def test_self_route_has_no_next_hop(self):
        entry = RouteEntry(path=(5,), cost=0.0, node_costs={5: 1.0})
        with pytest.raises(ValueError):
            entry.next_hop

    def test_size_entries(self):
        entry = RouteEntry(path=(0, 1, 2), cost=3.0, node_costs={0: 1, 1: 3, 2: 1})
        assert entry.size_entries() == 6


class TestAdjRIBIn:
    def test_replace_and_query(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 2, 3))})
        assert rib.advert(1, 3) is not None
        assert rib.advert(1, 4) is None
        assert rib.advert(2, 3) is None

    def test_replacement_is_wholesale(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 2, 3)), 4: advert(1, 4, (1, 4))})
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 3))})
        assert rib.advert(1, 4) is None  # dropped by the new table

    def test_drop_neighbor(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 3))})
        rib.drop_neighbor(1)
        assert rib.advert(1, 3) is None
        assert rib.neighbors() == ()

    def test_destinations_union(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 3))})
        rib.replace_neighbor_table(2, {4: advert(2, 4, (2, 4))})
        assert rib.destinations() == (3, 4)

    def test_adverts_for(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 3))})
        rib.replace_neighbor_table(2, {3: advert(2, 3, (2, 3))})
        by_neighbor = rib.adverts_for(3)
        assert set(by_neighbor) == {1, 2}

    def test_size_entries(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(1, {3: advert(1, 3, (1, 2, 3))})
        assert rib.size_entries() == 6  # 3 path + 3 costs

    def test_iteration(self):
        rib = AdjRIBIn()
        rib.replace_neighbor_table(2, {})
        rib.replace_neighbor_table(1, {})
        assert list(rib) == [1, 2]
