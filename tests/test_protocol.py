"""Tests for repro.core.protocol and price_node: the end-to-end claim."""

import math

import pytest

from repro.core.convergence import convergence_bound
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import (
    distributed_mechanism,
    verify_against_centralized,
)
from repro.exceptions import MechanismError
from repro.graphs.generators import (
    clique_graph,
    fig1_graph,
    grid_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
    wheel_graph,
)
from repro.mechanism.vcg import compute_price_table


class TestFig1EndToEnd:
    @pytest.mark.parametrize("mode", list(UpdateMode))
    def test_exact_paper_prices(self, labels, mode):
        result = distributed_mechanism(fig1_graph(), mode=mode)
        assert result.price(labels["D"], labels["X"], labels["Z"]) == pytest.approx(3.0)
        assert result.price(labels["B"], labels["X"], labels["Z"]) == pytest.approx(4.0)
        assert result.price(labels["D"], labels["Y"], labels["Z"]) == pytest.approx(9.0)

    def test_off_path_price_zero(self, labels):
        result = distributed_mechanism(fig1_graph())
        assert result.price(labels["A"], labels["X"], labels["Z"]) == 0.0

    def test_paths_and_costs_exposed(self, labels):
        result = distributed_mechanism(fig1_graph())
        assert result.path(labels["X"], labels["Z"]) == (
            labels["X"], labels["B"], labels["D"], labels["Z"],
        )
        assert result.cost(labels["X"], labels["Z"]) == 3.0

    def test_converges_within_bound(self):
        graph = fig1_graph()
        result = distributed_mechanism(graph)
        assert result.stages <= convergence_bound(graph).stages

    def test_unknown_pair_raises(self, labels):
        result = distributed_mechanism(fig1_graph())
        with pytest.raises(MechanismError):
            result.path(labels["X"], 99)


FAMILY_CASES = [
    ("ring", lambda s: ring_graph(7, seed=s, cost_sampler=integer_costs(1, 4))),
    ("wheel", lambda s: wheel_graph(8, seed=s, cost_sampler=integer_costs(0, 4))),
    ("grid", lambda s: grid_graph(3, 3, seed=s, cost_sampler=integer_costs(1, 5))),
    ("clique", lambda s: clique_graph(6, seed=s, cost_sampler=integer_costs(0, 3))),
    ("random", lambda s: random_biconnected_graph(11, 0.25, seed=s, cost_sampler=integer_costs(0, 5))),
    ("isp", lambda s: isp_like_graph(13, seed=s, cost_sampler=integer_costs(1, 6))),
]


class TestAgreementSweep:
    @pytest.mark.parametrize("family,maker", FAMILY_CASES)
    @pytest.mark.parametrize("mode", list(UpdateMode))
    def test_sync_agreement_and_bound(self, family, maker, mode):
        for seed in range(3):
            graph = maker(seed)
            bound = convergence_bound(graph)
            result = distributed_mechanism(graph, mode=mode)
            verification = verify_against_centralized(result)
            assert verification.ok, f"{family}/{seed}: {verification.mismatches[:3]}"
            assert result.stages <= bound.stages, f"{family}/{seed}"

    @pytest.mark.parametrize("family,maker", FAMILY_CASES[:4])
    def test_async_agreement(self, family, maker):
        graph = maker(1)
        result = distributed_mechanism(graph, asynchronous=True, seed=5)
        assert verify_against_centralized(result).ok

    def test_modes_agree_with_each_other(self, small_random):
        monotone = distributed_mechanism(small_random, mode=UpdateMode.MONOTONE)
        recompute = distributed_mechanism(small_random, mode=UpdateMode.RECOMPUTE)
        for (pair, row) in monotone.price_rows().items():
            other = recompute.price_rows()[pair]
            assert set(row) == set(other)
            for k in row:
                assert row[k] == pytest.approx(other[k])


class TestVerificationReport:
    def test_counts(self, triangle):
        result = distributed_mechanism(triangle)
        report = verify_against_centralized(result)
        assert report.pairs_checked == 6
        assert report.ok
        report.raise_on_mismatch()  # no-op when clean

    def test_raise_on_mismatch(self, triangle):
        result = distributed_mechanism(triangle)
        report = verify_against_centralized(result)
        # forge a mismatch
        from repro.core.protocol import Mismatch

        report.mismatches.append(
            Mismatch("price", 0, 1, 2, 1.0, 2.0)
        )
        with pytest.raises(MechanismError, match="mismatch"):
            report.raise_on_mismatch()


class TestPriceNodeInternals:
    def test_price_rows_cover_exactly_transit(self, labels):
        result = distributed_mechanism(fig1_graph())
        node_x = result.node(labels["X"])
        row = node_x.price_rows[labels["Z"]]
        assert set(row) == {labels["B"], labels["D"]}

    def test_prices_converged_flag(self, labels):
        result = distributed_mechanism(fig1_graph())
        for node_id in fig1_graph().nodes:
            assert result.node(node_id).prices_converged()

    def test_price_query_defaults_to_zero(self, labels):
        result = distributed_mechanism(fig1_graph())
        assert result.node(labels["X"]).price(labels["A"], labels["Z"]) == 0.0

    def test_reset_prices_sets_infinity(self, labels):
        result = distributed_mechanism(fig1_graph())
        node = result.node(labels["X"])
        node.reset_prices()
        assert node.price_rows[labels["Z"]][labels["D"]] == math.inf

    def test_restart_clears_rows(self, labels):
        result = distributed_mechanism(fig1_graph())
        node = result.node(labels["X"])
        node.restart()
        assert node.price_rows == {}

    def test_advertised_prices_match_rows(self, labels):
        result = distributed_mechanism(fig1_graph())
        node = result.node(labels["X"])
        for advert in node.advertisements():
            if advert.destination == labels["Z"]:
                if advert.is_self_route:
                    continue
                assert dict(advert.prices) == node.price_rows[labels["Z"]]


class TestZeroCostGraphs:
    """Zero transit costs produce heavy ties; everything must still agree."""

    @pytest.mark.parametrize("mode", list(UpdateMode))
    def test_all_zero_costs(self, mode):
        graph = random_biconnected_graph(
            9, 0.3, seed=2, cost_sampler=lambda rng: 0.0
        )
        result = distributed_mechanism(graph, mode=mode)
        assert verify_against_centralized(result).ok

    @pytest.mark.parametrize("mode", list(UpdateMode))
    def test_mixed_zero_costs(self, mode):
        graph = random_biconnected_graph(
            10, 0.25, seed=4, cost_sampler=integer_costs(0, 1)
        )
        result = distributed_mechanism(graph, mode=mode)
        assert verify_against_centralized(result).ok
