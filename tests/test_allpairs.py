"""Tests for repro.routing.allpairs."""

import pytest

from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.routing.allpairs import all_pairs_lcp


class TestAllPairs:
    def test_covers_all_ordered_pairs(self, fig1):
        routes = all_pairs_lcp(fig1)
        n = fig1.num_nodes
        assert len(routes.paths) == n * (n - 1)

    def test_paths_have_right_endpoints(self, fig1):
        routes = all_pairs_lcp(fig1)
        for (source, destination), path in routes.paths.items():
            assert path[0] == source
            assert path[-1] == destination

    def test_costs_match_graph_path_cost(self, small_random):
        routes = all_pairs_lcp(small_random)
        for (source, destination), path in routes.paths.items():
            assert routes.cost(source, destination) == pytest.approx(
                small_random.path_cost(path)
            )

    def test_indicator(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        assert routes.indicator(labels["D"], labels["X"], labels["Z"])
        assert not routes.indicator(labels["A"], labels["X"], labels["Z"])
        # endpoints never count
        assert not routes.indicator(labels["X"], labels["X"], labels["Z"])

    def test_transit_nodes_per_destination(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        transit = routes.transit_nodes(labels["Z"])
        assert labels["D"] in transit
        assert labels["B"] in transit
        assert labels["Z"] not in transit

    def test_max_hops_is_d(self, fig1):
        routes = all_pairs_lcp(fig1)
        assert routes.max_hops() == 3

    def test_disconnected_raises(self):
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            edges=[(0, 1), (2, 3)],
        )
        with pytest.raises(DisconnectedGraphError):
            all_pairs_lcp(graph)

    def test_hops_helper(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        assert routes.hops(labels["X"], labels["Z"]) == 3

    def test_iteration_sorted(self, triangle):
        routes = all_pairs_lcp(triangle)
        pairs = list(routes)
        assert pairs == sorted(pairs)

    def test_symmetric_costs_on_undirected_graph(self, small_random):
        # bidirectional links + direction-free node costs make the cost
        # (not necessarily the path) symmetric
        routes = all_pairs_lcp(small_random)
        for source in small_random.nodes:
            for destination in small_random.nodes:
                if source < destination:
                    assert routes.cost(source, destination) == pytest.approx(
                        routes.cost(destination, source)
                    )
