"""Tests for the flat-CSR routing core and the ``flat`` engine.

The flat engine's correctness story has three independent layers, each
pinned here: the one-shot CSR build must equal the per-call matrix the
scipy engine constructs; in-place masking must implement ``G - k``
exactly (including the stored-zero round-trip for zero-cost nodes) and
restore the arrays verbatim; and the demand-restricted sweep must
reproduce the reference engine's prices, error classes, error
*messages*, and deterministic violation witness.  Cross-engine value
agreement is additionally covered by the differential harness
(``test_engine_differential.py``) and the golden fixtures -- the flat
engine registers like any other backend, so those parametrize over it
automatically.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

import repro.obs as obs
from repro.exceptions import (
    DisconnectedGraphError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    fig1_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    uniform_costs,
)
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import FlatEngine, FlatSweepStats, flat_price_rows, get_engine
from repro.routing.engines.vectorized import (
    _directed_weight_matrix,
    avoiding_costs_matrix,
    vcg_price_rows,
)
from repro.routing.flatgraph import build_flat_graph
from repro.types import costs_close


def zero_cost_graph() -> ASGraph:
    """A biconnected graph with a zero-cost node on transit paths."""
    return ASGraph(
        nodes=[(0, 2.0), (1, 0.0), (2, 3.0), (3, 1.0), (4, 4.0)],
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
    )


def cut_vertex_graph() -> ASGraph:
    """Two triangles sharing node 2: every cross pair transits 2."""
    return ASGraph(
        nodes=[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 5.0)],
        edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
    )


class TestFlatGraphBuild:
    @pytest.mark.parametrize(
        "factory",
        [fig1_graph, zero_cost_graph, lambda: isp_like_graph(20, seed=1)],
    )
    def test_matches_directed_weight_matrix(self, factory):
        graph = factory()
        flat = build_flat_graph(graph)
        expected, costs, index = _directed_weight_matrix(graph)
        assert flat.index == index
        np.testing.assert_array_equal(flat.costs, costs)
        np.testing.assert_array_equal(
            flat.matrix().toarray(), expected.toarray()
        )
        # the stored structure matches too, not just the dense values
        # (a dropped stored zero would be invisible in toarray())
        assert flat.num_stored == expected.nnz == 2 * graph.num_edges

    def test_index_arrays_are_csgraph_native(self):
        flat = build_flat_graph(fig1_graph())
        assert flat.indptr.dtype == np.int32
        assert flat.indices.dtype == np.int32

    def test_zero_cost_weights_are_stored(self):
        graph = zero_cost_graph()
        flat = build_flat_graph(graph)
        zero_in = flat.in_edge_positions(flat.index[1])
        assert zero_in.size > 0
        assert (flat.weights[zero_in] == 0.0).all()


class TestMasking:
    def test_masked_dijkstra_equals_avoiding_matrix(self):
        graph = isp_like_graph(18, seed=2, cost_sampler=integer_costs(1, 6))
        flat = build_flat_graph(graph)
        for k in graph.nodes:
            expected, index = avoiding_costs_matrix(graph, k)
            ki = index[k]
            with flat.masked(ki) as matrix:
                dist = csgraph_dijkstra(
                    matrix, directed=True, return_predecessors=False
                )
            transit = dist - flat.costs[np.newaxis, :]
            np.fill_diagonal(transit, 0.0)
            # rows/columns of k itself are mechanism-undefined; the
            # avoiding matrix pins them to inf, masking leaves k's
            # out-edges intact -- compare everywhere else.
            keep = np.ones(graph.num_nodes, dtype=bool)
            keep[ki] = False
            np.testing.assert_allclose(
                transit[np.ix_(keep, keep)], expected[np.ix_(keep, keep)]
            )

    def test_mask_restores_weights_verbatim(self):
        graph = zero_cost_graph()
        flat = build_flat_graph(graph)
        before = flat.weights.copy()
        for node in graph.nodes:
            ki = flat.index[node]
            with flat.masked(ki):
                masked = flat.in_edge_positions(ki)
                assert np.isinf(flat.weights[masked]).all()
            np.testing.assert_array_equal(flat.weights, before)
        # zero-cost node 1's stored zeros survived every round-trip
        assert (flat.weights[flat.in_edge_positions(flat.index[1])] == 0.0).all()

    def test_masking_is_o_deg_k(self):
        graph = isp_like_graph(20, seed=4)
        flat = build_flat_graph(graph)
        for node in graph.nodes:
            ki = flat.index[node]
            assert flat.in_edge_positions(ki).size == flat.degree(ki)
        assert sum(flat.degree(flat.index[v]) for v in graph.nodes) == flat.num_stored


class TestFlatPriceRows:
    @pytest.mark.parametrize(
        "factory",
        [
            fig1_graph,
            zero_cost_graph,
            lambda: random_biconnected_graph(
                14, 0.3, seed=9, cost_sampler=uniform_costs(0.0, 5.0)
            ),
        ],
    )
    def test_agrees_with_legacy_vectorized_rows(self, factory):
        graph = factory()
        routes = all_pairs_lcp(graph)
        expected = vcg_price_rows(graph, routes)
        actual = flat_price_rows(graph, routes)
        assert set(actual) == set(expected)
        for pair in expected:
            assert set(actual[pair]) == set(expected[pair])
            for k in expected[pair]:
                assert costs_close(actual[pair][k], expected[pair][k])

    def test_demand_restriction_stats(self):
        graph = isp_like_graph(40, seed=6, cost_sampler=integer_costs(1, 6))
        stats = FlatSweepStats()
        flat_price_rows(graph, stats=stats)
        n = graph.num_nodes
        assert stats.solves > 0
        # the whole point: far fewer distance rows than one full
        # Dijkstra per transit node would compute
        assert stats.rows < stats.solves * n
        assert stats.max_block_rows <= n
        assert stats.entries > 0
        assert stats.masked > 0


class TestErrorParity:
    def test_not_biconnected_matches_reference_witness(self):
        graph = cut_vertex_graph()
        with pytest.raises(NotBiconnectedError) as reference_error:
            get_engine("reference").price_table(graph)
        with pytest.raises(NotBiconnectedError) as flat_error:
            get_engine("flat").price_table(graph)
        assert str(flat_error.value) == str(reference_error.value)

    def test_negative_price_witness_matches_reference(self):
        # Theorem 1 prices are non-negative on consistent inputs, so
        # drive the defensive guard with inconsistent ones: routes
        # priced on a uniformly scaled-up copy of the graph select the
        # *same* paths (scaling preserves every comparison and
        # tie-break) but report 10x LCP costs, pushing every transit
        # price negative.  Both sweeps must pick the same witness.
        from repro.mechanism.vcg import compute_price_table

        graph = fig1_graph()
        scaled = ASGraph(
            nodes=[(n, graph.cost(n) * 10.0) for n in graph.nodes],
            edges=list(graph.edges),
        )
        expensive_routes = all_pairs_lcp(scaled)
        with pytest.raises(MechanismError) as reference_error:
            compute_price_table(graph, routes=expensive_routes)
        with pytest.raises(MechanismError) as flat_error:
            flat_price_rows(graph, routes=expensive_routes)
        assert "negative VCG price" in str(reference_error.value)
        assert str(flat_error.value) == str(reference_error.value)

    def test_cost_matrix_disconnected(self):
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            edges=[(0, 1), (2, 3)],
        )
        with pytest.raises(DisconnectedGraphError):
            get_engine("flat").cost_matrix(graph)


class TestFlatEngineSurface:
    def test_cost_matrix_matches_reference(self, fig1):
        reference = get_engine("reference").cost_matrix(fig1)
        flat = get_engine("flat").cost_matrix(fig1)
        assert flat.index == reference.index
        for i in fig1.nodes:
            for j in fig1.nodes:
                assert costs_close(flat.cost(i, j), reference.cost(i, j))

    def test_obs_counters(self, fig1):
        observer = obs.Obs(sinks=[obs.MemorySink()])
        table = FlatEngine().price_table(fig1, obs=observer)
        assert len(table.rows) > 0
        solves = observer.counter_total(obs.names.FLAT_SOLVES, engine="flat")
        rows = observer.counter_total(obs.names.FLAT_ROWS, engine="flat")
        masked = observer.counter_total(obs.names.FLAT_MASKED, engine="flat")
        assert solves > 0
        assert rows >= solves  # every solve computes at least one row
        assert masked > 0
        assert observer.counter_total(
            obs.names.PRICE_ROWS, engine="flat"
        ) == len(table.rows)
        count, _elapsed = observer.span_stats(obs.names.SPAN_ENGINE_PRICE_TABLE)
        assert count == 1

    def test_unobserved_call_emits_nothing(self, fig1):
        # no global observer, no explicit one: the engine must not
        # touch the default observer
        fresh = obs.reset_default()
        FlatEngine().price_table(fig1)
        assert fresh.counter_total(obs.names.FLAT_SOLVES, engine="flat") == 0
