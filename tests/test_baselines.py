"""Tests for repro.baselines (Nisan-Ronen, Hershberger-Suri, hop-count)."""

import math
import random

import pytest

from repro.baselines.hershberger_suri import (
    replacement_path_costs,
    replacement_path_costs_naive,
)
from repro.baselines.hopcount_bgp import hopcount_routes, route_stretch
from repro.baselines.nisan_ronen import (
    EdgeWeightedGraph,
    nisan_ronen_mechanism,
)
from repro.exceptions import GraphError, UnreachableError
from repro.graphs.generators import fig1_graph, integer_costs, random_biconnected_graph


def diamond():
    """Two parallel 2-edge routes between 0 and 3."""
    return EdgeWeightedGraph({
        (0, 1): 1.0, (1, 3): 2.0,   # top route, cost 3
        (0, 2): 2.0, (2, 3): 3.0,   # bottom route, cost 5
    })


def random_edge_graph(n, extra, seed):
    rng = random.Random(seed)
    costs = {}
    for i in range(n):
        u, v = i, (i + 1) % n
        costs[(min(u, v), max(u, v))] = rng.uniform(1.0, 10.0)
    while extra:
        u, v = rng.sample(range(n), 2)
        key = (min(u, v), max(u, v))
        if key not in costs:
            costs[key] = rng.uniform(1.0, 10.0)
            extra -= 1
    return EdgeWeightedGraph(costs)


class TestEdgeWeightedGraph:
    def test_shortest_path(self):
        cost, path = diamond().shortest_path(0, 3)
        assert cost == 3.0
        assert path == (0, 1, 3)

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            EdgeWeightedGraph({(0, 1): 1.0, (1, 0): 2.0})

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            EdgeWeightedGraph({(0, 0): 1.0})

    def test_negative_cost_rejected(self):
        with pytest.raises(GraphError):
            EdgeWeightedGraph({(0, 1): -1.0})

    def test_unreachable(self):
        graph = EdgeWeightedGraph({(0, 1): 1.0, (2, 3): 1.0})
        with pytest.raises(UnreachableError):
            graph.shortest_path(0, 3)
        assert graph.distance(0, 3) == math.inf

    def test_with_edge_cost(self):
        graph = diamond().with_edge_cost(0, 1, 10.0)
        cost, path = graph.shortest_path(0, 3)
        assert path == (0, 2, 3)
        assert cost == 5.0


class TestNisanRonen:
    def test_diamond_payments(self):
        result = nisan_ronen_mechanism(diamond(), 0, 3)
        assert result.path == (0, 1, 3)
        assert result.path_cost == 3.0
        # payment(e) = d_{e=inf} - d_{e=0}
        # removing (0,1): detour 5; setting it free: 0 + 2 = 2 -> pays 3
        assert result.payments[(0, 1)] == pytest.approx(3.0)
        # removing (1,3): detour 5; free: 1 + 0 = 1 -> pays 4
        assert result.payments[(1, 3)] == pytest.approx(4.0)
        assert result.total_payment == pytest.approx(7.0)
        assert result.overpayment_ratio == pytest.approx(7.0 / 3.0)

    def test_bridge_raises(self):
        graph = EdgeWeightedGraph({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 5.0, (2, 3): 1.0})
        with pytest.raises(UnreachableError):
            nisan_ronen_mechanism(graph, 0, 3)  # (2,3) is a bridge

    @pytest.mark.parametrize("seed", range(4))
    def test_formula_equivalence(self, seed):
        graph = random_edge_graph(9, 6, seed)
        rng = random.Random(seed)
        source, target = rng.sample(range(9), 2)
        result = nisan_ronen_mechanism(graph, source, target)
        for (u, v), payment in result.payments.items():
            marginal = (
                graph.cost(u, v)
                + graph.without_edge(u, v).distance(source, target)
                - result.path_cost
            )
            assert payment == pytest.approx(marginal)

    @pytest.mark.parametrize("seed", range(4))
    def test_payments_cover_costs(self, seed):
        graph = random_edge_graph(8, 5, seed)
        result = nisan_ronen_mechanism(graph, 0, 4)
        for (u, v), payment in result.payments.items():
            assert payment >= graph.cost(u, v) - 1e-9


class TestHershbergerSuri:
    @pytest.mark.parametrize("seed", range(6))
    def test_cut_scan_matches_naive(self, seed):
        graph = random_edge_graph(10, 8, seed)
        rng = random.Random(seed + 100)
        for _ in range(3):
            source, target = rng.sample(range(10), 2)
            fast = replacement_path_costs(graph, source, target)
            naive = replacement_path_costs_naive(graph, source, target)
            assert set(fast) == set(naive)
            for edge in naive:
                if math.isinf(naive[edge]):
                    assert math.isinf(fast[edge])
                else:
                    assert fast[edge] == pytest.approx(naive[edge]), (edge, seed)

    def test_bridge_reports_infinity(self):
        graph = EdgeWeightedGraph({(0, 1): 1.0, (1, 2): 1.0, (0, 2): 3.0, (2, 3): 1.0})
        fast = replacement_path_costs(graph, 0, 3)
        assert math.isinf(fast[(2, 3)])


class TestHopcountBaseline:
    def test_routes_cover_all_pairs(self, small_random):
        routes = hopcount_routes(small_random)
        n = small_random.num_nodes
        assert len(routes) == n * (n - 1)

    def test_hopcount_minimizes_hops(self, fig1, labels):
        routes = hopcount_routes(fig1)
        # X->Z: hop-count BGP prefers the 2-hop X-A-Z over the cheaper
        # 3-hop X-B-D-Z
        assert routes[(labels["X"], labels["Z"])] == (
            labels["X"], labels["A"], labels["Z"],
        )

    def test_stretch_fig1(self, fig1):
        report = route_stretch(fig1)
        # the X->Z pair pays 5 instead of 3: stretch 5/3
        assert report.max_stretch >= 5.0 / 3.0 - 1e-9
        assert report.pairs_suboptimal >= 1
        assert report.aggregate_stretch >= 1.0

    def test_stretch_never_below_one(self, small_random):
        report = route_stretch(small_random)
        assert report.mean_stretch >= 1.0 - 1e-9
        assert report.total_hopcount_cost >= report.total_lcp_cost - 1e-9
