"""Tests for repro.graphs.io."""

import json

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators import fig1_graph, isp_like_graph
from repro.graphs.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
)


class TestRoundTrip:
    def test_dict_round_trip(self, fig1):
        assert graph_from_dict(graph_to_dict(fig1)) == fig1

    def test_json_round_trip(self, fig1):
        assert graph_from_json(graph_to_json(fig1)) == fig1

    def test_round_trip_preserves_costs(self):
        graph = isp_like_graph(12, seed=3)
        restored = graph_from_json(graph_to_json(graph))
        for node in graph.nodes:
            assert restored.cost(node) == graph.cost(node)

    def test_json_is_valid_and_sorted(self, fig1):
        payload = json.loads(graph_to_json(fig1))
        assert payload["version"] == 1
        ids = [entry["id"] for entry in payload["nodes"]]
        assert ids == sorted(ids)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(GraphError, match="invalid JSON"):
            graph_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(GraphError, match="object"):
            graph_from_json("[1, 2]")

    def test_missing_keys(self):
        with pytest.raises(GraphError, match="malformed"):
            graph_from_dict({"nodes": [{"id": 0}]})

    def test_unsupported_version(self, fig1):
        payload = graph_to_dict(fig1)
        payload["version"] = 99
        with pytest.raises(GraphError, match="version"):
            graph_from_dict(payload)
