"""Tests for repro.graphs.generators."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.biconnectivity import is_biconnected
from repro.graphs.generators import (
    FAMILIES,
    SCALING_PRESETS,
    SCALING_SIZES,
    FIG1_COSTS,
    FIG1_LABELS,
    barabasi_albert_graph,
    clique_graph,
    fig1_graph,
    grid_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
    scaling_graph,
    uniform_costs,
    waxman_graph,
    wheel_graph,
)


class TestFig1:
    def test_structure(self):
        graph = fig1_graph()
        assert graph.num_nodes == 6
        assert graph.num_edges == 7

    def test_costs(self):
        graph = fig1_graph()
        for name, node in FIG1_LABELS.items():
            assert graph.cost(node) == FIG1_COSTS[name]

    def test_biconnected(self):
        assert is_biconnected(fig1_graph())

    def test_expected_adjacency(self):
        graph = fig1_graph()
        label = FIG1_LABELS
        assert graph.has_edge(label["X"], label["A"])
        assert graph.has_edge(label["A"], label["Z"])
        assert graph.has_edge(label["X"], label["B"])
        assert graph.has_edge(label["B"], label["D"])
        assert graph.has_edge(label["D"], label["Z"])
        assert graph.has_edge(label["Y"], label["D"])
        assert graph.has_edge(label["Y"], label["B"])
        assert not graph.has_edge(label["X"], label["Z"])


class TestCostSamplers:
    def test_uniform_in_range(self):
        import random

        sample = uniform_costs(2.0, 3.0)
        rng = random.Random(0)
        for _ in range(50):
            assert 2.0 <= sample(rng) <= 3.0

    def test_integer_costs_are_integral(self):
        import random

        sample = integer_costs(0, 4)
        rng = random.Random(0)
        values = {sample(rng) for _ in range(100)}
        assert values <= {0.0, 1.0, 2.0, 3.0, 4.0}
        assert len(values) > 1

    def test_invalid_ranges_rejected(self):
        with pytest.raises(GraphError):
            uniform_costs(5.0, 1.0)
        with pytest.raises(GraphError):
            integer_costs(-1, 4)


@pytest.mark.parametrize(
    "family,kwargs",
    [
        ("ring", {"n": 7}),
        ("wheel", {"n": 8}),
        ("clique", {"n": 5}),
        ("random", {"n": 12, "edge_probability": 0.2}),
        ("waxman", {"n": 12}),
        ("barabasi-albert", {"n": 12}),
        ("isp-like", {"n": 15}),
    ],
)
class TestFamilies:
    def test_biconnected(self, family, kwargs):
        graph = FAMILIES[family](seed=1, **kwargs)
        assert is_biconnected(graph)

    def test_deterministic_in_seed(self, family, kwargs):
        first = FAMILIES[family](seed=5, **kwargs)
        second = FAMILIES[family](seed=5, **kwargs)
        assert first == second

    def test_seed_changes_something(self, family, kwargs):
        first = FAMILIES[family](seed=1, **kwargs)
        second = FAMILIES[family](seed=2, **kwargs)
        # Either topology or at least one cost differs.
        assert first != second


class TestSpecificShapes:
    def test_ring_degree_two(self):
        graph = ring_graph(9)
        assert all(graph.degree(node) == 2 for node in graph.nodes)

    def test_ring_minimum_size(self):
        with pytest.raises(GraphError):
            ring_graph(2)

    def test_wheel_hub_degree(self):
        graph = wheel_graph(8)
        hub = 7
        assert graph.degree(hub) == 7

    def test_clique_edge_count(self):
        graph = clique_graph(6)
        assert graph.num_edges == 15

    def test_grid_shape(self):
        graph = grid_graph(3, 5)
        assert graph.num_nodes == 15
        # interior node has degree 4
        assert graph.degree(7) == 4
        # corner has degree 2
        assert graph.degree(0) == 2

    def test_grid_rejects_thin(self):
        with pytest.raises(GraphError):
            grid_graph(1, 5)

    def test_random_includes_hamiltonian_cycle(self):
        graph = random_biconnected_graph(8, edge_probability=0.0, seed=0)
        assert graph.num_edges == 8  # exactly the cycle

    def test_random_probability_bounds(self):
        with pytest.raises(GraphError):
            random_biconnected_graph(8, edge_probability=1.5)

    def test_barabasi_attachment_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, attachment=1)
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, attachment=3)

    def test_barabasi_min_degree(self):
        graph = barabasi_albert_graph(20, attachment=2, seed=1)
        assert min(graph.degree(node) for node in graph.nodes) >= 2

    def test_isp_like_multihoming(self):
        graph = isp_like_graph(20, seed=4)
        assert min(graph.degree(node) for node in graph.nodes) >= 2

    def test_isp_like_core_fraction_validation(self):
        with pytest.raises(GraphError):
            isp_like_graph(20, core_fraction=0.0)

    def test_waxman_minimum_size(self):
        with pytest.raises(GraphError):
            waxman_graph(2)


class TestScalingPresets:
    def test_registry_covers_families_and_sizes(self):
        assert SCALING_SIZES == (1000, 2000, 5000, 10000)
        expected = {
            f"{family}-{n}"
            for family in ("isp-like", "barabasi-albert")
            for n in SCALING_SIZES
        }
        assert set(SCALING_PRESETS) == expected
        for family, n, seed in SCALING_PRESETS.values():
            assert family in FAMILIES
            assert seed == n

    @pytest.mark.parametrize("preset", ["isp-like-1000", "barabasi-albert-1000"])
    def test_presets_build_biconnected(self, preset):
        graph = scaling_graph(preset)
        assert graph.num_nodes == 1000
        assert graph.num_edges >= graph.num_nodes  # biconnected implies >= n
        assert is_biconnected(graph)

    def test_barabasi_albert_10000_smoke(self):
        graph = scaling_graph("barabasi-albert-10000")
        assert graph.num_nodes == 10000
        assert graph.num_edges >= graph.num_nodes
        assert is_biconnected(graph)

    @pytest.mark.slow
    def test_isp_like_10000_smoke(self):
        # The internet-scale floor: a ~2000-node dense core (ring plus
        # p=0.5 chords, ~1M edges) with multihomed stubs.  Building it
        # is the expensive part; the structural checks are cheap.
        graph = scaling_graph("isp-like-10000")
        assert graph.num_nodes == 10000
        assert graph.num_edges > 500_000
        assert is_biconnected(graph)

    def test_presets_are_deterministic(self):
        first = scaling_graph("isp-like-1000")
        second = scaling_graph("isp-like-1000")
        assert first.edges == second.edges
        assert all(first.cost(v) == second.cost(v) for v in first.nodes)

    def test_unknown_preset_rejected(self):
        with pytest.raises(GraphError, match="unknown scaling preset"):
            scaling_graph("isp-like-999")
