"""Property tests for the parallel engine's determinism guarantees.

The parallel engine's contract is that parallelism is *invisible*: for
any biconnected instance, its routes and prices are bit-identical to
the reference engine's regardless of

* **worker count** (1 runs inline with no pool; 2 and 4 fork real
  worker processes), and
* **destination-shard order** (any partition of the destinations, in
  any order, merges to the same result).

Hypothesis draws random biconnected graphs (Hamiltonian cycle plus
chords, quantized costs so ties are frequent -- ties are where
nondeterminism would hide) and random shard permutations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import EngineError
from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import (
    ParallelEngine,
    all_pairs_sharded,
    price_table_sharded,
    shard_destinations,
)


@st.composite
def biconnected_graphs(draw, min_nodes=5, max_nodes=11):
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(
        st.lists(
            st.integers(0, 10).map(lambda v: v / 2.0),
            min_size=n, max_size=n,
        )
    )
    chord_pool = [(i, j) for i in range(n) for j in range(i + 2, n)
                  if not (i == 0 and j == n - 1)]
    chords = draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6)) if chord_pool else []
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


@settings(max_examples=8, deadline=None)
@given(biconnected_graphs())
def test_worker_count_invariance(graph):
    reference = compute_price_table(graph)
    reference_paths = all_pairs_lcp(graph).paths
    for workers in (1, 2, 4):
        engine = ParallelEngine(workers=workers)
        assert engine.all_pairs(graph).paths == reference_paths, workers
        assert engine.price_table(graph).rows == reference.rows, workers


@settings(max_examples=8, deadline=None)
@given(biconnected_graphs(), st.randoms(use_true_random=False))
def test_shard_order_invariance(graph, rng):
    """Any partition of the destinations, in any order, same answers."""
    reference = compute_price_table(graph)
    reference_paths = all_pairs_lcp(graph).paths

    destinations = list(graph.nodes)
    rng.shuffle(destinations)
    shard_count = rng.randint(1, len(destinations))
    shards = shard_destinations(destinations, shard_count)
    rng.shuffle(shards)

    routes = all_pairs_sharded(graph, shards, workers=2)
    assert routes.paths == reference_paths
    table = price_table_sharded(graph, shards, workers=2)
    assert table.rows == reference.rows


def test_shard_destinations_partitions():
    shards = shard_destinations(list(range(10)), 3)
    assert sorted(d for shard in shards for d in shard) == list(range(10))
    assert len(shards) == 3


def test_shard_destinations_caps_at_population():
    shards = shard_destinations([1, 2], 8)
    assert shards == [(1,), (2,)]


def test_sharded_rejects_non_partition(square):
    with pytest.raises(EngineError):
        all_pairs_sharded(square, [(0, 1)], workers=1)
    with pytest.raises(EngineError):
        price_table_sharded(square, [(0, 1, 2, 3, 3)], workers=1)


def test_invalid_worker_count_rejected():
    with pytest.raises(EngineError):
        ParallelEngine(workers=0)
    with pytest.raises(EngineError):
        ParallelEngine(shards_per_worker=0)


def test_default_worker_count_is_cpu_count():
    import os

    assert ParallelEngine().workers == (os.cpu_count() or 1)
    assert ParallelEngine(workers=3).workers == 3
