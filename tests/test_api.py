"""Tests for repro.api, the stable public facade."""

from __future__ import annotations

import repro.api as api


class TestSurface:
    def test_all_is_sorted(self):
        assert api.__all__ == sorted(api.__all__)

    def test_all_exports_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_is_reexport_not_copy(self):
        from repro.core.protocol import distributed_mechanism
        from repro.core.run import run
        from repro.graphs.asgraph import ASGraph
        from repro.mechanism.vcg import compute_price_table
        from repro.routing.allpairs import all_pairs_lcp
        from repro.routing.engines import get_engine

        assert api.ASGraph is ASGraph
        assert api.all_pairs_lcp is all_pairs_lcp
        assert api.compute_price_table is compute_price_table
        assert api.get_engine is get_engine
        assert api.run is run
        assert api.distributed_mechanism is distributed_mechanism

    def test_obs_is_the_obs_package(self):
        import repro.obs

        assert api.obs is repro.obs


class TestQuickstart:
    """The README quickstart, executed verbatim."""

    def test_quickstart_flow(self):
        graph = api.fig1_graph()
        table = api.compute_price_table(graph)
        result = api.run(graph)
        api.verify_against_centralized(result, table).raise_on_mismatch()

    def test_quickstart_observation(self):
        graph = api.fig1_graph()
        with api.obs.observed() as observer:
            api.run(graph)
        assert observer.counter_total(api.obs.names.MESSAGES) > 0
        assert observer.counter_total(api.obs.names.STAGES) > 0
        api.obs.reset_default()

    def test_engine_accepts_name_and_instance(self):
        graph = api.fig1_graph()
        by_name = api.compute_price_table(graph, engine="parallel")
        by_instance = api.compute_price_table(
            graph, engine=api.get_engine("parallel")
        )
        assert by_name.rows == by_instance.rows
