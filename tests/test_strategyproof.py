"""Tests for repro.mechanism.strategyproof (Theorem 1, empirically)."""

import pytest

from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.mechanism.strategyproof import (
    deviation_outcome,
    lie_grid,
    most_profitable,
    sweep_deviations,
    utility_under_declaration,
)
from repro.mechanism.vcg import compute_price_table
from repro.mechanism.welfare import node_utility


class TestLieGrid:
    def test_excludes_truth(self):
        assert 2.0 not in lie_grid(2.0)

    def test_nonnegative(self):
        assert all(lie >= 0.0 for lie in lie_grid(3.0))

    def test_zero_true_cost_still_gets_lies(self):
        lies = lie_grid(0.0)
        assert lies
        assert all(lie > 0.0 for lie in lies)


class TestDeviationOutcome:
    def test_gain_never_positive_fig1(self, fig1):
        traffic = {(i, j): 1.0 for i in fig1.nodes for j in fig1.nodes if i != j}
        table = compute_price_table(fig1)
        for node in fig1.nodes:
            for lie in lie_grid(fig1.cost(node)):
                outcome = deviation_outcome(
                    fig1, node, lie, traffic, truthful_table=table
                )
                assert not outcome.profitable, (node, lie, outcome.gain)

    def test_overstating_can_lose_traffic(self, fig1, labels):
        # D overstating pushes X->Z traffic to the A route; D then earns 0
        # on that pair, strictly less than its truthful utility.
        traffic = {(labels["X"], labels["Z"]): 1.0}
        outcome = deviation_outcome(fig1, labels["D"], 100.0, traffic)
        assert outcome.deviant_utility == 0.0
        # truthfully D is paid 3 and incurs 1 -> utility 2
        assert outcome.truthful_utility == 2.0
        assert outcome.gain == -2.0

    def test_understating_attracts_unprofitable_traffic(self, fig1, labels):
        # A understating to 0 attracts the X->Z packet but gets paid only
        # the VCG price; utility cannot exceed the truthful case.
        traffic = {(labels["X"], labels["Z"]): 1.0}
        outcome = deviation_outcome(fig1, labels["A"], 0.0, traffic)
        assert outcome.gain <= 1e-9

    def test_utility_under_declaration_truth_matches_direct(self, fig1, labels):
        traffic = {(labels["Y"], labels["Z"]): 1.0}
        table = compute_price_table(fig1)
        direct = node_utility(table, traffic, labels["D"])
        via_declaration = utility_under_declaration(
            fig1, labels["D"], fig1.cost(labels["D"]), traffic
        )
        assert via_declaration == pytest.approx(direct)


class TestSweep:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_profitable_lie_on_random_graphs(self, seed):
        graph = random_biconnected_graph(
            8, 0.3, seed=seed, cost_sampler=integer_costs(0, 5)
        )
        traffic = {(i, j): 1.0 for i in graph.nodes for j in graph.nodes if i != j}
        outcomes = sweep_deviations(graph, traffic, extra_random_lies=2, seed=seed)
        worst = most_profitable(outcomes)
        assert worst is not None
        assert worst.gain <= 1e-9

    def test_most_profitable_of_empty(self):
        assert most_profitable([]) is None

    def test_sweep_subset_of_nodes(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 1.0}
        outcomes = sweep_deviations(fig1, traffic, nodes=[labels["D"]])
        assert all(outcome.node == labels["D"] for outcome in outcomes)
