"""Tests for the repro-experiments CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "E1", "--scale", "full"])
        assert args.experiment_id == "E1"
        assert args.scale == "full"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "E12" in out

    def test_run_single(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_run_two_and_write_md(self, tmp_path, capsys, monkeypatch):
        # restrict to a fast subset via the runner by invoking run twice
        assert main(["run", "E2"]) == 0
        target = tmp_path / "out.md"
        # `all` is slow-ish but small scale; exercise the md path once
        # through a monkeypatched subset.
        import repro.cli as cli_module
        import repro.experiments.runner as runner_module

        original = runner_module.run_all

        def subset_run_all(scale="small", seed=0, only=None):
            return original(scale=scale, seed=seed, only=["E1", "E2"])

        monkeypatch.setattr(cli_module, "run_all", subset_run_all)
        assert main(["all", "--write-md", str(target)]) == 0
        assert target.exists()
        out = capsys.readouterr().out
        assert "summary: 2/2" in out
