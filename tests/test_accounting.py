"""Tests for repro.accounting (Section 6.4)."""

import math

import pytest

from repro.accounting.settlement import run_accounting, settle
from repro.accounting.tally import PacketTally
from repro.exceptions import MechanismError
from repro.mechanism.vcg import compute_price_table, payments
from repro.traffic.generators import gravity_traffic, uniform_traffic
from repro.traffic.matrix import TrafficMatrix


class TestPacketTally:
    def test_records_per_transit_charges(self, fig1, labels):
        table = compute_price_table(fig1)
        tally = PacketTally(labels["X"])
        tally.record_packets(labels["Z"], table.row(labels["X"], labels["Z"]))
        assert tally.owed(labels["D"]) == 3.0
        assert tally.owed(labels["B"]) == 4.0
        assert tally.owed(labels["A"]) == 0.0
        assert tally.packets_sent == 1.0

    def test_counts_accumulate(self, fig1, labels):
        table = compute_price_table(fig1)
        tally = PacketTally(labels["X"])
        row = table.row(labels["X"], labels["Z"])
        tally.record_packets(labels["Z"], row, count=2.0)
        tally.record_packets(labels["Z"], row, count=3.0)
        assert tally.owed(labels["D"]) == 15.0

    def test_rejects_negative_count(self, labels):
        tally = PacketTally(labels["X"])
        with pytest.raises(MechanismError):
            tally.record_packets(labels["Z"], {}, count=-1.0)

    def test_rejects_self_destination(self, labels):
        tally = PacketTally(labels["X"])
        with pytest.raises(MechanismError, match="self-traffic"):
            tally.record_packets(labels["X"], {})

    def test_rejects_unconverged_prices(self, labels):
        tally = PacketTally(labels["X"])
        with pytest.raises(MechanismError, match="converged"):
            tally.record_packets(labels["Z"], {labels["D"]: math.inf})

    def test_drain_resets(self, fig1, labels):
        table = compute_price_table(fig1)
        tally = PacketTally(labels["X"])
        tally.record_packets(labels["Z"], table.row(labels["X"], labels["Z"]))
        drained = tally.drain()
        assert drained[labels["D"]] == 3.0
        assert tally.total_owed == 0.0

    def test_snapshot_does_not_reset(self, fig1, labels):
        table = compute_price_table(fig1)
        tally = PacketTally(labels["X"])
        tally.record_packets(labels["Z"], table.row(labels["X"], labels["Z"]))
        snapshot = tally.snapshot()
        assert snapshot[labels["B"]] == 4.0
        assert tally.total_owed == 7.0


class TestSettlement:
    def test_settle_aggregates(self, fig1, labels):
        table = compute_price_table(fig1)
        t1 = PacketTally(labels["X"])
        t1.record_packets(labels["Z"], table.row(labels["X"], labels["Z"]))
        t2 = PacketTally(labels["Y"])
        t2.record_packets(labels["Z"], table.row(labels["Y"], labels["Z"]))
        report = settle([t1, t2])
        assert report.revenue[labels["D"]] == 12.0  # 3 + 9
        assert report.sources_settled == 2

    def test_run_accounting_matches_payments(self, fig1):
        table = compute_price_table(fig1)
        traffic = uniform_traffic(fig1, intensity=2.0)
        report, reference = run_accounting(table, traffic)
        for node in fig1.nodes:
            assert report.revenue.get(node, 0.0) == pytest.approx(
                reference.get(node, 0.0)
            )

    def test_run_accounting_gravity(self, small_random):
        table = compute_price_table(small_random)
        traffic = gravity_traffic(small_random, seed=3)
        report, reference = run_accounting(table, traffic)
        assert report.total() == pytest.approx(sum(reference.values()))

    def test_empty_traffic(self, fig1):
        table = compute_price_table(fig1)
        report, reference = run_accounting(table, TrafficMatrix({}))
        assert report.total() == 0.0
        assert all(value == 0.0 for value in reference.values())
