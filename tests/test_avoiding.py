"""Tests for repro.routing.avoiding (k-avoiding paths)."""

import pytest

from repro.exceptions import NotBiconnectedError, UnreachableError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.routing.avoiding import (
    avoiding_cost,
    avoiding_costs_for_destination,
    avoiding_path,
    avoiding_tree,
    max_avoiding_hops,
)
from repro.routing.dijkstra import route_tree


class TestAvoidingPath:
    def test_fig1_d_avoiding_from_x(self, fig1, labels):
        path = avoiding_path(fig1, labels["X"], labels["Z"], labels["D"])
        assert path == (labels["X"], labels["A"], labels["Z"])
        assert avoiding_cost(fig1, labels["X"], labels["Z"], labels["D"]) == 5.0

    def test_fig1_d_avoiding_from_y(self, fig1, labels):
        path = avoiding_path(fig1, labels["Y"], labels["Z"], labels["D"])
        assert path == (
            labels["Y"], labels["B"], labels["X"], labels["A"], labels["Z"]
        )
        assert avoiding_cost(fig1, labels["Y"], labels["Z"], labels["D"]) == 9.0

    def test_avoided_node_absent(self, small_random):
        nodes = small_random.nodes
        source, destination, k = nodes[0], nodes[5], nodes[2]
        if k in (source, destination):
            pytest.skip("degenerate draw")
        path = avoiding_path(small_random, source, destination, k)
        assert k not in path

    def test_avoiding_endpoint_rejected(self, fig1, labels):
        with pytest.raises(UnreachableError):
            avoiding_cost(fig1, labels["X"], labels["Z"], labels["X"])
        with pytest.raises(UnreachableError):
            avoiding_cost(fig1, labels["X"], labels["Z"], labels["Z"])

    def test_cut_vertex_raises(self):
        # two triangles sharing node 2: avoiding 2 disconnects sides
        graph = ASGraph(
            nodes=[(i, 1.0) for i in range(5)],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
        )
        with pytest.raises(UnreachableError):
            avoiding_cost(graph, 0, 4, 2)

    def test_avoiding_cost_at_least_lcp(self, small_random):
        tree_cache = {}
        for destination in small_random.nodes:
            tree_cache[destination] = route_tree(small_random, destination)
        for destination in small_random.nodes:
            tree = tree_cache[destination]
            for source in tree.sources():
                for k in tree.path(source)[1:-1]:
                    detour = avoiding_cost(small_random, source, destination, k)
                    assert detour >= tree.cost(source) - 1e-12


class TestBatchedTrees:
    def test_batched_matches_single(self, fig1, labels):
        Z = labels["Z"]
        transit = (labels["B"], labels["D"])
        trees = avoiding_costs_for_destination(fig1, Z, transit)
        for k in transit:
            single = avoiding_tree(fig1, Z, k)
            for source in single.sources():
                assert trees[k].cost(source) == single.cost(source)

    def test_destination_skipped(self, fig1, labels):
        trees = avoiding_costs_for_destination(
            fig1, labels["Z"], (labels["Z"], labels["D"])
        )
        assert labels["Z"] not in trees
        assert labels["D"] in trees


class TestMaxAvoidingHops:
    def test_fig1(self, fig1):
        assert max_avoiding_hops(fig1) == 4

    def test_raises_on_non_biconnected(self):
        graph = ASGraph(
            nodes=[(i, 1.0) for i in range(5)],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
        )
        with pytest.raises(NotBiconnectedError):
            max_avoiding_hops(graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_d_prime_at_least_d_is_not_guaranteed_but_both_positive(self, seed):
        graph = random_biconnected_graph(
            9, 0.3, seed=seed, cost_sampler=integer_costs(1, 5)
        )
        assert max_avoiding_hops(graph) >= 1
