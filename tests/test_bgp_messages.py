"""Tests for repro.bgp.messages."""

import pytest

from repro.bgp.messages import RouteAdvertisement
from repro.exceptions import ProtocolError


def make_advert(**overrides):
    fields = dict(
        sender=1,
        destination=3,
        path=(1, 2, 3),
        cost=5.0,
        node_costs={1: 2.0, 2: 5.0, 3: 1.0},
        prices={2: 6.0},
    )
    fields.update(overrides)
    return RouteAdvertisement(**fields)


class TestValidation:
    def test_happy_path(self):
        advert = make_advert()
        assert advert.hops == 2
        assert not advert.is_self_route

    def test_empty_path_rejected(self):
        with pytest.raises(ProtocolError, match="empty path"):
            make_advert(path=())

    def test_path_must_start_at_sender(self):
        with pytest.raises(ProtocolError, match="start"):
            make_advert(path=(2, 3))

    def test_path_must_end_at_destination(self):
        with pytest.raises(ProtocolError, match="end"):
            make_advert(path=(1, 2), destination=3)

    def test_loopy_path_rejected(self):
        with pytest.raises(ProtocolError, match="revisits"):
            make_advert(path=(1, 2, 1, 3))

    def test_self_route(self):
        advert = RouteAdvertisement(
            sender=4, destination=4, path=(4,), cost=0.0, node_costs={4: 1.0}
        )
        assert advert.is_self_route
        assert advert.hops == 0


class TestSenderCost:
    def test_reads_from_node_costs(self):
        assert make_advert().sender_cost == 2.0

    def test_missing_own_cost_raises(self):
        advert = make_advert(node_costs={2: 5.0, 3: 1.0})
        with pytest.raises(ProtocolError, match="its own cost"):
            advert.sender_cost


class TestSize:
    def test_size_entries(self):
        advert = make_advert()
        # 3 path entries + 3 cost entries + 1 price entry
        assert advert.size_entries() == 7

    def test_generation_default_zero(self):
        assert make_advert().generation == 0

    def test_generation_carried(self):
        assert make_advert(generation=3).generation == 3
