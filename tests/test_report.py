"""Tests for repro.analysis.report and the analysis sweeps."""

import pytest

from repro.analysis.convergence_stats import convergence_row, convergence_sweep
from repro.analysis.frugality import frugality_row, frugality_sweep
from repro.analysis.report import Table
from repro.graphs.generators import fig1_graph
from repro.traffic.generators import uniform_traffic


class TestTable:
    def test_render_contains_everything(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", True)
        table.add_note("a note")
        text = table.render()
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.5" in text
        assert "yes" in text
        assert "note: a note" in text

    def test_row_width_validation(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table(title="T", headers=["v"])
        table.add_row(3.0)
        table.add_row(float("inf"))
        table.add_row(float("nan"))
        table.add_row(0.333333333)
        text = table.render()
        assert "3" in text
        assert "inf" in text
        assert "nan" in text
        assert "0.3333" in text

    def test_markdown(self):
        table = Table(title="T", headers=["a"])
        table.add_row(1)
        md = table.to_markdown()
        assert md.startswith("### T")
        assert "| a |" in md
        assert "| 1 |" in md

    def test_str_is_render(self):
        table = Table(title="T", headers=["a"])
        assert str(table) == table.render()


class TestSweeps:
    def test_convergence_row_fields(self):
        graph = fig1_graph()
        row = convergence_row("fig1", graph)
        assert row.family == "fig1"
        assert row.n == 6
        assert row.d == 3
        assert row.d_prime == 4
        assert row.bound == 4
        assert row.within_bound
        assert row.prices_correct
        assert row.stages_routes_only <= row.d

    def test_convergence_sweep(self):
        rows = convergence_sweep([("fig1", fig1_graph())])
        assert len(rows) == 1

    def test_frugality_row(self):
        graph = fig1_graph()
        row = frugality_row("fig1", graph)
        assert row.max_ratio == pytest.approx(9.0)
        assert row.mean_ratio >= 1.0

    def test_frugality_row_with_traffic(self):
        graph = fig1_graph()
        row = frugality_row("fig1", graph, traffic=uniform_traffic(graph))
        assert row.aggregate_ratio >= 1.0

    def test_frugality_sweep(self):
        rows = frugality_sweep([("fig1", fig1_graph())])
        assert len(rows) == 1
