"""RPR007 clean fixture: same call shape, deterministic tie-breaking."""

from __future__ import annotations


def _tie_break(candidates):
    return min(candidates)


def _route(graph, destination):
    candidates = [destination]
    return _tie_break(candidates)


def all_pairs_lcp(graph, *, engine=None, sanitize=None, obs=None):
    routes = {}
    for destination in sorted(graph):
        routes[destination] = _route(graph, destination)
    return routes
