"""RPR010 fixture: a span opened imperatively and never closed."""

from __future__ import annotations


def leaky_stage(observer, graph):
    span = observer.span("stage")
    span.__enter__()
    total = len(graph)
    return total
