"""RPR010 clean fixture: every balanced way of opening a span."""

from __future__ import annotations

from contextlib import ExitStack


def with_stage(observer, graph):
    with observer.span("stage"):
        return len(graph)


def stacked_stage(observer, graph):
    with ExitStack() as stack:
        stack.enter_context(observer.span("stage"))
        return len(graph)


def factory_stage(observer, name):
    return observer.span(name)


def finally_stage(observer, graph):
    span = observer.span("stage")
    span.__enter__()
    try:
        return len(graph)
    finally:
        span.__exit__(None, None, None)
