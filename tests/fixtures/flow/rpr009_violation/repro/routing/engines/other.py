"""RPR009 fixture: ``all_pairs`` drifted -- ``obs`` became positional."""

from __future__ import annotations


class OtherEngine:
    name = "other"

    def all_pairs(self, graph, obs=None):
        return {}

    def price_table(self, graph, routes=None, *, obs=None):
        return {}
