"""RPR009 fixture: the reference engine's public signatures."""

from __future__ import annotations


class ReferenceEngine:
    name = "reference"

    def all_pairs(self, graph, *, obs=None):
        return {}

    def price_table(self, graph, routes=None, *, obs=None):
        return {}
