"""RPR008 clean fixture: caches only written inside commit methods."""

from __future__ import annotations


class IncrementalEngine:
    name = "incremental"

    def __init__(self):
        self._graph = None
        self._trees = {}
        self._avoiding = {}

    def _sync(self, graph):
        self._graph = graph
        self._trees = {}
        cache = self._avoiding
        cache.clear()

    def lookup(self, destination):
        return self._trees.get(destination)
