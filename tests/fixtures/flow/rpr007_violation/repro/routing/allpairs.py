"""RPR007 fixture: the entry point transitively reaches unseeded RNG.

``all_pairs_lcp`` itself is clean; the nondeterminism hides two calls
down (``all_pairs_lcp -> _route -> _tie_break``), which only an
interprocedural pass can see.
"""

from __future__ import annotations

import random


def _tie_break(candidates):
    return candidates[int(random.random() * len(candidates))]


def _route(graph, destination):
    candidates = [destination]
    return _tie_break(candidates)


def all_pairs_lcp(graph, *, engine=None, sanitize=None, obs=None):
    routes = {}
    for destination in sorted(graph):
        routes[destination] = _route(graph, destination)
    return routes
