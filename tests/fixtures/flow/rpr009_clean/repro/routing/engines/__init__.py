"""RPR009 fixture registry: reference plus one drifted engine."""

from __future__ import annotations

from repro.routing.engines.other import OtherEngine
from repro.routing.engines.reference import ReferenceEngine

_REGISTRY = {}


def register(cls):
    _REGISTRY[cls.name] = cls


register(ReferenceEngine)
register(OtherEngine)
