"""RPR008 fixture: epoch cache written outside the commit path.

``warm_poke`` is not one of the declared commit methods, so its writes
to ``self._trees`` / the ``self._avoiding`` alias must be flagged.
"""

from __future__ import annotations


class IncrementalEngine:
    name = "incremental"

    def __init__(self):
        self._graph = None
        self._trees = {}
        self._avoiding = {}

    def _sync(self, graph):
        self._graph = graph
        self._trees = {}

    def warm_poke(self, destination):
        self._trees[destination] = None
        cache = self._avoiding
        cache.clear()
