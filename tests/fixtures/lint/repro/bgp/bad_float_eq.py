"""Lint fixture: RPR001 violations (float equality on cost-like values)."""


def change_detect(old_cost, new_cost):
    if old_cost == new_cost:
        return False
    return True


def zero_price(price):
    return price == 0.0


def nan_guard(payment):
    return payment != payment
