"""Lint fixture: RPR005 violations (wall-clock reads in protocol code)."""

import time
from time import time as now


def stamp_stage():
    return time.time()


def stamp_stage_ns():
    return time.time_ns()


def stage_started_at():
    return now()


def monotonic_is_fine():
    return time.perf_counter()
