"""Lint fixture: RPR002 violations (mutating routing structures)."""


def poison_graph(self):
    self.graph.node_costs[3] = 0.0


def rewrite_entry(entry, new_path):
    entry.path = new_path


def grow_path(path, node):
    path.append(node)


def drop_node(graph, node):
    del graph.adjacency[node]
