"""Lint fixture: pragma-suppressed violations (must lint clean)."""

import random


def change_detect(old_cost, new_cost):
    return old_cost != new_cost  # repro-lint: ok(RPR001)


def jitter():
    return random.random()  # repro-lint: ok
