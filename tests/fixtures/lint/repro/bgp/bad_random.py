"""Lint fixture: RPR004 violations (unseeded randomness)."""

import random

import numpy as np
from random import shuffle


def jitter():
    return random.random()


def unseeded_rng():
    return random.Random()


def scramble(items):
    shuffle(items)
    return items


def legacy_numpy():
    return np.random.uniform(0.0, 1.0)


def unseeded_generator():
    return np.random.default_rng()
