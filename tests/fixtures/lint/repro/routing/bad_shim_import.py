"""Known-bad fixture: RPR011 -- imports of deprecated in-tree shims."""

import repro.routing.scipy_engine

from repro.routing.scipy_engine import all_pairs_costs

from repro.routing.engines.vectorized import vcg_price_rows


def uses_shim(graph):
    costs = all_pairs_costs(graph)
    return costs, repro.routing.scipy_engine, vcg_price_rows
