"""Known-bad fixture: RPR006 -- graph copies in routing hot paths."""


def detour_tree(graph, destination, k):
    masked = graph.without_node(k)
    return masked, destination


def all_detours(graph, destinations, route_tree):
    trees = []
    for j in sorted(destinations):
        trees.append(route_tree(graph.without_node(j), j))
    return trees


def nested_receiver(engine, k):
    return engine.graph().without_node(k)


def masked_view_is_fine(graph, k):
    return graph.masked_without_node(k)
