"""Lint fixture: RPR003 violations (unordered set iteration)."""

from typing import Set


def broadcast(neighbors: Set[int]):
    for neighbor in neighbors:
        yield neighbor


def first_transit(path):
    transit = set(path[1:-1])
    return [k for k in transit]


def literal_iteration():
    for node in {3, 1, 2}:
        yield node
