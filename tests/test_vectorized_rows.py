"""Tests for the vectorized price rows (`repro.routing.engines.vectorized`).

The legacy vectorized sweep is now **k-major and memory-bounded**: the
routes are inverted into per-transit-node demand, each dense detour
matrix is computed once, consumed and dropped, and the earliest
violation *in the reference iteration order* is raised afterwards.
These tests pin the three behaviors that restructuring could have
broken -- value agreement, error-witness parity, and the bounded
memory profile -- plus the sparse ``vcg_price_matrices`` contract
(stored structure includes exact-zero prices).
"""

from __future__ import annotations

import weakref

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.exceptions import MechanismError, NotBiconnectedError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    fig1_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
)
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines.vectorized import vcg_price_matrices, vcg_price_rows


class TestKMajorSweep:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference_table(self, seed):
        graph = random_biconnected_graph(
            12, 0.3, seed=seed, cost_sampler=integer_costs(0, 6)
        )
        reference = compute_price_table(graph)
        rows = vcg_price_rows(graph)
        # integer costs: the reassociated arithmetic is bit-identical
        assert rows == reference.rows

    def test_not_biconnected_witness_matches_reference(self):
        # two triangles glued at node 2: a cut vertex, many violations
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 5.0)],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
        )
        with pytest.raises(NotBiconnectedError) as reference_error:
            compute_price_table(graph)
        with pytest.raises(NotBiconnectedError) as legacy_error:
            vcg_price_rows(graph)
        assert str(legacy_error.value) == str(reference_error.value)

    def test_negative_price_witness_matches_reference(self):
        # routes priced against a uniformly scaled-up graph select the
        # same paths but carry 10x LCP costs: every price goes negative
        graph = fig1_graph()
        scaled = ASGraph(
            nodes=[(n, graph.cost(n) * 10.0) for n in graph.nodes],
            edges=list(graph.edges),
        )
        expensive_routes = all_pairs_lcp(scaled)
        with pytest.raises(MechanismError) as reference_error:
            compute_price_table(graph, routes=expensive_routes)
        with pytest.raises(MechanismError) as legacy_error:
            vcg_price_rows(graph, routes=expensive_routes)
        assert str(legacy_error.value) == str(reference_error.value)

    def test_at_most_one_detour_matrix_alive(self, monkeypatch):
        """The sweep consumes each dense detour matrix and drops it;
        the old behavior cached every one for the whole call."""
        import repro.routing.engines.vectorized as vectorized

        class TrackedArray(np.ndarray):
            """ndarray subclass so the matrices accept weakrefs."""

        alive = {"now": 0, "max": 0, "total": 0}
        real = vectorized.avoiding_costs_matrix

        def release():
            alive["now"] -= 1

        def tracking(graph, k):
            detours, index = real(graph, k)
            tracked = detours.view(TrackedArray)
            alive["now"] += 1
            alive["total"] += 1
            alive["max"] = max(alive["max"], alive["now"])
            weakref.finalize(tracked, release)
            return tracked, index

        monkeypatch.setattr(vectorized, "avoiding_costs_matrix", tracking)
        graph = isp_like_graph(60, seed=11, cost_sampler=integer_costs(1, 6))
        vcg_price_rows(graph, routes=all_pairs_lcp(graph))
        assert alive["total"] >= 10  # the bound below is meaningful
        assert alive["max"] <= 2  # the live one plus its successor


class TestSparsePriceMatrices:
    def test_structure_matches_rows(self):
        graph = isp_like_graph(20, seed=5, cost_sampler=integer_costs(1, 6))
        routes = all_pairs_lcp(graph)
        rows = vcg_price_rows(graph, routes)
        matrices = vcg_price_matrices(graph, routes)
        index = graph.index_of()
        expected_keys = {k for row in rows.values() for k in row}
        assert set(matrices) == expected_keys
        for k, matrix in matrices.items():
            assert isinstance(matrix, csr_matrix)
            assert matrix.shape == (graph.num_nodes, graph.num_nodes)
            demanded = {
                (index[i], index[j]) for (i, j), row in rows.items() if k in row
            }
            coo = matrix.tocoo()
            stored = set(zip(coo.row.tolist(), coo.col.tolist()))
            assert stored == demanded, k
            for (i, j), row in rows.items():
                if k in row:
                    assert matrix[index[i], index[j]] == row[k]

    def test_exact_zero_prices_are_stored(self):
        # a 4-cycle with two zero-cost parallel transit nodes: the
        # selected 0 -> 1 route transits one of them at price exactly
        # 0.0 (the alternate detour costs the same), which must remain
        # a *stored* entry of the sparse matrix
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 2.0), (2, 0.0), (3, 0.0)],
            edges=[(0, 2), (2, 1), (0, 3), (3, 1)],
        )
        routes = all_pairs_lcp(graph)
        rows = vcg_price_rows(graph, routes)
        zero_priced = [
            (pair, k)
            for pair, row in rows.items()
            for k, price in row.items()
            if price == 0.0
        ]
        assert zero_priced, "fixture no longer produces a zero price"
        matrices = vcg_price_matrices(graph, routes)
        index = graph.index_of()
        for (i, j), k in zero_priced:
            coo = matrices[k].tocoo()
            stored = set(zip(coo.row.tolist(), coo.col.tolist()))
            assert (index[i], index[j]) in stored

    def test_matrices_are_sparse_not_dense(self):
        graph = isp_like_graph(24, seed=8, cost_sampler=integer_costs(1, 6))
        matrices = vcg_price_matrices(graph)
        n = graph.num_nodes
        total_stored = sum(matrix.nnz for matrix in matrices.values())
        # the dense predecessor stored len(matrices) * n^2 floats; the
        # whole point of the sparse form is total storage O(n^2)-ish
        assert total_stored < len(matrices) * n * n / 4
        assert total_stored == sum(
            len(row) for row in vcg_price_rows(graph).values()
        )
