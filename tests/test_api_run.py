"""Signature/dispatch-parity suite for the unified ``api.run`` entry point.

``run`` must reproduce each of the four legacy behaviors exactly --
same report types, same numbers, same converged state -- while the
legacy names keep working behind a ``DeprecationWarning``.  The suite
also pins the dispatch validations (substrate-specific knobs rejected
on the wrong substrate), the uniform delay/MRAI spec coercion, and the
per-run ``sanitize=`` override.
"""

from __future__ import annotations

import inspect

import pytest

import repro.api as api
from repro.bgp.delays import ConstantDelay, LogNormalDelay, UniformDelay
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.bgp.timed import MRAI_PEER, MRAIConfig, TimedEngine
from repro.core.dynamics import DynamicsRun, TimedScenarioResult
from repro.core.protocol import DistributedPriceResult
from repro.exceptions import MechanismError, ProtocolError, SanitizerError
from repro.graphs.asgraph import ASGraph


@pytest.fixture
def line5():
    """Connected but not biconnected: the sanitizer must reject it."""
    return ASGraph(
        nodes=[(i, 1.0) for i in range(5)],
        edges=[(i, i + 1) for i in range(4)],
    )


def _price_state(result: DistributedPriceResult):
    return (result.stages, result.price_rows())


class TestDispatchParity:
    """run(...) == the legacy entry point it collapses, cell by cell."""

    def test_static_delta_matches_distributed_mechanism(self, fig1):
        unified = api.run(fig1)
        legacy = api.distributed_mechanism(fig1)
        assert isinstance(unified, DistributedPriceResult)
        assert _price_state(unified) == _price_state(legacy)

    def test_static_full_transport(self, fig1):
        unified = api.run(fig1, protocol="full")
        legacy = api.distributed_mechanism(fig1, protocol="full")
        assert _price_state(unified) == _price_state(legacy)
        # full tables really were exchanged: the engines record it
        assert unified.engine.incremental is False

    def test_static_asynchronous_seeded(self, square):
        unified = api.run(square, asynchronous=True, seed=11)
        legacy = api.distributed_mechanism(square, asynchronous=True, seed=11)
        assert _price_state(unified) == _price_state(legacy)

    def test_dynamic_scenario_matches(self, fig1):
        events = [LinkFailure(2, 3), CostChange(3, 7.0), LinkRecovery(2, 3)]
        unified = api.run(fig1, events, engine="incremental")
        legacy = api.dynamic_scenario(fig1, events, engine="incremental")
        assert isinstance(unified, DynamicsRun)
        assert unified.all_ok and unified.all_within_bound
        assert [e.stages for e in unified.epochs] == [
            e.stages for e in legacy.epochs
        ]
        assert [e.cold_stages for e in unified.epochs] == [
            e.cold_stages for e in legacy.epochs
        ]

    def test_timed_mechanism_matches(self, fig1):
        kwargs = dict(seed=7, delay=LogNormalDelay(-2.0, 0.8))
        unified = api.run(fig1, protocol="timed", **kwargs)
        legacy = api.timed_mechanism(fig1, **kwargs)
        assert isinstance(unified, DistributedPriceResult)
        assert unified.report.convergence_time == legacy.report.convergence_time
        assert unified.price_rows() == legacy.price_rows()

    def test_timed_scenario_matches(self, fig1):
        events = [(2.0, LinkFailure(2, 3)), (5.0, LinkRecovery(2, 3))]
        kwargs = dict(seed=3, delay=UniformDelay(0.1, 1.0))
        unified = api.run(fig1, events, protocol="timed", **kwargs)
        legacy = api.timed_scenario(fig1, events, **kwargs)
        assert isinstance(unified, TimedScenarioResult)
        assert unified.ok and legacy.ok
        assert unified.events_applied == legacy.events_applied
        assert unified.report.convergence_time == legacy.report.convergence_time

    def test_unknown_protocol_rejected(self, fig1):
        with pytest.raises(MechanismError, match="unknown protocol"):
            api.run(fig1, protocol="quic")


class TestDispatchValidation:
    """Substrate-specific knobs fail fast on the wrong substrate."""

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"delay": ConstantDelay(0.1)}, "timed-substrate knob"),
            ({"mrai": {"interval": 1.0}}, "timed-substrate knob"),
            ({"max_events": 10}, "timed event loop"),
            ({"engine": "incremental"}, "needs events="),
        ],
    )
    def test_staged_static_rejects_timed_knobs(self, fig1, kwargs, match):
        with pytest.raises(MechanismError, match=match):
            api.run(fig1, **kwargs)

    def test_timed_rejects_max_stages(self, fig1):
        with pytest.raises(MechanismError, match="max_stages"):
            api.run(fig1, protocol="timed", max_stages=5)

    def test_timed_rejects_asynchronous(self, fig1):
        with pytest.raises(MechanismError, match="asynchronous"):
            api.run(fig1, protocol="timed", asynchronous=True)

    def test_dynamic_rejects_asynchronous(self, fig1):
        with pytest.raises(MechanismError, match="static runs only"):
            api.run(fig1, [CostChange(3, 7.0)], asynchronous=True)

    def test_timed_rejects_engine(self, fig1):
        with pytest.raises(MechanismError, match="engine="):
            api.run(
                fig1,
                [(1.0, CostChange(3, 7.0))],
                protocol="timed",
                engine="incremental",
            )


class TestSpecCoercion:
    """str | DelayModel and dict | MRAIConfig, one parsing path."""

    def test_delay_spec_string_equals_model(self, fig1):
        by_spec = api.run(fig1, protocol="timed", seed=5, delay="constant:0.3")
        by_model = api.run(
            fig1, protocol="timed", seed=5, delay=ConstantDelay(0.3)
        )
        assert (
            by_spec.report.convergence_time == by_model.report.convergence_time
        )

    def test_mrai_dict_equals_config(self, fig1):
        spec = {"interval": 1.0, "mode": MRAI_PEER, "jitter": 0.25}
        by_dict = api.run(
            fig1, protocol="timed", seed=5, delay="uniform:0.1,1.0", mrai=spec
        )
        by_config = api.run(
            fig1,
            protocol="timed",
            seed=5,
            delay="uniform:0.1,1.0",
            mrai=MRAIConfig(**spec),
        )
        assert (
            by_dict.report.convergence_time
            == by_config.report.convergence_time
        )

    def test_engine_constructor_coerces_too(self, fig1):
        # The coercion lives in TimedEngine itself, so every caller --
        # CLI, benchmarks, direct construction -- shares it.
        engine = TimedEngine(fig1, delay="lognormal:-2.0,0.5", mrai={"interval": 2.0})
        assert engine.delay == LogNormalDelay(-2.0, 0.5)
        assert engine.mrai == MRAIConfig(2.0)

    def test_resolvers_are_exported(self):
        assert api.resolve_delay("constant:0.1") == ConstantDelay(0.1)
        assert api.resolve_delay(None) is None
        model = UniformDelay(0.2, 0.4)
        assert api.resolve_delay(model) is model
        config = MRAIConfig(1.5)
        assert api.resolve_mrai(config) is config
        assert api.resolve_mrai({"interval": 1.5}) == config
        assert api.resolve_mrai(None) is None

    @pytest.mark.parametrize(
        "bad", ["warp:1.0", "constant:a", 3.5, {"delay": 1}]
    )
    def test_malformed_delay_rejected(self, bad):
        with pytest.raises(ProtocolError):
            api.resolve_delay(bad)

    @pytest.mark.parametrize("bad", [{"cadence": 1.0}, "mrai:peer:1", 7])
    def test_malformed_mrai_rejected(self, bad):
        with pytest.raises(ProtocolError):
            api.resolve_mrai(bad)


class TestSanitizeOverride:
    def test_sanitize_true_enforces_preconditions(self, line5):
        with pytest.raises(SanitizerError, match=r"\[sanitize:biconnected\]"):
            api.run(line5, sanitize=True)

    def test_sanitize_false_disables_ambient_checks(self, line5):
        from repro.devtools import sanitize as sanitize_checks

        with sanitize_checks.sanitized():
            result = api.run(line5, sanitize=False)
        assert result.stages > 0  # routes exist; prices were not checked

    def test_override_is_scoped_to_the_run(self, fig1):
        from repro.devtools import sanitize as sanitize_checks

        assert not sanitize_checks.enabled()
        api.run(fig1, sanitize=True)
        assert not sanitize_checks.enabled()


class TestDeprecatedWrappers:
    """Old names warn but still produce the same reports."""

    def test_run_distributed_mechanism_warns(self, fig1):
        with pytest.deprecated_call(match="run_distributed_mechanism"):
            legacy = api.run_distributed_mechanism(fig1)
        assert _price_state(legacy) == _price_state(api.run(fig1))

    def test_run_timed_mechanism_warns(self, fig1):
        with pytest.deprecated_call(match="run_timed_mechanism"):
            legacy = api.run_timed_mechanism(
                fig1, seed=2, delay=ConstantDelay(0.2)
            )
        unified = api.run(fig1, protocol="timed", seed=2, delay="constant:0.2")
        assert (
            legacy.report.convergence_time == unified.report.convergence_time
        )

    def test_run_dynamic_scenario_warns(self, fig1):
        with pytest.deprecated_call(match="run_dynamic_scenario"):
            legacy = api.run_dynamic_scenario(fig1, [CostChange(3, 7.0)])
        assert legacy.all_ok

    def test_run_timed_scenario_warns(self, fig1):
        with pytest.deprecated_call(match="run_timed_scenario"):
            legacy = api.run_timed_scenario(
                fig1, [(1.0, CostChange(3, 7.0))], seed=1
            )
        assert legacy.ok


class TestSignature:
    """The unified surface is keyword-only past (graph, events)."""

    def test_keyword_only_knobs(self):
        signature = inspect.signature(api.run)
        params = list(signature.parameters.values())
        assert [p.name for p in params[:2]] == ["graph", "events"]
        assert params[1].default is None
        for param in params[2:]:
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, param.name

    def test_every_legacy_knob_is_reachable(self):
        # The union of the four legacy signatures (minus the self-owned
        # dispatch axes) must survive in run()'s keyword surface.
        unified = set(inspect.signature(api.run).parameters)
        for legacy in (
            api.distributed_mechanism,
            api.timed_mechanism,
            api.dynamic_scenario,
            api.timed_scenario,
        ):
            for name in inspect.signature(legacy).parameters:
                assert name in unified, name
