"""Tests for repro.graphs.asgraph."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.asgraph import ASGraph


class TestConstruction:
    def test_basic_construction(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
        assert triangle.nodes == (0, 1, 2)

    def test_costs_are_floats(self, triangle):
        assert triangle.cost(1) == 2.0
        assert isinstance(triangle.cost(1), float)

    def test_duplicate_node_rejected(self):
        with pytest.raises(GraphError, match="duplicate node"):
            ASGraph(nodes=[(0, 1.0), (0, 2.0)])

    def test_negative_node_id_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            ASGraph(nodes=[(-1, 1.0)])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ASGraph(nodes=[(0, -1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            ASGraph(nodes=[(0, 1.0)], edges=[(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate link"):
            ASGraph(nodes=[(0, 1.0), (1, 1.0)], edges=[(0, 1), (1, 0)])

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(GraphError, match="unknown node"):
            ASGraph(nodes=[(0, 1.0), (1, 1.0)], edges=[(0, 2)])

    def test_from_edges_infers_nodes(self):
        graph = ASGraph.from_edges([(0, 1), (1, 2)], costs={1: 5.0}, default_cost=2.0)
        assert graph.nodes == (0, 1, 2)
        assert graph.cost(1) == 5.0
        assert graph.cost(0) == 2.0

    def test_zero_cost_allowed(self):
        graph = ASGraph(nodes=[(0, 0.0), (1, 0.0)], edges=[(0, 1)])
        assert graph.cost(0) == 0.0


class TestAccess:
    def test_neighbors_sorted(self, fig1):
        assert fig1.neighbors(3) == (2, 4, 5)  # D: B, Y, Z

    def test_neighbors_unknown_node(self, fig1):
        with pytest.raises(GraphError, match="unknown node"):
            fig1.neighbors(99)

    def test_degree(self, fig1):
        assert fig1.degree(3) == 3

    def test_has_edge_symmetric(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)
        assert not triangle.has_edge(0, 99)

    def test_contains(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle

    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert list(triangle) == [0, 1, 2]

    def test_costs_returns_copy(self, triangle):
        costs = triangle.costs()
        costs[0] = 999.0
        assert triangle.cost(0) == 1.0

    def test_edges_normalized(self, fig1):
        for u, v in fig1.edges:
            assert u < v

    def test_index_of_is_dense(self, fig1):
        index = fig1.index_of()
        assert sorted(index.values()) == list(range(fig1.num_nodes))


class TestPathCost:
    def test_endpoints_free(self, triangle):
        # path 0 - 1: no intermediate nodes
        assert triangle.path_cost((0, 1)) == 0.0

    def test_single_transit(self, triangle):
        assert triangle.path_cost((0, 1, 2)) == 2.0

    def test_fig1_worked_example(self, fig1, labels):
        X, B, D, Z = labels["X"], labels["B"], labels["D"], labels["Z"]
        assert fig1.path_cost((X, B, D, Z)) == 3.0

    def test_rejects_short_path(self, triangle):
        with pytest.raises(GraphError, match="at least two"):
            triangle.path_cost((0,))

    def test_rejects_revisit(self, square):
        with pytest.raises(GraphError, match="revisits"):
            square.path_cost((0, 1, 0, 3))

    def test_rejects_missing_link(self, square):
        with pytest.raises(GraphError, match="missing link"):
            square.path_cost((0, 2))


class TestDerivation:
    def test_with_cost(self, triangle):
        derived = triangle.with_cost(1, 10.0)
        assert derived.cost(1) == 10.0
        assert triangle.cost(1) == 2.0  # original untouched
        assert derived.edges == triangle.edges

    def test_with_cost_unknown_node(self, triangle):
        with pytest.raises(GraphError):
            triangle.with_cost(99, 1.0)

    def test_with_costs_bulk(self, triangle):
        derived = triangle.with_costs({0: 9.0, 2: 8.0})
        assert derived.cost(0) == 9.0
        assert derived.cost(1) == 2.0
        assert derived.cost(2) == 8.0

    def test_with_costs_unknown_node(self, triangle):
        with pytest.raises(GraphError, match="unknown nodes"):
            triangle.with_costs({99: 1.0})

    def test_without_node(self, fig1, labels):
        derived = fig1.without_node(labels["D"])
        assert labels["D"] not in derived
        assert derived.num_nodes == 5
        assert all(labels["D"] not in edge for edge in derived.edges)

    def test_without_edge(self, square):
        derived = square.without_edge(0, 1)
        assert not derived.has_edge(0, 1)
        assert derived.num_edges == 3
        assert derived.num_nodes == 4

    def test_without_missing_edge(self, square):
        with pytest.raises(GraphError, match="no link"):
            square.without_edge(0, 2)

    def test_with_edge(self, square):
        derived = square.with_edge(0, 2)
        assert derived.has_edge(0, 2)
        assert derived.num_edges == 5

    def test_equality(self, triangle):
        clone = ASGraph(
            nodes=[(0, 1.0), (1, 2.0), (2, 4.0)],
            edges=[(0, 2), (1, 2), (0, 1)],  # different order
        )
        assert triangle == clone
        assert triangle != triangle.with_cost(0, 9.0)


class TestMaskedView:
    """masked_without_node must be read-equivalent to without_node."""

    def test_view_copy_equivalence(self, fig1):
        for masked in fig1.nodes:
            view = fig1.masked_without_node(masked)
            copy = fig1.without_node(masked)
            assert view.nodes == copy.nodes
            assert view.num_nodes == copy.num_nodes
            assert len(view) == len(copy)
            assert list(view) == list(copy)
            for node in copy.nodes:
                assert view.neighbors(node) == copy.neighbors(node)
                assert view.degree(node) == copy.degree(node)
                assert view.cost(node) == copy.cost(node)
                assert (node in view) == (node in copy)
            assert masked not in view
            for u in fig1.nodes:
                for v in fig1.nodes:
                    assert view.has_edge(u, v) == copy.has_edge(u, v)

    def test_view_route_trees_match_copy(self, fig1):
        from repro.routing.dijkstra import route_tree

        for masked in fig1.nodes:
            for destination in fig1.nodes:
                if destination == masked:
                    continue
                via_view = route_tree(fig1.masked_without_node(masked), destination)
                via_copy = route_tree(fig1.without_node(masked), destination)
                assert via_view.parents == via_copy.parents
                for source in via_copy.sources():
                    assert via_view.path(source) == via_copy.path(source)
                    assert via_view.cost(source) == via_copy.cost(source)

    def test_view_is_copy_free(self, fig1):
        view = fig1.masked_without_node(0)
        assert view.masked == 0
        # snapshot-of-reference: no adjacency/cost dicts of its own
        assert not hasattr(view, "__dict__")

    def test_view_masked_node_queries_raise(self, fig1):
        view = fig1.masked_without_node(2)
        with pytest.raises(GraphError, match="unknown node"):
            view.neighbors(2)
        with pytest.raises(GraphError, match="unknown node"):
            view.cost(2)

    def test_view_unknown_masked_node_rejected(self, fig1):
        with pytest.raises(GraphError, match="unknown node"):
            fig1.masked_without_node(99)

    def test_view_repr(self, triangle):
        assert "MaskedGraphView" in repr(triangle.masked_without_node(1))


class TestConnectivity:
    def test_connected(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        graph = ASGraph(nodes=[(0, 1.0), (1, 1.0), (2, 1.0)], edges=[(0, 1)])
        assert not graph.is_connected()

    def test_empty_graph_connected(self):
        assert ASGraph(nodes=[]).is_connected()

    def test_repr(self, triangle):
        assert repr(triangle) == "ASGraph(n=3, m=3)"
