"""Golden regression fixtures: the Fig. 1 / Fig. 2 artifacts, bit for bit.

``tests/fixtures/golden/fig1_prices.json`` snapshots every selected
LCP, transit cost, and Theorem 1 price of the Figure 1 worked example,
plus the Figure 2 route tree ``T(Z)``.  Every registered engine must
reproduce the snapshot **exactly** under the default tie-break --
Figure 1 uses small integer costs, so even the vectorized engine's
float sums are exact and no epsilon is tolerated.  A diff here means
either a broken engine or a deliberate tie-break change (in which case
the fixture must be regenerated and the change called out in review).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.graphs.generators import fig1_graph
from repro.routing.dijkstra import route_tree
from repro.routing.engines import engine_names, get_engine

GOLDEN = Path(__file__).parent / "fixtures" / "golden" / "fig1_prices.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def fig1():
    return fig1_graph()


def _engine(name):
    options = {"workers": 2} if name == "parallel" else {}
    return get_engine(name, **options)


def test_fixture_is_complete(golden, fig1):
    n = fig1.num_nodes
    assert len(golden["price_table"]) == n * (n - 1)
    # the paper's worked numbers are in the snapshot
    assert golden["price_table"]["0->5"]["prices"] == {"2": 4.0, "3": 3.0}
    assert golden["price_table"]["4->5"]["prices"] == {"3": 9.0}


@pytest.mark.parametrize("name", engine_names())
def test_engine_reproduces_golden_prices(golden, fig1, name):
    engine = _engine(name)
    table = engine.price_table(fig1)
    routes = table.routes
    seen = set()
    for key, expected in golden["price_table"].items():
        source, destination = (int(part) for part in key.split("->"))
        seen.add((source, destination))
        # exact float equality: integer costs make every engine's
        # arithmetic bit-identical on this instance
        assert routes.cost(source, destination) == expected["cost"], (name, key)
        actual_prices = {
            str(k): price for k, price in table.row(source, destination).items()
        }
        assert actual_prices == expected["prices"], (name, key)
        if engine.carries_paths:
            assert list(routes.path(source, destination)) == expected["path"], (name, key)
    # and nothing beyond the snapshot
    stored = {pair for pair in table.rows}
    assert stored <= seen, name


@pytest.mark.parametrize("name", [n for n in engine_names() if n != "scipy"])
def test_engine_reproduces_fig2_tree(golden, fig1, name):
    engine = _engine(name)
    if not engine.carries_paths:
        pytest.skip(f"engine {name} is cost-only")
    expected = golden["fig2_tree"]
    destination = expected["destination"]
    tree = engine.all_pairs(fig1).tree(destination)
    actual = {str(node): tree.parent(node) for node in tree.sources()}
    assert actual == expected["parents"], name


def test_golden_matches_live_reference(golden, fig1):
    """The committed fixture itself is still what the reference
    tie-break produces (guards against stale snapshots)."""
    tree = route_tree(fig1, golden["fig2_tree"]["destination"])
    actual = {str(node): tree.parent(node) for node in tree.sources()}
    assert actual == golden["fig2_tree"]["parents"]
