"""Tests for repro.strategic (agents, game, best response)."""

import random

import pytest

from repro.graphs.generators import fig1_graph, integer_costs, random_biconnected_graph
from repro.strategic.agents import (
    OverstateAgent,
    RandomLiar,
    TruthfulAgent,
    UnderstateAgent,
)
from repro.strategic.bestresponse import best_response
from repro.strategic.game import play_declaration_game
from repro.traffic.generators import uniform_traffic


class TestAgents:
    def test_truthful(self):
        assert TruthfulAgent().declare(3.0, random.Random(0)) == 3.0

    def test_overstate(self):
        agent = OverstateAgent(factor=2.0, offset=1.0)
        assert agent.declare(3.0, random.Random(0)) == 7.0

    def test_overstate_validation(self):
        with pytest.raises(ValueError):
            OverstateAgent(factor=0.5)

    def test_understate(self):
        assert UnderstateAgent(factor=0.5).declare(4.0, random.Random(0)) == 2.0

    def test_understate_validation(self):
        with pytest.raises(ValueError):
            UnderstateAgent(factor=1.5)

    def test_random_liar_in_range(self):
        agent = RandomLiar(spread=2.0)
        rng = random.Random(1)
        for _ in range(20):
            lie = agent.declare(3.0, rng)
            assert 0.0 <= lie <= 7.0

    def test_random_liar_validation(self):
        with pytest.raises(ValueError):
            RandomLiar(spread=0.0)


class TestDeclarationGame:
    def test_all_truthful_no_regret(self, fig1):
        traffic = uniform_traffic(fig1)
        outcome = play_declaration_game(fig1, {}, traffic)
        for node in fig1.nodes:
            assert outcome.regret(node) == 0.0
        assert not outcome.any_liar_beat_truth

    def test_liars_never_beat_truth(self, fig1, labels):
        traffic = uniform_traffic(fig1)
        strategies = {
            labels["D"]: OverstateAgent(factor=2.0),
            labels["B"]: UnderstateAgent(factor=0.5),
            labels["A"]: RandomLiar(),
        }
        outcome = play_declaration_game(fig1, strategies, traffic, seed=3)
        assert not outcome.any_liar_beat_truth
        # regret is gain from switching to truth: must be >= 0
        for node in strategies:
            assert outcome.regret(node) >= -1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graph_games(self, seed):
        graph = random_biconnected_graph(
            8, 0.3, seed=seed, cost_sampler=integer_costs(1, 5)
        )
        traffic = uniform_traffic(graph)
        strategies = {
            node: RandomLiar() for node in list(graph.nodes)[::2]
        }
        outcome = play_declaration_game(graph, strategies, traffic, seed=seed)
        assert not outcome.any_liar_beat_truth

    def test_declared_costs_recorded(self, fig1, labels):
        traffic = uniform_traffic(fig1)
        strategies = {labels["D"]: OverstateAgent(factor=3.0)}
        outcome = play_declaration_game(fig1, strategies, traffic)
        assert outcome.declared[labels["D"]] == 3.0  # true cost 1 * 3


class TestBestResponse:
    def test_truth_is_best_fig1(self, fig1):
        traffic = uniform_traffic(fig1)
        for node in fig1.nodes:
            response = best_response(fig1, node, traffic, grid_points=8,
                                     random_probes=4, seed=node)
            assert response.truth_is_best, (node, response)

    def test_truth_is_best_against_lying_opponents(self, fig1, labels):
        traffic = uniform_traffic(fig1)
        declared_others = {labels["B"]: 10.0, labels["A"]: 0.5}
        response = best_response(
            fig1, labels["D"], traffic, declared_others=declared_others,
            grid_points=8, random_probes=4,
        )
        assert response.truth_is_best

    def test_probe_count(self, fig1, labels):
        traffic = uniform_traffic(fig1)
        response = best_response(fig1, labels["D"], traffic,
                                 grid_points=5, random_probes=3)
        assert response.probes == 1 + 5 + 3
