"""Tests for repro.bgp.engine (synchronous and asynchronous)."""

import pytest

from repro.bgp.engine import AsynchronousEngine, SynchronousEngine
from repro.bgp.policy import HopCountPolicy
from repro.core.convergence import convergence_bound
from repro.exceptions import ConvergenceError, ProtocolError
from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.routing.allpairs import all_pairs_lcp


class TestSynchronousBasics:
    def test_requires_initialize_before_step(self, triangle):
        engine = SynchronousEngine(triangle)
        with pytest.raises(ProtocolError, match="initialize"):
            engine.step()

    def test_run_auto_initializes(self, triangle):
        engine = SynchronousEngine(triangle)
        report = engine.run()
        assert report.converged

    def test_quiescent_after_run(self, triangle):
        engine = SynchronousEngine(triangle)
        engine.initialize()
        engine.run()
        assert engine.quiescent

    def test_stage_budget_enforced(self, small_random):
        engine = SynchronousEngine(small_random)
        engine.initialize()
        with pytest.raises(ConvergenceError):
            engine.run(max_stages=1)

    def test_routes_match_centralized(self, small_random):
        engine = SynchronousEngine(small_random)
        engine.initialize()
        engine.run()
        routes = all_pairs_lcp(small_random)
        for source in small_random.nodes:
            for destination in small_random.nodes:
                if source == destination:
                    continue
                entry = engine.node(source).route(destination)
                assert entry is not None
                assert entry.path == routes.path(source, destination)
                assert entry.cost == routes.cost(source, destination)

    def test_converges_within_d(self, small_random):
        engine = SynchronousEngine(small_random)
        engine.initialize()
        report = engine.run()
        assert report.stages <= convergence_bound(small_random).d

    def test_message_accounting_positive(self, triangle):
        engine = SynchronousEngine(triangle)
        engine.initialize()
        report = engine.run()
        assert report.total_messages > 0
        assert report.total_entries_sent > 0
        assert len(report.per_stage) >= report.stages

    def test_state_report(self, small_random):
        engine = SynchronousEngine(small_random)
        engine.initialize()
        engine.run()
        state = engine.state_report()
        assert state.max_loc_rib > 0
        assert state.total_state > 0
        # plain BGP has no price entries
        assert state.max_price_entries == 0

    def test_hopcount_policy_converges(self, small_random):
        engine = SynchronousEngine(small_random, policy=HopCountPolicy())
        engine.initialize()
        report = engine.run()
        assert report.converged
        for source in small_random.nodes:
            for destination in small_random.nodes:
                if source != destination:
                    assert engine.node(source).route(destination) is not None


class TestSynchronousDynamics:
    def test_fail_link_reconverges(self, square):
        engine = SynchronousEngine(square)
        engine.initialize()
        engine.run()
        engine.fail_link(0, 1)
        report = engine.run()
        assert report.converged
        # 0 now reaches 1 the long way around
        assert engine.node(0).route(1).path == (0, 3, 2, 1)

    def test_fail_unknown_link(self, square):
        engine = SynchronousEngine(square)
        engine.initialize()
        with pytest.raises(ProtocolError):
            engine.fail_link(0, 2)

    def test_restore_link(self, square):
        engine = SynchronousEngine(square)
        engine.initialize()
        engine.run()
        engine.fail_link(0, 1)
        engine.run()
        engine.restore_link(0, 1)
        engine.run()
        assert engine.node(0).route(1).path == (0, 1)

    def test_change_cost_moves_traffic(self, fig1, labels):
        engine = SynchronousEngine(fig1)
        engine.initialize()
        engine.run()
        assert engine.node(labels["X"]).route(labels["Z"]).path[1] == labels["B"]
        # make D terribly expensive: X should reroute via A
        engine.change_cost(labels["D"], 50.0)
        engine.run()
        assert engine.node(labels["X"]).route(labels["Z"]).path == (
            labels["X"], labels["A"], labels["Z"],
        )


class TestAsynchronous:
    def test_matches_centralized_routes(self, small_random):
        engine = AsynchronousEngine(small_random, seed=11)
        engine.initialize()
        report = engine.run()
        assert report.converged
        routes = all_pairs_lcp(small_random)
        for source in small_random.nodes:
            for destination in small_random.nodes:
                if source != destination:
                    entry = engine.node(source).route(destination)
                    assert entry.path == routes.path(source, destination)

    @pytest.mark.parametrize("seed", range(4))
    def test_any_delay_schedule_converges_identically(self, seed):
        graph = random_biconnected_graph(
            8, 0.3, seed=seed, cost_sampler=integer_costs(0, 5)
        )
        routes = all_pairs_lcp(graph)
        engine = AsynchronousEngine(graph, seed=seed * 13 + 1)
        engine.initialize()
        engine.run()
        for source in graph.nodes:
            for destination in graph.nodes:
                if source != destination:
                    assert engine.node(source).route(destination).path == routes.path(
                        source, destination
                    )

    def test_delivery_budget(self, small_random):
        engine = AsynchronousEngine(small_random, seed=0)
        engine.initialize()
        with pytest.raises(ConvergenceError):
            engine.run(max_deliveries=3)

    def test_invalid_delays_rejected(self, triangle):
        with pytest.raises(ProtocolError):
            AsynchronousEngine(triangle, min_delay=0.0)
        with pytest.raises(ProtocolError):
            AsynchronousEngine(triangle, min_delay=2.0, max_delay=1.0)
