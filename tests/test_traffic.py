"""Tests for repro.traffic."""

import pytest

from repro.exceptions import TrafficMatrixError
from repro.graphs.generators import fig1_graph
from repro.traffic.generators import (
    gravity_traffic,
    hotspot_traffic,
    single_packet,
    sparse_traffic,
    uniform_traffic,
)
from repro.traffic.matrix import TrafficMatrix


class TestTrafficMatrix:
    def test_lookup_and_default(self):
        matrix = TrafficMatrix({(0, 1): 2.0})
        assert matrix[(0, 1)] == 2.0
        assert matrix[(1, 0)] == 0.0

    def test_zero_entries_dropped(self):
        matrix = TrafficMatrix({(0, 1): 0.0, (1, 2): 1.0})
        assert len(matrix) == 1
        assert (0, 1) not in matrix

    def test_rejects_self_traffic(self):
        with pytest.raises(TrafficMatrixError, match="self-traffic"):
            TrafficMatrix({(1, 1): 2.0})

    def test_rejects_negative(self):
        with pytest.raises(TrafficMatrixError, match="non-negative"):
            TrafficMatrix({(0, 1): -1.0})

    def test_rejects_nan(self):
        with pytest.raises(TrafficMatrixError):
            TrafficMatrix({(0, 1): float("nan")})

    def test_total_packets(self):
        matrix = TrafficMatrix({(0, 1): 2.0, (1, 2): 3.0})
        assert matrix.total_packets == 5.0

    def test_scaled(self):
        matrix = TrafficMatrix({(0, 1): 2.0}).scaled(3.0)
        assert matrix[(0, 1)] == 6.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(TrafficMatrixError):
            TrafficMatrix({(0, 1): 2.0}).scaled(-1.0)

    def test_restricted_to_validates_endpoints(self, fig1):
        matrix = TrafficMatrix({(0, 99): 1.0})
        with pytest.raises(TrafficMatrixError, match="outside"):
            matrix.restricted_to(fig1)

    def test_restricted_to_fluent(self, fig1):
        matrix = TrafficMatrix({(0, 5): 1.0})
        assert matrix.restricted_to(fig1) is matrix

    def test_pairs_sorted(self):
        matrix = TrafficMatrix({(2, 0): 1.0, (0, 1): 1.0})
        assert matrix.pairs() == ((0, 1), (2, 0))


class TestGenerators:
    def test_single_packet(self):
        matrix = single_packet(0, 5)
        assert matrix[(0, 5)] == 1.0
        assert matrix.total_packets == 1.0

    def test_uniform_covers_all_pairs(self, fig1):
        matrix = uniform_traffic(fig1, intensity=2.0)
        n = fig1.num_nodes
        assert len(matrix) == n * (n - 1)
        assert all(value == 2.0 for value in matrix.values())

    def test_uniform_rejects_negative(self, fig1):
        with pytest.raises(TrafficMatrixError):
            uniform_traffic(fig1, intensity=-1.0)

    def test_gravity_normalizes(self, fig1):
        matrix = gravity_traffic(fig1, seed=1, total=500.0)
        assert matrix.total_packets == pytest.approx(500.0)

    def test_gravity_deterministic(self, fig1):
        first = gravity_traffic(fig1, seed=2)
        second = gravity_traffic(fig1, seed=2)
        assert dict(first.items()) == dict(second.items())

    def test_hotspot_heavy_destinations(self, fig1):
        matrix = hotspot_traffic(fig1, hotspots=1, seed=0,
                                 hot_intensity=50.0, background=1.0)
        values = set(matrix.values())
        assert values == {1.0, 50.0}

    def test_hotspot_bounds(self, fig1):
        with pytest.raises(TrafficMatrixError):
            hotspot_traffic(fig1, hotspots=99)

    def test_sparse_density_zero_is_empty(self, fig1):
        assert len(sparse_traffic(fig1, density=0.0)) == 0

    def test_sparse_density_one_is_full(self, fig1):
        n = fig1.num_nodes
        assert len(sparse_traffic(fig1, density=1.0)) == n * (n - 1)

    def test_sparse_density_validated(self, fig1):
        with pytest.raises(TrafficMatrixError):
            sparse_traffic(fig1, density=2.0)
