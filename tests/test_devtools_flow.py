"""Tests for repro.devtools.flow (the interprocedural analyzer).

Four layers:

* fixture trees (one violating + one clean per rule RPR007-RPR010);
* seeded-corruption tests: copy the real ``src/repro`` tree, inject a
  defect the differential tests would need a lucky run to expose, and
  assert the analyzer pins it statically;
* determinism: analyzer output must be identical across repeated runs
  and across arbitrary input file orderings (Hypothesis);
* the baseline / suppression / CLI plumbing.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.devtools.flow import (
    FLOW_CODES,
    analyze_paths,
    check_suppressions,
    default_baseline_path,
    load_baseline,
    main,
    split_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def fixture_root(case: str) -> Path:
    return FIXTURES / case / "repro"


def codes_of(result) -> list:
    return [finding.code for finding in result.findings]


# ----------------------------------------------------------------------
# Fixture trees
# ----------------------------------------------------------------------
class TestFixtures:
    @pytest.mark.parametrize("code", [c.lower() for c in FLOW_CODES])
    def test_violation_fixture_flags_exactly_its_rule(self, code):
        result = analyze_paths([fixture_root(f"{code}_violation")])
        assert codes_of(result), f"{code}_violation produced no findings"
        assert set(codes_of(result)) == {code.upper()}

    @pytest.mark.parametrize("code", [c.lower() for c in FLOW_CODES])
    def test_clean_fixture_is_clean(self, code):
        result = analyze_paths([fixture_root(f"{code}_clean")])
        assert codes_of(result) == []

    def test_rpr007_witness_chain_names_the_origin(self):
        result = analyze_paths([fixture_root("rpr007_violation")])
        [finding] = result.findings
        assert "all_pairs_lcp" in finding.message
        assert "_route" in finding.message
        assert "_tie_break" in finding.message
        assert "random.random()" in finding.message

    def test_rpr008_catches_the_alias_write_too(self):
        result = analyze_paths([fixture_root("rpr008_violation")])
        lines = sorted(finding.line for finding in result.findings)
        assert len(lines) == 2  # direct write and `cache = self._avoiding`

    def test_rpr009_names_both_signatures(self):
        result = analyze_paths([fixture_root("rpr009_violation")])
        [finding] = result.findings
        assert "(self, graph, *, obs=None)" in finding.message
        assert "(self, graph, obs=None)" in finding.message

    def test_summaries_cover_every_function(self):
        result = analyze_paths([fixture_root("rpr007_violation")])
        assert "routing/allpairs.py::all_pairs_lcp" in result.summaries
        summary = result.summaries["routing/allpairs.py::all_pairs_lcp"]
        assert "reads-rng" in summary["effects"]

    def test_finding_keys_are_line_free(self):
        result = analyze_paths([fixture_root("rpr008_violation")])
        for finding in result.findings:
            assert str(finding.line) not in finding.key.split(":")


# ----------------------------------------------------------------------
# Seeded corruption of the real tree
# ----------------------------------------------------------------------
@pytest.fixture()
def corrupt_tree(tmp_path):
    """A private copy of ``src/repro`` to corrupt, plus the analyzer."""
    target = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, target)

    def run(relpath: str, transform):
        path = target / relpath
        path.write_text(transform(path.read_text(encoding="utf-8")))
        return analyze_paths([target], apply_suppressions=False)

    return run


class TestSeededCorruption:
    def test_clean_tree_is_clean(self):
        result = analyze_paths([SRC_REPRO])
        new, _ = split_baseline(result.findings, load_baseline(default_baseline_path()))
        assert new == []

    def test_rpr007_unseeded_rng_below_engine_entry(self, corrupt_tree):
        def inject(src):
            src = src.replace("import heapq", "import heapq\nimport random", 1)
            anchor = "def route_tree("
            i = src.index(anchor)
            end_doc = src.index('"""', src.index('"""', i) + 3) + 3
            return (
                src[:end_doc]
                + "\n    _jitter = random.random()  # injected defect"
                + src[end_doc:]
            )

        result = corrupt_tree("routing/dijkstra.py", inject)
        rpr007 = [f for f in result.findings if f.code == "RPR007"]
        assert rpr007, "injected RNG two+ calls below the entries not caught"
        # The defect surfaces at *every* engine entry that reaches Dijkstra.
        flagged = {finding.function for finding in rpr007}
        assert "all_pairs_lcp" in flagged
        assert any("ParallelEngine" in name for name in flagged)
        assert all("route_tree" in finding.message for finding in rpr007)

    def test_rpr008_cache_write_outside_commit_path(self, corrupt_tree):
        def inject(src):
            return src + (
                "\n    def warm_poke(self) -> None:\n"
                "        self._trees.clear()\n"
            )

        result = corrupt_tree("routing/engines/incremental.py", inject)
        rpr008 = [f for f in result.findings if f.code == "RPR008"]
        assert len(rpr008) == 1
        assert "_trees" in rpr008[0].message
        assert "warm_poke" in rpr008[0].message

    def test_rpr009_drifted_engine_signature(self, corrupt_tree):
        def inject(src):
            old = (
                "def all_pairs(\n"
                "        self,\n"
                "        graph: ASGraph,\n"
                "        *,\n"
                "        obs: Optional[obs_mod.Obs] = None,\n"
                "    )"
            )
            new = (
                "def all_pairs(\n"
                "        self,\n"
                "        graph: ASGraph,\n"
                "        obs: Optional[obs_mod.Obs] = None,\n"
                "    )"
            )
            assert old in src
            return src.replace(old, new, 1)

        result = corrupt_tree("routing/engines/incremental.py", inject)
        rpr009 = [f for f in result.findings if f.code == "RPR009"]
        assert len(rpr009) == 1
        assert "incremental" in rpr009[0].message

    def test_rpr010_unclosed_span(self, corrupt_tree):
        def inject(src):
            return src + (
                "\n\ndef _leaky_probe(observer):\n"
                '    span = observer.span("leak")\n'
                "    span.__enter__()\n"
                "    return 1\n"
            )

        result = corrupt_tree("core/protocol.py", inject)
        rpr010 = [f for f in result.findings if f.code == "RPR010"]
        assert len(rpr010) == 1
        assert rpr010[0].function == "_leaky_probe"


# ----------------------------------------------------------------------
# Determinism of the analyzer itself
# ----------------------------------------------------------------------
def _fixture_files(case: str) -> list:
    return sorted(fixture_root(case).rglob("*.py"))


class TestDeterminism:
    def test_repeated_runs_identical_on_real_tree(self):
        first = analyze_paths([SRC_REPRO])
        second = analyze_paths([SRC_REPRO])
        assert first.findings == second.findings
        assert first.summaries == second.summaries

    @given(order=st.permutations(_fixture_files("rpr009_violation")))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_summaries_independent_of_file_order(self, order):
        baseline = analyze_paths(_fixture_files("rpr009_violation"))
        shuffled = analyze_paths(order)
        assert shuffled.findings == baseline.findings
        assert shuffled.summaries == baseline.summaries

    @given(order=st.permutations(_fixture_files("rpr007_violation")))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_witness_chains_independent_of_file_order(self, order):
        baseline = analyze_paths(_fixture_files("rpr007_violation"))
        shuffled = analyze_paths(order)
        assert [f.message for f in shuffled.findings] == [
            f.message for f in baseline.findings
        ]


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_flow_finding_suppressed_by_lint_comment(self, tmp_path):
        root = fixture_root("rpr010_violation")
        target = tmp_path / "repro"
        shutil.copytree(root, target)
        path = target / "bgp" / "runner.py"
        src = path.read_text()
        src = src.replace(
            'span = observer.span("stage")',
            'span = observer.span("stage")  # repro-lint: ok(RPR010)',
        )
        path.write_text(src)
        assert codes_of(analyze_paths([target])) == []
        assert codes_of(analyze_paths([target], apply_suppressions=False)) == [
            "RPR010"
        ]

    def test_in_tree_suppressions_are_all_live(self):
        assert check_suppressions([SRC_REPRO]) == []

    def test_stale_suppression_flagged(self, tmp_path):
        root = fixture_root("rpr010_clean")
        target = tmp_path / "repro"
        shutil.copytree(root, target)
        path = target / "bgp" / "runner.py"
        src = path.read_text().replace(
            "with observer.span(\"stage\"):",
            "with observer.span(\"stage\"):  # repro-lint: ok(RPR010)",
        )
        path.write_text(src)
        stale = check_suppressions([target])
        assert len(stale) == 1
        assert stale[0].path == "bgp/runner.py"
        assert "RPR010" in stale[0].message

    def test_docstring_mention_of_grammar_is_not_a_suppression(self, tmp_path):
        target = tmp_path / "repro"
        target.mkdir()
        (target / "doc.py").write_text(
            '"""Explains the `# repro-lint: ok(RPR001)` comment grammar."""\n'
        )
        assert check_suppressions([target]) == []


class TestBaseline:
    def test_checked_in_baseline_is_empty(self):
        assert load_baseline(default_baseline_path()) == set()

    def test_write_and_split_roundtrip(self, tmp_path):
        result = analyze_paths([fixture_root("rpr009_violation")])
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result.findings, baseline_path)
        baseline = load_baseline(baseline_path)
        new, grandfathered = split_baseline(result.findings, baseline)
        assert new == []
        assert grandfathered == result.findings

    def test_missing_baseline_grandfathers_nothing(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestMain:
    def test_clean_fixture_exit_zero(self, capsys):
        assert main([str(fixture_root("rpr007_clean")), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exit_one_and_json_payload(self, capsys):
        code = main(
            [str(fixture_root("rpr008_violation")), "--no-baseline", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["RPR008"] == 2
        assert payload["grandfathered"] == 0
        assert all(f["code"] == "RPR008" for f in payload["findings"])

    def test_baseline_file_grandfathers(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        root = str(fixture_root("rpr009_violation"))
        assert main([root, "--write-baseline", "--baseline", str(baseline_path)]) == 0
        capsys.readouterr()
        assert main([root, "--baseline", str(baseline_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["grandfathered"] == 1
        assert payload["findings"] == []

    def test_check_suppressions_mode(self, capsys):
        assert main([str(SRC_REPRO), "--check-suppressions"]) == 0
        assert "0 stale suppression(s)" in capsys.readouterr().out

    def test_missing_path_exit_two(self, capsys):
        assert main(["/nonexistent/path/xyz"]) == 2

    def test_module_invocation_matches_acceptance_command(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.flow", str(SRC_REPRO), "--json"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []

    def test_cli_analyze_subcommand_delegates(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["analyze", str(fixture_root("rpr007_clean")), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_analyze_accepts_leading_option(self, capsys):
        # a flag directly after the subcommand must be forwarded, not
        # rejected by the repro-cli parser
        from repro.cli import main as cli_main

        argv = ["analyze", "--json", "--no-baseline", str(fixture_root("rpr007_clean"))]
        assert cli_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
