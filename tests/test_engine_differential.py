"""Cross-engine differential harness: every registered engine, same answers.

The engine registry (:mod:`repro.routing.engines`) is a correctness
contract: whatever backend computes the all-pairs costs and Theorem 1
prices, the answers must match the serial pure-Python reference.  This
harness drives every registered engine over seeded random biconnected
topologies (reusing :mod:`repro.graphs.generators`) and asserts
pairwise agreement:

* **costs** within :func:`repro.types.costs_close` for every ordered
  pair (cost-only engines reassociate float sums);
* **prices** with identical stored key sets (same pairs, same transit
  nodes -- Theorem 1 pays zero off-path) and values within
  ``costs_close``;
* **paths exactly** for engines that carry paths (the canonical
  tie-break admits no slack).

Run under ``REPRO_SANITIZE=1`` (CI does, via ``make test-engines``)
every price table is additionally re-verified against the Theorem 1
identity from scratch.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    fig1_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
    waxman_graph,
)
from repro.routing.engines import Engine, engine_names, get_engine
from repro.types import costs_close


def _engine(name: str) -> Engine:
    # Two workers so the parallel engines exercise real worker
    # processes (and their merge paths) regardless of host core count.
    options = {"workers": 2} if name in ("parallel", "flat-parallel") else {}
    return get_engine(name, **options)


GRAPHS = {
    "fig1": lambda: fig1_graph(),
    "random10-s0": lambda: random_biconnected_graph(
        10, 0.3, seed=0, cost_sampler=integer_costs(0, 6)
    ),
    "random12-s1": lambda: random_biconnected_graph(
        12, 0.25, seed=1, cost_sampler=integer_costs(0, 5)
    ),
    "random12-s2": lambda: random_biconnected_graph(
        12, 0.4, seed=2, cost_sampler=integer_costs(1, 9)
    ),
    "isp16": lambda: isp_like_graph(16, seed=3, cost_sampler=integer_costs(1, 6)),
    # large enough that the flat engine's demand restriction and
    # symmetric orientation actually engage (hundreds of transit nodes
    # would be overkill here; dozens suffice to exercise multi-entry
    # per-k blocks and cross-k sequence bookkeeping)
    "isp40-s7": lambda: isp_like_graph(40, seed=7, cost_sampler=integer_costs(0, 6)),
    "ring9": lambda: ring_graph(9, seed=4, cost_sampler=integer_costs(1, 4)),
    "waxman14": lambda: waxman_graph(14, seed=5, cost_sampler=integer_costs(0, 7)),
}


@pytest.fixture(scope="module", params=sorted(GRAPHS))
def instance(request):
    """One seeded test topology plus the reference engine's answers."""
    graph = GRAPHS[request.param]()
    reference = _engine("reference")
    return (
        graph,
        reference.all_pairs(graph),
        reference.cost_matrix(graph),
        reference.price_table(graph),
    )


@pytest.mark.parametrize("name", [n for n in engine_names() if n != "reference"])
class TestAgainstReference:
    def test_costs_agree(self, instance, name):
        graph, _routes, reference_costs, _table = instance
        candidate = _engine(name).cost_matrix(graph)
        assert candidate.index == reference_costs.index
        for i in graph.nodes:
            for j in graph.nodes:
                assert costs_close(
                    candidate.cost(i, j), reference_costs.cost(i, j)
                ), f"engine {name} disagrees on cost({i}, {j})"

    def test_prices_agree(self, instance, name):
        graph, _routes, _costs, reference_table = instance
        candidate = _engine(name).price_table(graph)
        assert set(candidate.rows) == set(reference_table.rows)
        for pair in sorted(reference_table.rows):
            ref_row = reference_table.rows[pair]
            cand_row = candidate.rows[pair]
            assert set(cand_row) == set(ref_row), f"engine {name} pair {pair}"
            for k in sorted(ref_row):
                assert costs_close(
                    cand_row[k], ref_row[k]
                ), f"engine {name} price p^{k}_{pair}"

    def test_paths_agree_exactly(self, instance, name):
        engine = _engine(name)
        if not engine.carries_paths:
            pytest.skip(f"engine {name} is cost-only")
        graph, reference_routes, _costs, _table = instance
        candidate = engine.all_pairs(graph)
        assert candidate.paths == reference_routes.paths

    def test_path_engine_costs_bit_identical(self, instance, name):
        """Path engines run the identical accumulation, so their costs
        must be *bit-for-bit* the reference values, not merely close."""
        engine = _engine(name)
        if not engine.carries_paths:
            pytest.skip(f"engine {name} is cost-only")
        graph, reference_routes, _costs, reference_table = instance
        routes = engine.all_pairs(graph)
        for (i, j) in reference_routes.paths:
            assert routes.cost(i, j) == reference_routes.cost(i, j)
        assert engine.price_table(graph).rows == reference_table.rows


def test_pairwise_price_keys_identical(instance):
    """All engines store exactly the same (pair, transit node) keys:
    which entries exist is tie-break semantics, not arithmetic."""
    graph, _routes, _costs, _table = instance
    tables = {name: _engine(name).price_table(graph) for name in engine_names()}
    names = sorted(tables)
    for left, right in zip(names, names[1:]):
        assert set(tables[left].rows) == set(tables[right].rows)
        for pair in tables[left].rows:
            assert set(tables[left].rows[pair]) == set(tables[right].rows[pair]), (
                f"{left} vs {right} at {pair}"
            )
