"""Golden timed trace: a checked-in JSONL obs recording, re-derived.

``tests/fixtures/golden/timed_trace.jsonl`` records one scripted timed
scenario on the Figure 1 graph -- price-computing nodes under uniform
link jitter and a peer MRAI, with the one chord whose loss keeps the
graph biconnected (B--D) failing mid-flight at t=0.4 and recovering at
t=2.0.  The engine is a pure function of ``(graph, seed,
configuration)``, so re-running :func:`scripted_scenario` today must
reproduce the recorded run's counters exactly, and
:func:`repro.obs.trace.summarize_trace` must re-derive the
:class:`~repro.bgp.metrics.TimedReport` numbers from the trace alone,
bit for bit -- floats included, no epsilon.

A diff here means the timed engine's schedule or accounting changed (or
the obs emission contract did); regenerate with::

    PYTHONPATH=src python tests/test_timed_golden_trace.py

and call the change out in review.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs as obs_mod
from repro.bgp.delays import UniformDelay
from repro.bgp.events import LinkFailure, LinkRecovery
from repro.bgp.timed import MRAI_PEER, MRAIConfig, TimedEngine
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import DistributedPriceResult, verify_against_centralized
from repro.graphs.generators import fig1_graph
from repro.obs.trace import summarize_trace, validate_trace

GOLDEN = Path(__file__).parent / "fixtures" / "golden" / "timed_trace.jsonl"

SEED = 2026


def _price_factory(node_id, cost, policy):
    return PriceComputingNode(node_id, cost, policy, mode=UpdateMode.MONOTONE)


def scripted_scenario(observer=None):
    """The recorded scenario; returns the drained engine and its report."""
    engine = TimedEngine(
        fig1_graph(),
        node_factory=_price_factory,
        seed=SEED,
        delay=UniformDelay(0.1, 1.0),
        mrai=MRAIConfig(0.5, MRAI_PEER, jitter=0.25),
        obs=observer,
    )
    engine.initialize()
    engine.schedule_event(0.4, LinkFailure(2, 3))  # B--D, mid initial flood
    engine.schedule_event(2.0, LinkRecovery(2, 3))
    report = engine.run()
    return engine, report


@pytest.fixture(scope="module")
def recorded():
    return summarize_trace(str(GOLDEN))


@pytest.fixture(scope="module")
def replay():
    return scripted_scenario()


def test_fixture_is_a_valid_trace():
    assert validate_trace(str(GOLDEN)) > 0


def test_replay_converges_to_centralized_model(replay):
    engine, report = replay
    assert report.converged
    assert report.network_events == 2
    result = DistributedPriceResult(
        graph=fig1_graph(), engine=engine, report=report, mode=UpdateMode.MONOTONE
    )
    verify_against_centralized(result).raise_on_mismatch()


def test_summary_rederives_the_report_bit_for_bit(recorded, replay):
    _engine, report = replay
    assert recorded.timed_seen
    assert recorded.deliveries == report.deliveries
    assert recorded.rows_sent == report.rows_sent
    assert recorded.rows_suppressed == report.rows_suppressed
    assert recorded.timed_messages_lost == report.messages_lost
    assert recorded.timed_network_events == report.network_events
    assert recorded.timed_mrai_deferrals == report.mrai_deferrals
    assert recorded.timed_mrai_flushes == report.mrai_flushes
    assert recorded.timed_mrai_coalesced == report.mrai_rows_coalesced
    # exact float equality: both sides are the same deterministic
    # virtual-clock arithmetic, recorded vs replayed
    assert recorded.timed_clock == report.clock
    assert recorded.timed_convergence_time == report.convergence_time


def test_summary_tables_render_the_timed_section(recorded):
    from repro.obs.trace import summary_tables

    rendered = "\n".join(table.render() for table in summary_tables(recorded))
    assert "virtual clock at drain" in rendered
    assert "MRAI rows coalesced" in rendered


def test_cli_summarize_reads_the_fixture(capsys):
    from repro.cli import main

    assert main(["trace", "summarize", str(GOLDEN)]) == 0
    out = capsys.readouterr().out
    assert "virtual clock at drain" in out


def _regenerate():
    observer = obs_mod.Obs()
    sink = observer.add_sink(obs_mod.JSONLSink(str(GOLDEN)))
    _engine, report = scripted_scenario(observer)
    sink.close()
    print(f"wrote {GOLDEN}")
    print(
        f"deliveries={report.deliveries} rows_sent={report.rows_sent} "
        f"lost={report.messages_lost} clock={report.clock:.6f}"
    )


if __name__ == "__main__":
    _regenerate()
