"""Tests for repro.mechanism.overpayment (Section 7)."""

import math

import pytest

from repro.graphs.generators import fig1_graph, ring_graph
from repro.mechanism.overpayment import (
    node_markups,
    overpayment_ratio,
    overpayment_stats,
)
from repro.mechanism.vcg import compute_price_table


class TestOverpaymentRatio:
    def test_fig1_yz_is_nine(self, fig1, labels):
        table = compute_price_table(fig1)
        assert overpayment_ratio(table, labels["Y"], labels["Z"]) == pytest.approx(9.0)

    def test_fig1_xz(self, fig1, labels):
        table = compute_price_table(fig1)
        assert overpayment_ratio(table, labels["X"], labels["Z"]) == pytest.approx(7.0 / 3.0)

    def test_direct_link_ratio_one(self, fig1, labels):
        table = compute_price_table(fig1)
        assert overpayment_ratio(table, labels["A"], labels["Z"]) == 1.0

    def test_always_at_least_one(self, small_random):
        table = compute_price_table(small_random)
        for source, destination in table.routes.paths:
            ratio = overpayment_ratio(table, source, destination)
            assert ratio >= 1.0 - 1e-9


class TestNodeMarkups:
    def test_fig1_d_markup(self, fig1, labels):
        table = compute_price_table(fig1)
        markups = node_markups(table, labels["Y"], labels["Z"])
        assert markups[labels["D"]] == pytest.approx(9.0)

    def test_empty_for_direct_link(self, fig1, labels):
        table = compute_price_table(fig1)
        assert node_markups(table, labels["A"], labels["Z"]) == {}


class TestOverpaymentStats:
    def test_fig1_max_pair(self, fig1, labels):
        table = compute_price_table(fig1)
        stats = overpayment_stats(table)
        assert stats.max_ratio == pytest.approx(9.0)
        assert stats.max_pair in ((labels["Y"], labels["Z"]), (labels["Z"], labels["Y"]))

    def test_aggregate_ratio(self, fig1):
        table = compute_price_table(fig1)
        stats = overpayment_stats(table)
        assert stats.aggregate_ratio >= 1.0
        assert stats.total_payment >= stats.total_cost

    def test_traffic_weighting(self, fig1, labels):
        table = compute_price_table(fig1)
        traffic = {(labels["Y"], labels["Z"]): 1.0}
        stats = overpayment_stats(table, traffic=traffic)
        assert stats.total_cost == 1.0
        assert stats.total_payment == 9.0
        assert stats.pairs == 1

    def test_ring_overcharges_more_than_fig1(self):
        # sparse rings have brutal detours, hence big ratios
        ring = ring_graph(8, seed=1, cost_sampler=lambda rng: 1.0)
        ring_stats = overpayment_stats(compute_price_table(ring))
        fig_stats = overpayment_stats(compute_price_table(fig1_graph()))
        assert ring_stats.mean_ratio > fig_stats.mean_ratio

    def test_median_between_min_and_max(self, small_random):
        stats = overpayment_stats(compute_price_table(small_random))
        assert 1.0 - 1e-9 <= stats.median_ratio <= stats.max_ratio + 1e-9
