"""Tests for repro.devtools.check (the bundled gate).

The pytest step is always skipped here -- running it from inside the
suite would recurse.  External tools may legitimately be absent (the
reproduction container has no ruff/mypy), so their steps must come back
PASS or SKIP, never crash; the in-process lint and flow steps must PASS
on the shipped tree.
"""

from __future__ import annotations

import json

from repro.devtools.check import StepResult, main, run_checks


class TestRunChecks:
    def test_static_steps_never_fail_on_shipped_tree(self):
        results = run_checks(skip_tests=True)
        assert [r.name for r in results] == [
            "lint",
            "flow",
            "bench-imports",
            "ruff",
            "mypy",
        ]
        for result in results:
            assert result.status in {"PASS", "SKIP"}, f"{result.name}: {result.detail}"

    def test_lint_step_passes(self):
        results = {r.name: r for r in run_checks(skip_tests=True)}
        assert results["lint"].status == "PASS"

    def test_flow_step_passes_and_reports_per_rule_counts(self):
        results = {r.name: r for r in run_checks(skip_tests=True)}
        flow = results["flow"]
        assert flow.status == "PASS"
        assert set(flow.counts) == {"RPR007", "RPR008", "RPR009", "RPR010"}
        assert all(count == 0 for count in flow.counts.values())

    def test_lint_step_reports_per_rule_counts(self):
        results = {r.name: r for r in run_checks(skip_tests=True)}
        lint = results["lint"]
        assert set(lint.counts) == {
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR011",
        }

    def test_bench_imports_step_passes_on_shipped_tree(self):
        results = {r.name: r for r in run_checks(skip_tests=True)}
        assert results["bench-imports"].status == "PASS"

    def test_bench_imports_flags_module_level_scipy(self, tmp_path, monkeypatch):
        import repro.devtools.check as check_mod

        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench_bad.py").write_text(
            "from scipy.sparse import csr_matrix\n\n\ndef test_x():\n    pass\n"
        )
        (bench / "bench_ok.py").write_text(
            "def test_y():\n    import scipy  # lazy: allowed\n"
        )
        result = check_mod._step_bench_imports(tmp_path)
        assert result.status == "FAIL"
        assert "bench_bad.py" in result.detail
        assert "bench_ok.py" not in result.detail

    def test_missing_tool_is_skip_not_fail(self, monkeypatch):
        monkeypatch.setattr("shutil.which", lambda name: None)
        results = {r.name: r for r in run_checks(skip_tests=True)}
        assert results["ruff"].status == "SKIP"
        assert results["mypy"].status == "SKIP"

    def test_step_result_failed_property(self):
        assert StepResult("x", "FAIL").failed
        assert not StepResult("x", "PASS").failed
        assert not StepResult("x", "SKIP").failed

    def test_flow_step_fails_on_non_baselined_finding(self, monkeypatch):
        import repro.devtools.check as check_mod
        from repro.devtools.flow import AnalysisResult, FlowFinding

        finding = FlowFinding(
            path="routing/x.py",
            line=1,
            col=1,
            code="RPR007",
            message="injected",
            function="f",
            key="RPR007:routing/x.py:f:reads-rng",
        )
        monkeypatch.setattr(
            check_mod.flow,
            "analyze_paths",
            lambda paths: AnalysisResult(
                findings=[finding], summaries={}, modules=1, functions=1
            ),
        )
        result = check_mod._step_flow()
        assert result.status == "FAIL"
        assert result.counts["RPR007"] == 1
        assert "injected" in result.detail

    def test_flow_step_passes_on_baselined_finding(self, monkeypatch):
        import repro.devtools.check as check_mod
        from repro.devtools.flow import AnalysisResult, FlowFinding

        finding = FlowFinding(
            path="routing/x.py",
            line=1,
            col=1,
            code="RPR007",
            message="grandfathered",
            function="f",
            key="RPR007:routing/x.py:f:reads-rng",
        )
        monkeypatch.setattr(
            check_mod.flow,
            "analyze_paths",
            lambda paths: AnalysisResult(
                findings=[finding], summaries={}, modules=1, functions=1
            ),
        )
        monkeypatch.setattr(
            check_mod.flow, "load_baseline", lambda path: {finding.key}
        )
        result = check_mod._step_flow()
        assert result.status == "PASS"
        assert result.counts["RPR007"] == 0
        assert "grandfathered" in result.detail


class TestMain:
    def test_exit_zero_and_report(self, capsys):
        assert main(["--skip-tests"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out
        assert "flow" in out
        assert "ruff" in out
        assert "mypy" in out

    def test_json_report(self, capsys):
        assert main(["--skip-tests", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        steps = {step["name"]: step for step in payload["steps"]}
        assert steps["flow"]["status"] == "PASS"
        assert steps["flow"]["counts"] == {
            "RPR007": 0,
            "RPR008": 0,
            "RPR009": 0,
            "RPR010": 0,
        }
        assert steps["lint"]["status"] == "PASS"

    def test_exit_one_on_failure(self, capsys, monkeypatch):
        import repro.devtools.check as check_mod

        monkeypatch.setattr(
            check_mod,
            "_step_lint",
            lambda: StepResult("lint", "FAIL", "bgp/x.py:1:1: RPR001 bad"),
        )
        assert main(["--skip-tests"]) == 1
        captured = capsys.readouterr()
        assert "RPR001" in captured.out
        assert "failed" in captured.err

    def test_json_exit_one_on_failure(self, capsys, monkeypatch):
        import repro.devtools.check as check_mod

        monkeypatch.setattr(
            check_mod,
            "_step_flow",
            lambda: StepResult(
                "flow",
                "FAIL",
                "routing/x.py:1:1: RPR007 bad",
                counts={"RPR007": 1, "RPR008": 0, "RPR009": 0, "RPR010": 0},
            ),
        )
        assert main(["--skip-tests", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1
        steps = {step["name"]: step for step in payload["steps"]}
        assert steps["flow"]["counts"]["RPR007"] == 1
