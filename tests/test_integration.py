"""End-to-end integration tests crossing every package boundary."""

import math

import pytest

from repro.accounting.settlement import run_accounting
from repro.accounting.tally import PacketTally
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.core.dynamics import dynamic_scenario
from repro.core.price_node import UpdateMode
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.graphs.io import graph_from_json, graph_to_json
from repro.mechanism.vcg import compute_price_table, payments
from repro.mechanism.welfare import node_utility, total_cost, total_payment
from repro.strategic.game import play_declaration_game
from repro.strategic.agents import OverstateAgent, UnderstateAgent
from repro.traffic.generators import gravity_traffic


@pytest.fixture(scope="module")
def isp():
    return isp_like_graph(18, seed=11, cost_sampler=integer_costs(1, 6))


class TestFullPipeline:
    """Serialize -> route -> price (centralized and distributed) ->
    account -> settle, all on one Internet-like instance."""

    def test_serialization_round_trip_preserves_mechanism(self, isp):
        restored = graph_from_json(graph_to_json(isp))
        original_table = compute_price_table(isp)
        restored_table = compute_price_table(restored)
        for pair, row in original_table.items():
            assert restored_table.row(*pair) == pytest.approx(row)

    def test_distributed_prices_drive_accounting(self, isp):
        # run the distributed protocol, use ITS price rows for tallies,
        # and compare revenue with the centralized payments
        result = distributed_mechanism(isp, mode=UpdateMode.MONOTONE)
        assert verify_against_centralized(result).ok
        traffic = gravity_traffic(isp, seed=1, total=100.0)

        tallies = {}
        for (source, destination), intensity in traffic.items():
            tally = tallies.setdefault(source, PacketTally(source))
            row = result.node(source).price_rows.get(destination, {})
            tally.record_packets(destination, row, intensity)

        centralized = payments(compute_price_table(isp), dict(traffic.items()))
        revenue = {}
        for tally in tallies.values():
            for node, amount in tally.drain().items():
                revenue[node] = revenue.get(node, 0.0) + amount
        for node in isp.nodes:
            assert revenue.get(node, 0.0) == pytest.approx(
                centralized[node], rel=1e-9, abs=1e-9
            )

    def test_welfare_books_balance(self, isp):
        table = compute_price_table(isp)
        traffic = gravity_traffic(isp, seed=2, total=50.0)
        traffic_map = dict(traffic.items())
        paid = total_payment(table, traffic_map)
        cost = total_cost(table.routes, traffic_map)
        utilities = sum(
            node_utility(table, traffic_map, node) for node in isp.nodes
        )
        # sum of utilities = total payment - total incurred cost
        assert utilities == pytest.approx(paid - cost, rel=1e-9, abs=1e-6)

    def test_strategic_agents_on_distributed_instance(self, isp):
        traffic = gravity_traffic(isp, seed=3, total=30.0)
        strategies = {
            isp.nodes[0]: OverstateAgent(factor=1.5),
            isp.nodes[1]: UnderstateAgent(factor=0.5),
        }
        outcome = play_declaration_game(isp, strategies, traffic, seed=4)
        assert not outcome.any_liar_beat_truth

    def test_dynamic_scenario_end_to_end(self, isp):
        busiest = max(isp.nodes, key=isp.degree)
        events = [CostChange(busiest, isp.cost(busiest) * 2.0)]
        run = dynamic_scenario(isp, events)
        assert run.all_ok
        assert run.all_within_bound

    def test_accounting_identity(self, isp):
        table = compute_price_table(isp)
        traffic = gravity_traffic(isp, seed=5, total=77.0)
        report, reference = run_accounting(table, traffic)
        assert report.total() == pytest.approx(sum(reference.values()))
