"""Tests for repro.devtools.sanitize (runtime invariant checks).

The contract under test is two-sided: clean protocol runs sail through
with the sanitizer on, and each *seeded corruption* -- a negative price,
an off-path price entry, an identity violation, a mutated path tuple, a
non-optimal LCP, a broken precondition, a non-monotone stage -- trips
exactly its check.  The toggle mechanics (env var, enable/disable, the
``sanitized`` context manager, zero checks when off) are pinned as well.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bgp.table import RouteEntry
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.devtools import sanitize
from repro.exceptions import SanitizerError
from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import compute_price_table

SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture(autouse=True)
def _sanitizer_off_between_tests():
    """Each test starts from a known-off sanitizer regardless of the
    ``REPRO_SANITIZE`` environment the suite was launched with."""
    with sanitize.sanitized(on=False):
        yield


@pytest.fixture
def line5():
    """A 5-node path graph: connected but riddled with cut vertices."""
    return ASGraph(
        nodes=[(i, 1.0) for i in range(5)],
        edges=[(0, 1), (1, 2), (2, 3), (3, 4)],
    )


class TestToggle:
    def test_enable_disable(self):
        assert not sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()

    def test_context_manager_restores(self):
        with sanitize.sanitized():
            assert sanitize.enabled()
        assert not sanitize.enabled()

    def test_context_manager_can_force_off(self):
        sanitize.enable()
        with sanitize.sanitized(on=False):
            assert not sanitize.enabled()
        assert sanitize.enabled()
        sanitize.disable()

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with sanitize.sanitized():
                raise RuntimeError("boom")
        assert not sanitize.enabled()

    @pytest.mark.parametrize("value, expected", [("1", "on"), ("", "off"), ("0", "off")])
    def test_environment_variable_read_at_import(self, value, expected):
        env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_SANITIZE=value)
        code = (
            "from repro.devtools import sanitize; "
            "print('on' if sanitize.enabled() else 'off')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == expected

    def test_no_checks_run_when_off(self, fig1):
        before = sanitize.checks_run()
        compute_price_table(fig1)
        result = distributed_mechanism(fig1)
        assert verify_against_centralized(result).ok
        assert sanitize.checks_run() == before

    def test_checks_run_when_on(self, fig1):
        before = sanitize.checks_run()
        with sanitize.sanitized():
            compute_price_table(fig1)
        assert sanitize.checks_run() > before


class TestCleanRunsPass:
    def test_centralized_table(self, fig1):
        with sanitize.sanitized():
            table = compute_price_table(fig1)
        assert table.rows

    def test_distributed_synchronous(self, fig1):
        with sanitize.sanitized():
            result = distributed_mechanism(fig1)
        assert verify_against_centralized(result).ok

    def test_distributed_asynchronous(self, square):
        with sanitize.sanitized():
            result = distributed_mechanism(square, asynchronous=True, seed=3)
        assert verify_against_centralized(result).ok

    def test_dynamics_with_failure_and_restart(self, fig1):
        # warm reconvergence after a link failure must not false-positive
        # on the (disarmed) liveness and monotonicity checks.
        with sanitize.sanitized():
            result = distributed_mechanism(fig1)
            engine = result.engine
            u, v = sorted(engine.adjacency)[0], None
            v = sorted(engine.adjacency[u])[0]
            engine.fail_link(u, v)
            engine.run()
            engine.restore_link(u, v)
            engine.run()


class TestBiconnectivityPrecondition:
    def test_path_graph_rejected(self, line5):
        with sanitize.sanitized():
            with pytest.raises(SanitizerError, match=r"\[sanitize:biconnected\]"):
                distributed_mechanism(line5)

    def test_error_names_articulation_points(self, line5):
        with sanitize.sanitized():
            with pytest.raises(SanitizerError, match=r"articulation points \[1, 2, 3\]"):
                sanitize.check_biconnected(line5)

    def test_unchecked_when_off(self, line5):
        # without the sanitizer the precondition surfaces later, as a
        # NotBiconnectedError from the price computation -- the sanitizer
        # only *fronts* the diagnosis, it does not change behavior.
        from repro.exceptions import NotBiconnectedError

        with pytest.raises(NotBiconnectedError):
            compute_price_table(line5)


class TestPathCheck:
    def has_edge(self, u, v):
        return abs(u - v) == 1  # a line topology

    def test_valid_path_passes(self):
        sanitize.check_path((0, 1, 2), has_edge=self.has_edge, source=0, destination=2)

    def test_wrong_source(self):
        with pytest.raises(SanitizerError, match="does not start at source"):
            sanitize.check_path((1, 2), has_edge=self.has_edge, source=0)

    def test_wrong_destination(self):
        with pytest.raises(SanitizerError, match="does not end at destination"):
            sanitize.check_path((0, 1), has_edge=self.has_edge, destination=2)

    def test_loop(self):
        with pytest.raises(SanitizerError, match="revisits a node"):
            sanitize.check_path((0, 1, 0), has_edge=lambda u, v: True)

    def test_dead_link(self):
        with pytest.raises(SanitizerError, match="non-existent link"):
            sanitize.check_path((0, 2), has_edge=self.has_edge)

    def test_empty_path(self):
        with pytest.raises(SanitizerError, match="empty path"):
            sanitize.check_path((), has_edge=self.has_edge)


class TestLcpCheck:
    def test_optimal_route_passes(self, fig1):
        table = compute_price_table(fig1)
        routes = table.routes
        source, destination = sorted(routes.paths)[0]
        sanitize.check_lcp(
            fig1,
            source,
            destination,
            routes.path(source, destination),
            routes.cost(source, destination),
        )

    def test_inconsistent_cost(self, fig1, labels):
        X, Z = labels["X"], labels["Z"]
        table = compute_price_table(fig1)
        path = table.routes.path(X, Z)
        with pytest.raises(SanitizerError, match="recomputed transit cost"):
            sanitize.check_lcp(fig1, X, Z, path, table.routes.cost(X, Z) + 1.0)

    def test_non_optimal_path(self, fig1, labels):
        # X -> A -> Z is a real walk but costs more than the selected LCP
        X, A, Z = labels["X"], labels["A"], labels["Z"]
        detour = (X, A, Z)
        cost = fig1.path_cost(detour)
        with pytest.raises(SanitizerError, match="not lowest-cost"):
            sanitize.check_lcp(fig1, X, Z, detour, cost)

    def test_tied_but_non_canonical_path(self, triangle):
        # force a tie: direct link 0-2 vs 0-1-2 with c_1 = 0
        graph = triangle.with_cost(1, 0.0)
        with pytest.raises(SanitizerError, match="canonical"):
            sanitize.check_lcp(graph, 0, 2, (0, 1, 2), 0.0)


class TestPriceRowCheck:
    @pytest.fixture
    def pair(self, fig1, labels):
        """The Figure 1 pair (X, Z) with its genuine LCP and price row."""
        X, Z = labels["X"], labels["Z"]
        table = compute_price_table(fig1)
        path = table.routes.path(X, Z)
        return fig1, X, Z, path, table.row(X, Z)

    def test_genuine_row_passes(self, pair):
        graph, source, destination, path, row = pair
        sanitize.check_price_row(graph, source, destination, path, row)

    def test_negative_price(self, pair):
        graph, source, destination, path, row = pair
        row[path[1]] = -0.5
        with pytest.raises(SanitizerError, match=r"\[sanitize:price-nonnegative\]"):
            sanitize.check_price_row(graph, source, destination, path, row)

    def test_non_finite_price(self, pair):
        graph, source, destination, path, row = pair
        row[path[1]] = float("inf")
        with pytest.raises(SanitizerError, match=r"\[sanitize:price-finite\]"):
            sanitize.check_price_row(graph, source, destination, path, row)

    def test_off_path_entry(self, pair, labels):
        graph, source, destination, path, row = pair
        row[labels["A"]] = 1.0  # A is not transit on the (X, Z) LCP
        with pytest.raises(SanitizerError, match=r"\[sanitize:zero-off-path\]"):
            sanitize.check_price_row(graph, source, destination, path, row)

    def test_identity_violation(self, pair):
        graph, source, destination, path, row = pair
        row[path[1]] += 0.25  # still positive, still on-path: only the
        # Theorem 1 recomputation can catch it
        with pytest.raises(SanitizerError, match=r"\[sanitize:price-identity\]"):
            sanitize.check_price_row(graph, source, destination, path, row)

    def test_mutated_path_tuple(self, fig1, labels):
        # a corrupted *path* makes the whole row inconsistent: the row
        # mentions nodes that are off the mutated path
        X, A, Z = labels["X"], labels["A"], labels["Z"]
        table = compute_price_table(fig1)
        row = table.row(X, Z)
        with pytest.raises(SanitizerError, match=r"\[sanitize:zero-off-path\]"):
            sanitize.check_price_row(fig1, X, Z, (X, A, Z), row)


class TestPriceTableCheck:
    def test_genuine_table_passes(self, small_random):
        table = compute_price_table(small_random)
        sanitize.check_price_table(graph=small_random, table=table)

    def test_corrupted_entry_caught(self, fig1, labels):
        table = compute_price_table(fig1)
        X, Z = labels["X"], labels["Z"]
        row = table.rows[(X, Z)]
        k = next(iter(sorted(row)))
        row[k] += 1.0
        with pytest.raises(SanitizerError, match=r"\[sanitize:price-identity\]"):
            sanitize.check_price_table(fig1, table)


class TestMonotoneCheck:
    def test_improvement_passes(self):
        before = {9: (5.0, 2, (0, 1, 9))}
        after = {9: (4.0, 2, (0, 3, 9))}
        sanitize.check_routes_monotone(0, before, after)

    def test_worsened_key(self):
        before = {9: (4.0, 2, (0, 3, 9))}
        after = {9: (5.0, 2, (0, 1, 9))}
        with pytest.raises(SanitizerError, match="worsened its route"):
            sanitize.check_routes_monotone(0, before, after)

    def test_lost_route(self):
        before = {9: (4.0, 2, (0, 3, 9))}
        with pytest.raises(SanitizerError, match="lost its route"):
            sanitize.check_routes_monotone(0, before, {})

    def test_engine_catches_worsened_stage(self, fig1):
        # seed the corruption inside a live synchronous run: silently
        # erase the Adj-RIB-In slice behind one node's selected route
        # (no matching network event), so the next decide() worsens or
        # loses routes and the per-stage sweep catches it.
        with sanitize.sanitized():
            result = distributed_mechanism(fig1)
            engine = result.engine
            node = engine.nodes[sorted(engine.nodes)[0]]
            destination, entry = sorted(node.routes.items())[-1]
            node.drop_neighbor(entry.next_hop)
            with pytest.raises(SanitizerError, match=r"\[sanitize:monotone\]"):
                engine.step()

    def test_engine_catches_corrupted_path(self, fig1):
        # a mutated path tuple in a Loc-RIB trips the per-stage path
        # sweep.  The sweep is invoked directly: a full step() would let
        # decide() re-select from the (uncorrupted) Adj-RIB-In and
        # self-heal the entry before the sweep sees it.
        with sanitize.sanitized():
            result = distributed_mechanism(fig1)
            engine = result.engine
            node = engine.nodes[sorted(engine.nodes)[0]]
            destination, entry = sorted(node.routes.items())[-1]
            bad_path = (entry.path[0], entry.path[1], *entry.path[1:])
            node.routes[destination] = RouteEntry(
                path=bad_path,
                cost=entry.cost,
                node_costs=entry.node_costs,
            )
            with pytest.raises(SanitizerError, match="revisits a node"):
                engine._sanitize_stage()


class TestDistributedResultCheck:
    def test_corrupted_distributed_price_caught(self, fig1):
        with sanitize.sanitized():
            result = distributed_mechanism(fig1)
        # poison one converged price row, then re-run the final check
        node_id = sorted(result.engine.nodes)[0]
        node = result.node(node_id)
        destination = sorted(
            d for d, row in node.price_rows.items() if row
        )[0]
        k = sorted(node.price_rows[destination])[0]
        node.price_rows[destination][k] += 1.0
        with pytest.raises(SanitizerError, match=r"\[sanitize:price-identity\]"):
            sanitize.check_distributed_prices(
                fig1,
                {nid: n.routes for nid, n in result.engine.nodes.items()},
                {nid: n.price_rows for nid, n in result.engine.nodes.items()},
            )

    def test_sample_pairs_limits_scope(self, fig1):
        with sanitize.sanitized():
            result = distributed_mechanism(fig1)
        before = sanitize.checks_run()
        sanitize.check_distributed_prices(
            fig1,
            {nid: n.routes for nid, n in result.engine.nodes.items()},
            {nid: n.price_rows for nid, n in result.engine.nodes.items()},
            sample_pairs=[(0, 1)],
        )
        sampled = sanitize.checks_run() - before
        sanitize.check_distributed_prices(
            fig1,
            {nid: n.routes for nid, n in result.engine.nodes.items()},
            {nid: n.price_rows for nid, n in result.engine.nodes.items()},
        )
        exhaustive = sanitize.checks_run() - before - sampled
        assert 0 < sampled < exhaustive
