"""Tests for repro.routing.paths and tiebreak."""

import pytest

from repro.exceptions import GraphError
from repro.routing.paths import transit_cost, transit_nodes, validate_path
from repro.routing.tiebreak import better, route_key


class TestTransitCost:
    def test_endpoints_free(self):
        costs = {0: 1.0, 1: 2.0}
        assert transit_cost(costs.__getitem__, (0, 1)) == 0.0

    def test_sums_intermediates(self):
        costs = {0: 1.0, 1: 2.0, 2: 4.0, 3: 8.0}
        assert transit_cost(costs.__getitem__, (0, 1, 2, 3)) == 6.0

    def test_accumulation_is_destination_first(self):
        # Pick costs whose float sums depend on association order.
        costs = {0: 0.0, 1: 0.1, 2: 0.2, 3: 0.3, 4: 0.0}
        path = (4, 3, 2, 1, 0)
        expected = ((0.1 + 0.2) + 0.3)  # c_1 then c_2 then c_3
        assert transit_cost(costs.__getitem__, path) == expected

    def test_rejects_single_node(self):
        with pytest.raises(GraphError):
            transit_cost(lambda n: 1.0, (0,))


class TestValidatePath:
    def test_happy_path(self):
        assert validate_path([0, 1, 2], 0, 2) == (0, 1, 2)

    def test_wrong_source(self):
        with pytest.raises(GraphError, match="starts"):
            validate_path([1, 2], 0, 2)

    def test_wrong_destination(self):
        with pytest.raises(GraphError, match="ends"):
            validate_path([0, 1], 0, 2)

    def test_revisit(self):
        with pytest.raises(GraphError, match="revisits"):
            validate_path([0, 1, 0, 2], 0, 2)


class TestTransitNodes:
    def test_extracts_interior(self):
        assert transit_nodes((0, 1, 2, 3)) == (1, 2)

    def test_direct_link_has_none(self):
        assert transit_nodes((0, 1)) == ()


class TestRouteKey:
    def test_orders_by_cost_first(self):
        cheap = route_key(1.0, (0, 9, 8, 7, 1))
        pricey = route_key(2.0, (0, 1))
        assert cheap < pricey

    def test_ties_broken_by_hops(self):
        short = route_key(3.0, (0, 5, 1))
        long = route_key(3.0, (0, 2, 3, 1))
        assert short < long

    def test_ties_broken_lexicographically(self):
        low = route_key(3.0, (0, 2, 1))
        high = route_key(3.0, (0, 5, 1))
        assert low < high

    def test_prepending_preserves_order(self):
        # suffix consistency depends on this
        a = route_key(3.0, (2, 1))
        b = route_key(3.0, (5, 1))
        assert (a < b) == (route_key(4.0, (9,) + a[2]) < route_key(4.0, (9,) + b[2]))

    def test_extension_strictly_increases(self):
        # even with a zero-cost hop, the key must grow (hops component)
        base = route_key(0.0, (1, 0))
        extended = route_key(0.0, (2, 1, 0))
        assert base < extended

    def test_better_helper(self):
        assert better(route_key(1.0, (0, 1)), route_key(2.0, (0, 1)))
        assert not better(route_key(2.0, (0, 1)), route_key(1.0, (0, 1)))
