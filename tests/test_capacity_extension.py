"""Tests for the capacity/congestion probe (Section 7 open problem)."""

import pytest

from repro.extensions.capacity import (
    congestion_report,
    greedy_decongest,
    node_loads,
)
from repro.graphs.generators import fig1_graph, integer_costs, isp_like_graph
from repro.routing.allpairs import all_pairs_lcp
from repro.traffic.generators import gravity_traffic, uniform_traffic


class TestNodeLoads:
    def test_single_flow(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        loads = node_loads(dict(routes.paths), {(labels["X"], labels["Z"]): 5.0})
        assert loads[labels["B"]] == 5.0
        assert loads[labels["D"]] == 5.0
        assert labels["A"] not in loads

    def test_loads_sum_over_flows(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["X"], labels["Z"]): 2.0, (labels["Y"], labels["Z"]): 3.0}
        loads = node_loads(dict(routes.paths), traffic)
        assert loads[labels["D"]] == 5.0  # on both LCPs


class TestCongestionReport:
    def test_infeasible_detection(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 10.0}
        report = congestion_report(fig1, {labels["D"]: 5.0}, traffic)
        assert labels["D"] in report.overloaded
        assert not report.feasible
        assert report.utilization(labels["D"]) == pytest.approx(2.0)

    def test_feasible_with_room(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 10.0}
        report = congestion_report(fig1, {labels["D"]: 50.0}, traffic)
        assert report.feasible
        assert report.max_utilization == pytest.approx(0.2)

    def test_total_cost_matches_welfare(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 1.0, (labels["Y"], labels["Z"]): 1.0}
        report = congestion_report(fig1, {}, traffic)
        assert report.total_cost == pytest.approx(4.0)  # 3 + 1


class TestGreedyDecongest:
    def test_noop_when_feasible(self, fig1):
        traffic = dict(uniform_traffic(fig1).items())
        capacities = {node: 1e9 for node in fig1.nodes}
        result = greedy_decongest(fig1, capacities, traffic)
        assert result.moved_pairs == []
        assert result.cost_premium == 0.0

    def test_moves_traffic_off_hot_node(self, fig1, labels):
        # X->Z and Y->Z both transit D; cap D to force a move
        traffic = {(labels["X"], labels["Z"]): 4.0, (labels["Y"], labels["Z"]): 4.0}
        capacities = {node: 1e9 for node in fig1.nodes}
        capacities[labels["D"]] = 4.0
        result = greedy_decongest(fig1, capacities, traffic)
        assert result.moved_pairs
        assert result.after.feasible
        # feasibility costs something: the detour is pricier
        assert result.cost_premium > 0.0
        # the moved flow now avoids D
        for pair in result.moved_pairs:
            assert labels["D"] not in result.routes_by_pair[pair][1:-1]

    def test_cost_never_decreases(self):
        graph = isp_like_graph(14, seed=2, cost_sampler=integer_costs(1, 5))
        traffic = dict(gravity_traffic(graph, seed=2, total=500.0).items())
        baseline = congestion_report(graph, {}, traffic)
        capacities = {
            node: max(1.0, 0.6 * baseline.loads.get(node, 0.0))
            for node in graph.nodes
        }
        result = greedy_decongest(graph, capacities, traffic)
        assert result.cost_premium >= -1e-9

    def test_respects_move_budget(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 4.0, (labels["Y"], labels["Z"]): 4.0}
        capacities = {node: 1e9 for node in fig1.nodes}
        capacities[labels["D"]] = 1.0
        result = greedy_decongest(fig1, capacities, traffic, max_moves=1)
        assert len(result.moved_pairs) <= 1
