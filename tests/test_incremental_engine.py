"""Differential tests for the incremental warm-start engine.

The contract is the repo's strongest one: after *every* epoch of an
arbitrary event sequence the incremental engine must return
bit-identical routes and prices to a cold reference run on the mutated
graph -- including raising the same errors in the same cases (error
parity).  Hypothesis drives randomized event scripts; deterministic
cases pin the invalidation edge cases (biconnectivity break and
re-establishment, improving vs worsening changes, cache accounting).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs_mod
from repro.exceptions import (
    DisconnectedGraphError,
    MechanismError,
    NotBiconnectedError,
)
from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import compute_price_table
from repro.obs import names as metric_names
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import IncrementalEngine, get_engine

_MECHANISM_ERRORS = (NotBiconnectedError, MechanismError, DisconnectedGraphError)


def _outcome(compute):
    """Run *compute*; normalize result-or-mechanism-error for parity checks."""
    try:
        return ("ok", compute())
    except _MECHANISM_ERRORS as exc:
        return ("err", (type(exc).__name__, str(exc)))


def assert_epoch_identical(engine: IncrementalEngine, graph: ASGraph) -> None:
    """Bit-identity (or error parity) of the warm engine vs a cold reference."""
    warm_routes = _outcome(lambda: engine.all_pairs(graph))
    cold_routes = _outcome(lambda: all_pairs_lcp(graph))
    assert warm_routes[0] == cold_routes[0], (warm_routes, cold_routes)
    if warm_routes[0] == "ok":
        assert warm_routes[1].paths == cold_routes[1].paths
        for destination in graph.nodes:
            warm = warm_routes[1].tree(destination)
            cold = cold_routes[1].tree(destination)
            assert warm.parents == cold.parents
            for source in cold.sources():
                # == on purpose: costs must be bit-identical, not close
                assert warm.cost(source) == cold.cost(source)  # repro-lint: ok(RPR001)
    else:
        assert warm_routes[1] == cold_routes[1]

    warm_table = _outcome(lambda: engine.price_table(graph))
    cold_table = _outcome(lambda: compute_price_table(graph))
    assert warm_table[0] == cold_table[0], (warm_table, cold_table)
    if warm_table[0] == "ok":
        # dict == compares every price bit-for-bit, which is the contract
        assert warm_table[1].rows == cold_table[1].rows  # repro-lint: ok(RPR001)
    else:
        assert warm_table[1] == cold_table[1]


@st.composite
def event_scripts(draw, min_nodes=4, max_nodes=9, max_events=10):
    """A biconnected seed graph plus a random mutation script.

    Events: cost increases and decreases (quantized: exact ties are
    where invalidation bugs live), link failures (connectivity is
    preserved, biconnectivity deliberately is NOT), and link recoveries
    (re-adding previously failed links or fresh chords).
    """
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(
        st.lists(
            st.integers(0, 8).map(lambda v: v / 2.0),
            min_size=n,
            max_size=n,
        )
    )
    chord_pool = [
        (i, j)
        for i in range(n)
        for j in range(i + 2, n)
        if not (i == 0 and j == n - 1)
    ]
    chords = (
        draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6))
        if chord_pool
        else []
    )
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    graph = ASGraph(nodes=list(enumerate(costs)), edges=edges)
    events = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("cost"),
                    st.integers(0, n - 1),
                    st.integers(0, 8).map(lambda v: v / 2.0),
                ),
                st.tuples(st.just("fail"), st.integers(0, 200), st.just(None)),
                st.tuples(st.just("recover"), st.integers(0, 200), st.just(None)),
            ),
            max_size=max_events,
        )
    )
    return graph, events


def _apply_script_step(graph, step, failed):
    """Apply one drawn event; returns the new graph (or None to skip)."""
    kind, arg, value = step
    if kind == "cost":
        return graph.with_cost(arg, value), failed
    if kind == "fail":
        edges = list(graph.edges)
        u, v = edges[arg % len(edges)]
        candidate = graph.without_edge(u, v)
        if not candidate.is_connected():
            return None, failed  # keep route trees comparable
        return candidate, failed + [(u, v)]
    # recover: prefer re-adding a failed link, else do nothing
    if failed:
        u, v = failed[arg % len(failed)]
        if not graph.has_edge(u, v):
            remaining = [e for e in failed if e != (u, v)]
            return graph.with_edge(u, v), remaining
    return None, failed


class TestDifferentialEpochs:
    @settings(max_examples=30, deadline=None)
    @given(event_scripts())
    def test_every_epoch_bit_identical_to_reference(self, script):
        graph, events = script
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)
        failed: list = []
        for step in events:
            mutated, failed = _apply_script_step(graph, step, failed)
            if mutated is None:
                continue
            graph = mutated
            assert_epoch_identical(engine, graph)

    @settings(max_examples=15, deadline=None)
    @given(event_scripts(max_events=6))
    def test_warm_engine_equals_fresh_engine_per_epoch(self, script):
        # The cache must be invisible: a warm engine and a brand-new one
        # agree on every epoch (catches stale-state bugs the reference
        # comparison alone would also catch, but with a sharper message).
        graph, events = script
        warm = IncrementalEngine()
        failed: list = []
        for step in [("cost", 0, 1.0)] + events:
            mutated, failed = _apply_script_step(graph, step, failed)
            if mutated is None:
                continue
            graph = mutated
            warm_rows = _outcome(lambda: warm.price_table(graph).rows)
            cold_rows = _outcome(lambda: IncrementalEngine().price_table(graph).rows)
            assert warm_rows == cold_rows


class TestBiconnectivityBreakAndRecovery:
    def test_break_raises_identically_then_recovers(self):
        # A 5-cycle is biconnected; removing any edge leaves a path
        # (connected but not biconnected) -> NotBiconnectedError from
        # the price sweep; re-adding the edge must fully recover.
        graph = ASGraph(
            nodes=[(i, float(i % 3)) for i in range(5)],
            edges=[(i, (i + 1) % 5) for i in range(5)],
        )
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)

        broken = graph.without_edge(0, 4)
        with pytest.raises(NotBiconnectedError) as warm_err:
            engine.price_table(broken)
        with pytest.raises(NotBiconnectedError) as cold_err:
            compute_price_table(broken)
        assert str(warm_err.value) == str(cold_err.value)

        # Routes still exist on the path graph and must stay identical.
        assert_epoch_identical(engine, broken)
        # Recovery: the avoiding caches that went incomplete must not
        # be trusted -- full bit-identity on the healed graph.
        assert_epoch_identical(engine, graph.with_cost(2, 9.0))

    def test_disconnection_error_parity(self):
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            edges=[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)],
        )
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)
        # 3 keeps only one incident edge; removing it disconnects.
        lonely = graph.without_edge(2, 3).without_edge(0, 3)
        with pytest.raises(DisconnectedGraphError) as warm_err:
            engine.all_pairs(lonely)
        with pytest.raises(DisconnectedGraphError) as cold_err:
            all_pairs_lcp(lonely)
        assert str(warm_err.value) == str(cold_err.value)


class TestCacheAccounting:
    def test_cold_start_is_all_misses(self, fig1):
        engine = IncrementalEngine()
        engine.all_pairs(fig1)
        assert engine.stats.hits == 0
        assert engine.stats.misses == fig1.num_nodes
        assert engine.stats.invalidations == 0

    def test_same_graph_object_is_free(self, fig1):
        engine = IncrementalEngine()
        engine.price_table(fig1)
        runs = engine.stats.dijkstra_runs
        engine.price_table(fig1)
        engine.all_pairs(fig1)
        assert engine.stats.dijkstra_runs == runs

    def test_equal_graph_new_object_is_free(self, fig1):
        engine = IncrementalEngine()
        engine.all_pairs(fig1)
        runs = engine.stats.dijkstra_runs
        clone = ASGraph(
            nodes=[(node, fig1.cost(node)) for node in fig1.nodes],
            edges=list(fig1.edges),
        )
        engine.all_pairs(clone)
        assert engine.stats.dijkstra_runs == runs

    def test_cost_change_reuses_unaffected_trees(self, fig1):
        engine = IncrementalEngine()
        engine.price_table(fig1)
        before = engine.stats.snapshot()
        # A strict increase at one node: only trees transiting it recompute.
        engine.price_table(fig1.with_cost(0, fig1.cost(0) + 10.0))
        after = engine.stats.snapshot()
        hits, misses, invalidations = (after[i] - before[i] for i in range(3))
        assert hits > 0  # unaffected trees were reused
        assert invalidations > 0  # something was event-scoped out
        # Far fewer Dijkstras than a cold rebuild of trees + avoiding sweep.
        assert misses < before[1]

    def test_reset_forgets_everything(self, fig1):
        engine = IncrementalEngine()
        engine.price_table(fig1)
        engine.reset()
        assert engine.cached_destinations == 0
        before = engine.stats.snapshot()
        engine.all_pairs(fig1)
        assert engine.stats.hits == before[0]  # cold again: no hits

    def test_counters_emitted_under_observer(self, fig1):
        engine = IncrementalEngine()
        with obs_mod.observed() as observer:
            engine.price_table(fig1)
            engine.price_table(fig1.with_cost(0, 99.0))
        assert observer.counter_total(
            metric_names.CACHE_MISSES, engine="incremental"
        ) == engine.stats.misses
        assert observer.counter_total(
            metric_names.CACHE_HITS, engine="incremental"
        ) == engine.stats.hits
        assert observer.counter_total(
            metric_names.CACHE_INVALIDATIONS, engine="incremental"
        ) == engine.stats.invalidations


_STAT_NAMES = (
    "hits",
    "misses",
    "invalidations",
    "dijkstras",
    "relaxed",
    "detached",
    "reanchored",
)


def _stat_delta(engine, before):
    after = engine.stats.snapshot()
    return {name: after[i] - before[i] for i, name in enumerate(_STAT_NAMES)}


def _assert_repaired_epoch(engine, graph):
    """One warm epoch: repairs only (zero from-scratch Dijkstras at the
    sync point), then full bit-identity including prices.  Returns the
    repair-counter delta of the sync.  (price_table afterwards may
    still lazily build avoiding trees for newly transiting (j, k)
    pairs; that is population, not invalidation, so the no-Dijkstra
    claim is measured around the tree sync.)"""
    before = engine.stats.snapshot()
    engine.all_pairs(graph)
    delta = _stat_delta(engine, before)
    assert delta["dijkstras"] == 0
    assert_epoch_identical(engine, graph)
    return delta


def _repair_graph():
    """An 8-cycle with chords: biconnected, chord-rich enough that
    failing a chord leaves a biconnected graph and repairs are
    non-trivial (multiple trees route through every chord)."""
    return ASGraph(
        nodes=[(i, float((i * 3) % 5)) for i in range(8)],
        edges=[(i, (i + 1) % 8) for i in range(8)]
        + [(0, 2), (1, 4), (3, 6), (5, 7)],
    )


class TestRepairPaths:
    """The dynamic-SSSP repair path: no full Dijkstra once warm.

    Every scenario here previously either rebuilt whole trees (single
    worsening/improving events) or fell back to a full rebuild
    (multiple improving changes in one diff).  With in-place repair the
    `dijkstras` counter must stay flat across every warm epoch while
    bit-identity to the cold reference still holds.
    """

    def test_recovery_storm_repairs_without_dijkstra(self):
        graph = _repair_graph()
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)

        storm = [(0, 2), (1, 4), (3, 6)]
        current = graph
        for u, v in storm:  # fail one chord per epoch
            current = current.without_edge(u, v)
            delta = _assert_repaired_epoch(engine, current)
            assert delta["detached"] > 0 and delta["reanchored"] > 0

        for u, v in storm:  # then recover one per epoch
            current = current.with_edge(u, v)
            delta = _assert_repaired_epoch(engine, current)
            assert delta["relaxed"] > 0  # improve waves, no detach cone
            assert delta["detached"] == 0

    def test_alternating_improve_worsen_bursts(self):
        graph = _repair_graph()
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)
        current = graph
        repaired = 0
        for node in (1, 4, 6):
            original = current.cost(node)
            for new_cost in (original + 6.0, original):  # worsen, restore
                current = current.with_cost(node, new_cost)
                delta = _assert_repaired_epoch(engine, current)
                repaired += (
                    delta["relaxed"] + delta["detached"] + delta["reanchored"]
                )
        assert repaired > 0  # the bursts exercised real repair waves

    def test_multi_improving_changes_in_one_epoch(self):
        # Two decreases in ONE diff: the case that used to trigger the
        # full-rebuild fallback.  Now both must ride sequential improve
        # waves with zero from-scratch Dijkstras.
        graph = _repair_graph().with_cost(2, 9.0).with_cost(5, 8.0)
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)
        improved = graph.with_cost(2, 0.5).with_cost(5, 0.0)
        delta = _assert_repaired_epoch(engine, improved)
        assert delta["relaxed"] > 0
        assert delta["invalidations"] > 0  # repairs are counted as touches

    def test_mixed_compound_epoch(self):
        # Removal + addition + improving and worsening cost changes in a
        # single diff; elementary events compose sequentially, each
        # against the intermediate graph, still without any rebuild.
        graph = _repair_graph()
        engine = IncrementalEngine()
        assert_epoch_identical(engine, graph)
        mutated = (
            graph.without_edge(1, 4)
            .with_edge(2, 6)
            .with_cost(3, 0.0)
            .with_cost(7, 9.5)
        )
        delta = _assert_repaired_epoch(engine, mutated)
        assert delta["detached"] > 0 and delta["relaxed"] > 0

    def test_repair_counters_emitted_under_observer(self, fig1):
        engine = IncrementalEngine()
        obs_mod.reset_default()  # totals must be this test's alone
        with obs_mod.observed() as observer:
            engine.price_table(fig1)
            engine.price_table(fig1.with_cost(0, 99.0))
            engine.price_table(fig1.with_cost(0, 0.25))
        for metric, total in (
            (metric_names.REPAIR_RELAXED, engine.stats.relaxed),
            (metric_names.REPAIR_DETACHED, engine.stats.detached),
            (metric_names.REPAIR_REANCHORED, engine.stats.reanchored),
        ):
            assert observer.counter_total(metric, engine="incremental") == total
        assert engine.stats.detached > 0  # the increase orphaned a cone
        assert engine.stats.relaxed > 0  # the decrease ran improve waves

    @settings(max_examples=20, deadline=None)
    @given(event_scripts(max_events=8))
    def test_no_tree_dijkstras_while_node_set_is_stable(self, script):
        # Property form: whatever the script does (costs, failures,
        # recoveries -- the node set never changes), route trees are
        # only ever repaired, never rebuilt: the from-scratch Dijkstra
        # counter stays flat after the initial build.  (price_table may
        # still build avoiding trees for *newly transiting* (j, k)
        # pairs, which is lazy population, not invalidation -- hence
        # the all_pairs surface here.)
        graph, events = script
        engine = IncrementalEngine()
        _outcome(lambda: engine.all_pairs(graph))
        baseline = engine.stats.snapshot()
        failed: list = []
        for step in events:
            mutated, failed = _apply_script_step(graph, step, failed)
            if mutated is None:
                continue
            graph = mutated
            _outcome(lambda: engine.all_pairs(graph))
        assert engine.stats.dijkstra_runs == baseline[3]


class TestDynamicsComposition:
    def test_incremental_engine_with_delta_protocol_matches_reference(self):
        # Composition: the stateful verification engine rides along the
        # delta-transport BGP network and must change nothing observable.
        from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
        from repro.core.dynamics import dynamic_scenario
        from repro.graphs.generators import fig1_graph

        graph = fig1_graph()
        # (2, 3) is fig1's only edge whose removal stays biconnected.
        events = [
            LinkFailure(2, 3),
            CostChange(3, 7.0),
            LinkRecovery(2, 3),
            CostChange(3, 1.0),
        ]
        baseline = dynamic_scenario(graph, events)
        combo = dynamic_scenario(
            graph, events, engine="incremental", protocol="delta"
        )
        full = dynamic_scenario(
            graph, events, engine="incremental", protocol="full"
        )
        for run in (baseline, combo, full):
            assert run.all_ok and run.all_within_bound
        for base_epoch, combo_epoch, full_epoch in zip(
            baseline.epochs, combo.epochs, full.epochs
        ):
            assert base_epoch.stages == combo_epoch.stages == full_epoch.stages
            assert (
                base_epoch.verification.prices_checked
                == combo_epoch.verification.prices_checked
                == full_epoch.verification.prices_checked
            )

    def test_engine_instance_is_reused_across_epochs(self):
        from repro.bgp.events import CostChange
        from repro.core.dynamics import dynamic_scenario
        from repro.graphs.generators import fig1_graph

        graph = fig1_graph()
        engine = get_engine("incremental")
        dynamic_scenario(graph, [CostChange(3, 7.0)], engine=engine)
        assert isinstance(engine, IncrementalEngine)
        # Two epochs were verified with ONE engine: the second was warm.
        assert engine.stats.hits > 0
