"""Tests for repro.routing.engines.vectorized (scipy cost engine)."""

import importlib
import sys
import warnings

import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    fig1_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
)
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import avoiding_tree
from repro.routing.engines.vectorized import (
    _directed_weight_matrix,
    all_pairs_costs,
    avoiding_costs_matrix,
    vcg_price_rows,
)


class TestDeprecatedShim:
    def test_scipy_engine_import_warns_and_reexports(self):
        sys.modules.pop("repro.routing.scipy_engine", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.import_module("repro.routing.scipy_engine")
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.routing.engines.vectorized" in str(w.message)
            for w in caught
        )
        assert shim.all_pairs_costs is all_pairs_costs
        assert shim.vcg_price_rows is vcg_price_rows


class TestAllPairsCosts:
    def test_matches_reference_on_fig1(self, fig1):
        matrix, index = all_pairs_costs(fig1)
        routes = all_pairs_lcp(fig1)
        for source in fig1.nodes:
            for destination in fig1.nodes:
                if source == destination:
                    continue
                assert matrix[index[source], index[destination]] == pytest.approx(
                    routes.cost(source, destination)
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference_on_random(self, seed):
        graph = random_biconnected_graph(
            12, 0.3, seed=seed, cost_sampler=integer_costs(0, 6)
        )
        matrix, index = all_pairs_costs(graph)
        routes = all_pairs_lcp(graph)
        for (source, destination), _path in routes.paths.items():
            assert matrix[index[source], index[destination]] == pytest.approx(
                routes.cost(source, destination)
            )

    def test_diagonal_zero(self, fig1):
        matrix, _index = all_pairs_costs(fig1)
        assert np.all(np.diag(matrix) == 0.0)

    def test_zero_cost_edges_survive(self):
        # all-zero node costs: every entry must be 0, not "unreachable"
        graph = ASGraph(
            nodes=[(0, 0.0), (1, 0.0), (2, 0.0)],
            edges=[(0, 1), (1, 2), (0, 2)],
        )
        matrix, _index = all_pairs_costs(graph)
        assert np.all(matrix == 0.0)

    def test_disconnected_raises(self):
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            edges=[(0, 1), (2, 3)],
        )
        with pytest.raises(DisconnectedGraphError):
            all_pairs_costs(graph)


class TestAvoidingCostsMatrix:
    def test_matches_reference(self, fig1, labels):
        D = labels["D"]
        matrix, index = avoiding_costs_matrix(fig1, D)
        tree = avoiding_tree(fig1, labels["Z"], D)
        for source in tree.sources():
            assert matrix[index[source], index[labels["Z"]]] == pytest.approx(
                tree.cost(source)
            )

    def test_removed_node_is_infinite(self, fig1, labels):
        D = labels["D"]
        matrix, index = avoiding_costs_matrix(fig1, D)
        others = [n for n in fig1.nodes if n != D]
        for other in others:
            assert np.isinf(matrix[index[D], index[other]])
            assert np.isinf(matrix[index[other], index[D]])

    def test_isp_like_consistency(self):
        graph = isp_like_graph(15, seed=2, cost_sampler=integer_costs(1, 5))
        k = graph.nodes[3]
        matrix, index = avoiding_costs_matrix(graph, k)
        for destination in graph.nodes:
            if destination == k:
                continue
            tree = avoiding_tree(graph, destination, k)
            for source in tree.sources():
                assert matrix[index[source], index[destination]] == pytest.approx(
                    tree.cost(source)
                )


class TestZeroCostExactness:
    """Regression: ``c_k = 0`` nodes must round-trip *exactly*.

    Zero node costs become stored zeros in the CSR weight matrix; an
    earlier design nudged them to a tiny positive weight and
    compensated afterwards, which accumulated error across repeated
    k-avoiding calls.  These tests pin exact (``==``, no epsilon)
    behavior end to end.
    """

    @pytest.fixture
    def zero_graph(self):
        """Biconnected ring with free transit on nodes 1 and 3: cost 0
        beats every alternative, so they sit on many selected LCPs and
        earn positive VCG premiums when avoided."""
        return ASGraph(
            nodes=[(0, 2.0), (1, 0.0), (2, 3.0), (3, 0.0), (4, 5.0), (5, 1.0)],
            edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        )

    def test_stored_zeros_survive_construction(self, zero_graph):
        matrix, _costs, _index = _directed_weight_matrix(zero_graph)
        # two directed entries per undirected edge, zeros included
        assert matrix.nnz == 2 * zero_graph.num_edges
        assert (matrix.data == 0.0).sum() > 0

    def test_all_pairs_costs_exact(self, zero_graph):
        matrix, index = all_pairs_costs(zero_graph)
        routes = all_pairs_lcp(zero_graph)
        for (i, j), _path in routes.paths.items():
            assert matrix[index[i], index[j]] == routes.cost(i, j)

    def test_avoiding_costs_exact_for_zero_k(self, zero_graph):
        for k in (1, 3):  # the zero-cost nodes themselves
            matrix, index = avoiding_costs_matrix(zero_graph, k)
            for destination in zero_graph.nodes:
                if destination == k:
                    continue
                tree = avoiding_tree(zero_graph, destination, k)
                for source in tree.sources():
                    assert matrix[index[source], index[destination]] == tree.cost(source)

    def test_repeated_avoiding_calls_do_not_accumulate(self, zero_graph):
        """The bug shape the nudge had: error compounding across the
        per-k sweep.  Repeated calls must be bit-identical."""
        for k in zero_graph.nodes:
            first, _ = avoiding_costs_matrix(zero_graph, k)
            second, _ = avoiding_costs_matrix(zero_graph, k)
            assert np.array_equal(first, second)

    def test_vectorized_prices_exact_with_zero_cost_transit(self, zero_graph):
        reference = compute_price_table(zero_graph)
        rows = vcg_price_rows(zero_graph)
        assert rows == reference.rows

    def test_zero_cost_prices_can_be_positive(self, zero_graph):
        """A free transit node still earns its VCG premium
        (``p^k = 0 + Cost(P_-k) - Cost(P) >= 0``), and the vectorized
        path reports it exactly."""
        rows = vcg_price_rows(zero_graph)
        zero_node_prices = [
            price
            for row in rows.values()
            for k, price in row.items()
            if k in (1, 3)
        ]
        assert zero_node_prices, "zero-cost nodes should be transit somewhere"
        assert any(price > 0 for price in zero_node_prices)
