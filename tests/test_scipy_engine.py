"""Tests for repro.routing.scipy_engine (vectorized cost engine)."""

import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    fig1_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
)
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.scipy_engine import all_pairs_costs, avoiding_costs_matrix
from repro.routing.avoiding import avoiding_tree


class TestAllPairsCosts:
    def test_matches_reference_on_fig1(self, fig1):
        matrix, index = all_pairs_costs(fig1)
        routes = all_pairs_lcp(fig1)
        for source in fig1.nodes:
            for destination in fig1.nodes:
                if source == destination:
                    continue
                assert matrix[index[source], index[destination]] == pytest.approx(
                    routes.cost(source, destination)
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference_on_random(self, seed):
        graph = random_biconnected_graph(
            12, 0.3, seed=seed, cost_sampler=integer_costs(0, 6)
        )
        matrix, index = all_pairs_costs(graph)
        routes = all_pairs_lcp(graph)
        for (source, destination), _path in routes.paths.items():
            assert matrix[index[source], index[destination]] == pytest.approx(
                routes.cost(source, destination)
            )

    def test_diagonal_zero(self, fig1):
        matrix, _index = all_pairs_costs(fig1)
        assert np.all(np.diag(matrix) == 0.0)

    def test_zero_cost_edges_survive(self):
        # all-zero node costs: every entry must be 0, not "unreachable"
        graph = ASGraph(
            nodes=[(0, 0.0), (1, 0.0), (2, 0.0)],
            edges=[(0, 1), (1, 2), (0, 2)],
        )
        matrix, _index = all_pairs_costs(graph)
        assert np.all(matrix == 0.0)

    def test_disconnected_raises(self):
        graph = ASGraph(
            nodes=[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)],
            edges=[(0, 1), (2, 3)],
        )
        with pytest.raises(DisconnectedGraphError):
            all_pairs_costs(graph)


class TestAvoidingCostsMatrix:
    def test_matches_reference(self, fig1, labels):
        D = labels["D"]
        matrix, index = avoiding_costs_matrix(fig1, D)
        tree = avoiding_tree(fig1, labels["Z"], D)
        for source in tree.sources():
            assert matrix[index[source], index[labels["Z"]]] == pytest.approx(
                tree.cost(source)
            )

    def test_removed_node_is_infinite(self, fig1, labels):
        D = labels["D"]
        matrix, index = avoiding_costs_matrix(fig1, D)
        others = [n for n in fig1.nodes if n != D]
        for other in others:
            assert np.isinf(matrix[index[D], index[other]])
            assert np.isinf(matrix[index[other], index[D]])

    def test_isp_like_consistency(self):
        graph = isp_like_graph(15, seed=2, cost_sampler=integer_costs(1, 5))
        k = graph.nodes[3]
        matrix, index = avoiding_costs_matrix(graph, k)
        for destination in graph.nodes:
            if destination == k:
                continue
            tree = avoiding_tree(graph, destination, k)
            for source in tree.sources():
                assert matrix[index[source], index[destination]] == pytest.approx(
                    tree.cost(source)
                )
