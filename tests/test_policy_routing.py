"""Tests for repro.policy (Gao-Rexford valley-free routing)."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.policy.engine import run_policy_routing
from repro.policy.relationships import (
    PREFERENCE_RANK,
    Relationship,
    RelationshipMap,
    annotate_isp_hierarchy,
)
from repro.policy.valley_free import is_valley_free, transit_allowed
from repro.routing.allpairs import all_pairs_lcp


@pytest.fixture
def small_hierarchy():
    """Two peered providers (0, 1), two customers each (2, 3 under 0;
    4, 5 under 1), plus a multihomed stub 6 under 2 and 4."""
    graph = ASGraph(
        nodes=[(i, 1.0) for i in range(7)],
        edges=[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5), (2, 6), (4, 6), (2, 3), (4, 5)],
    )
    labels = {
        (0, 1): Relationship.PEER,
        (0, 2): Relationship.CUSTOMER,
        (0, 3): Relationship.CUSTOMER,
        (1, 4): Relationship.CUSTOMER,
        (1, 5): Relationship.CUSTOMER,
        (2, 6): Relationship.CUSTOMER,
        (4, 6): Relationship.CUSTOMER,
        (2, 3): Relationship.PEER,
        (4, 5): Relationship.PEER,
    }
    return graph, RelationshipMap(graph, labels)


class TestRelationshipMap:
    def test_inverse_consistency(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        assert relationships.relationship(0, 2) is Relationship.CUSTOMER
        assert relationships.relationship(2, 0) is Relationship.PROVIDER
        assert relationships.relationship(0, 1) is Relationship.PEER
        assert relationships.relationship(1, 0) is Relationship.PEER

    def test_role_queries(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        assert relationships.customers(0) == (2, 3)
        assert relationships.providers(6) == (2, 4)
        assert relationships.peers(0) == (1,)

    def test_unlabeled_link_rejected(self):
        graph = ASGraph(nodes=[(0, 1.0), (1, 1.0), (2, 1.0)],
                        edges=[(0, 1), (1, 2), (0, 2)])
        with pytest.raises(GraphError, match="unlabeled"):
            RelationshipMap(graph, {(0, 1): Relationship.PEER})

    def test_inconsistent_labels_rejected(self):
        graph = ASGraph(nodes=[(0, 1.0), (1, 1.0)], edges=[(0, 1)])
        with pytest.raises(GraphError, match="inconsistent"):
            RelationshipMap(
                graph,
                {(0, 1): Relationship.CUSTOMER, (1, 0): Relationship.PEER},
            )

    def test_hierarchy_acyclicity(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        assert relationships.is_provider_customer_acyclic()

    def test_cycle_detected(self):
        graph = ASGraph(nodes=[(0, 1.0), (1, 1.0), (2, 1.0)],
                        edges=[(0, 1), (1, 2), (0, 2)])
        cyclic = RelationshipMap(
            graph,
            {
                (0, 1): Relationship.CUSTOMER,  # 1 is 0's customer
                (1, 2): Relationship.CUSTOMER,  # 2 is 1's customer
                (2, 0): Relationship.CUSTOMER,  # 0 is 2's customer (!)
            },
        )
        assert not cyclic.is_provider_customer_acyclic()

    def test_preference_ranks(self):
        assert PREFERENCE_RANK[Relationship.CUSTOMER] < PREFERENCE_RANK[Relationship.PEER]
        assert PREFERENCE_RANK[Relationship.PEER] < PREFERENCE_RANK[Relationship.PROVIDER]

    def test_annotate_isp_hierarchy(self):
        graph = isp_like_graph(15, seed=1)
        relationships = annotate_isp_hierarchy(graph, core_size=3)
        assert relationships.is_provider_customer_acyclic()
        # core links are peerings
        for u, v in graph.edges:
            if u < 3 and v < 3:
                assert relationships.relationship(u, v) is Relationship.PEER


class TestValleyFree:
    def test_up_peer_down_is_valid(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        # 6 -> 2 -> 0 -> 1 -> 4: up, up, peer, down
        assert is_valley_free((6, 2, 0, 1, 4), relationships)

    def test_two_peer_links_invalid(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        # 3 -> 2 -> ... peer then up is a valley
        assert not is_valley_free((3, 2, 0, 1), relationships)
        # peer (2,3) then peer... construct: 6->2->3 uses up then peer: ok
        assert is_valley_free((6, 2, 3), relationships)

    def test_down_then_up_invalid(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        # 0 -> 2 -> 6 -> 4: down, down, up -- a valley through the stub
        assert not is_valley_free((0, 2, 6, 4), relationships)

    def test_transit_allowed_footnote(self, small_hierarchy):
        _graph, relationships = small_hierarchy
        # 2 carries between customer 6 and provider 0: allowed
        assert transit_allowed(2, 6, 0, relationships)
        # 0 carries between peer 1 and customer 2: allowed
        assert transit_allowed(0, 1, 2, relationships)
        # 6 carrying between its two providers: forbidden (the footnote)
        assert not transit_allowed(6, 2, 4, relationships)


class TestPolicyEngine:
    def test_converges_and_stays_valley_free(self, small_hierarchy):
        graph, relationships = small_hierarchy
        result = run_policy_routing(graph, relationships)
        routes = result.routes_by_pair()
        for path in routes.values():
            assert is_valley_free(path, relationships)

    def test_stub_never_transits_providers(self, small_hierarchy):
        graph, relationships = small_hierarchy
        result = run_policy_routing(graph, relationships)
        for (source, destination), path in result.routes_by_pair().items():
            assert 6 not in path[1:-1] or not (
                set(path) >= {2, 6, 4}
            ), f"stub 6 providing transit on {path}"

    def test_policy_cost_never_beats_lcp(self):
        graph = isp_like_graph(18, seed=4, cost_sampler=integer_costs(1, 5))
        relationships = annotate_isp_hierarchy(graph, core_size=4)
        result = run_policy_routing(graph, relationships)
        lcp = all_pairs_lcp(graph)
        for (source, destination), path in result.routes_by_pair().items():
            policy_cost = graph.path_cost(path) if len(path) >= 2 else 0.0
            assert policy_cost >= lcp.cost(source, destination) - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_isp_family_converges(self, seed):
        graph = isp_like_graph(16, seed=seed, cost_sampler=integer_costs(1, 6))
        relationships = annotate_isp_hierarchy(graph, core_size=3)
        result = run_policy_routing(graph, relationships)
        routes = result.routes_by_pair()
        assert routes  # something converged
        for path in routes.values():
            assert is_valley_free(path, relationships)

    def test_customer_route_preferred_over_peer(self, small_hierarchy):
        graph, relationships = small_hierarchy
        result = run_policy_routing(graph, relationships)
        # 0 reaches 6 via its customer 2 (not via peer 1 -> 4 -> 6)
        path = result.path(0, 6)
        assert path == (0, 2, 6)
