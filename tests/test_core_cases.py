"""Tests for repro.core.cases (the four update rules, in isolation).

Each test constructs an advertisement by hand and checks the candidate
values against the inequality derivations of Section 6.
"""

import math

import pytest

from repro.bgp.messages import RouteAdvertisement
from repro.core.cases import NeighborRelation, classify_neighbor, price_candidates

INF = float("inf")


def advert(sender, destination, path, cost, node_costs, prices=None, generation=0):
    return RouteAdvertisement(
        sender=sender,
        destination=destination,
        path=path,
        cost=cost,
        node_costs=node_costs,
        prices=prices or {},
        generation=generation,
    )


class TestClassification:
    def test_parent(self):
        a = advert(1, 9, (1, 9), 0.0, {1: 1.0, 9: 1.0})
        assert classify_neighbor(0, (0, 1, 9), 1, a) is NeighborRelation.PARENT

    def test_child(self):
        a = advert(2, 9, (2, 0, 1, 9), 2.0, {2: 1.0, 0: 1.0, 1: 1.0, 9: 1.0})
        assert classify_neighbor(0, (0, 1, 9), 2, a) is NeighborRelation.CHILD

    def test_other(self):
        a = advert(3, 9, (3, 9), 0.0, {3: 1.0, 9: 1.0})
        assert classify_neighbor(0, (0, 1, 9), 3, a) is NeighborRelation.OTHER

    def test_other_when_no_advert(self):
        assert classify_neighbor(0, (0, 1, 9), 3, None) is NeighborRelation.OTHER

    def test_parent_takes_precedence(self):
        # path through neighbor 1 -> parent even if classification data
        # could suggest otherwise
        a = advert(1, 9, (1, 9), 0.0, {1: 1.0, 9: 1.0})
        assert classify_neighbor(0, (0, 1, 9), 1, a) is NeighborRelation.PARENT


class TestParentCandidates:
    def test_prices_transfer_unchanged(self):
        # i = 0 routes 0-1-2-9; parent 1 has price for transit node 2
        a = advert(
            1, 9, (1, 2, 9), 3.0, {1: 1.0, 2: 3.0, 9: 1.0}, prices={2: 4.5}
        )
        candidates = price_candidates(
            self_id=0,
            self_cost=1.0,
            my_path=(0, 1, 2, 9),
            my_cost=4.0,
            my_node_costs={0: 1.0, 1: 1.0, 2: 3.0, 9: 1.0},
            neighbor=1,
            advert=a,
        )
        assert candidates == {2: 4.5}  # Eq. 2: p^k_ij <= p^k_aj

    def test_no_candidate_for_parent_itself(self):
        a = advert(1, 9, (1, 2, 9), 3.0, {1: 1.0, 2: 3.0, 9: 1.0}, prices={2: 4.5})
        candidates = price_candidates(
            self_id=0,
            self_cost=1.0,
            my_path=(0, 1, 2, 9),
            my_cost=4.0,
            my_node_costs={0: 1.0, 1: 1.0, 2: 3.0, 9: 1.0},
            neighbor=1,
            advert=a,
        )
        assert 1 not in candidates  # the excluded a == k parent case

    def test_infinite_parent_price_passes_through(self):
        a = advert(1, 9, (1, 2, 9), 3.0, {1: 1.0, 2: 3.0, 9: 1.0}, prices={2: INF})
        candidates = price_candidates(
            0, 1.0, (0, 1, 2, 9), 4.0,
            {0: 1.0, 1: 1.0, 2: 3.0, 9: 1.0}, 1, a,
        )
        assert candidates[2] == INF


class TestChildAndOtherCandidates:
    def test_child_uses_advert_consistent_formula(self):
        # child a=2 routes (2, 0, 1, 9); my path (0, 1, 9); k = 1.
        # Eq. 4 evaluated on the advert: p + c_a + c(a,j) - c(i,j)
        a = advert(
            2, 9, (2, 0, 1, 9), 3.0,
            {2: 2.0, 0: 1.0, 1: 2.0, 9: 1.0},
            prices={0: 5.0, 1: 7.0},
        )
        candidates = price_candidates(
            self_id=0,
            self_cost=1.0,
            my_path=(0, 1, 9),
            my_cost=2.0,
            my_node_costs={0: 1.0, 1: 2.0, 9: 1.0},
            neighbor=2,
            advert=a,
        )
        # p^1_aj + c_a + c(a,j) - c(i,j) = 7 + 2 + 3 - 2 = 10
        assert candidates[1] == pytest.approx(10.0)
        # at convergence c(a,j) = c_i + c(i,j) makes this equal Eq. 3:
        # p + c_i + c_a = 7 + 1 + 2 = 10
        assert candidates[1] == pytest.approx(7.0 + 1.0 + 2.0)

    def test_other_with_k_on_neighbor_path(self):
        # k = 1 on both paths; Eq. 4
        a = advert(
            3, 9, (3, 1, 9), 2.0, {3: 4.0, 1: 2.0, 9: 1.0}, prices={1: 6.0}
        )
        candidates = price_candidates(
            0, 1.0, (0, 1, 9), 2.0, {0: 1.0, 1: 2.0, 9: 1.0}, 3, a,
        )
        # 6 + 4 + 2 - 2 = 10
        assert candidates[1] == pytest.approx(10.0)

    def test_other_with_k_off_neighbor_path(self):
        # k = 1 not on (3, 4, 9); Eq. 5: c_k + c_a + c(a,j) - c(i,j)
        a = advert(3, 9, (3, 4, 9), 5.0, {3: 4.0, 4: 5.0, 9: 1.0})
        candidates = price_candidates(
            0, 1.0, (0, 1, 9), 2.0, {0: 1.0, 1: 2.0, 9: 1.0}, 3, a,
        )
        # 2 + 4 + 5 - 2 = 9
        assert candidates[1] == pytest.approx(9.0)

    def test_neighbor_equal_to_k_skipped(self):
        # neighbor 1 IS the transit node k on my path but not my parent:
        # every construction routes through it, so no candidate
        a = advert(1, 9, (1, 5, 9), 3.0, {1: 2.0, 5: 3.0, 9: 1.0}, prices={5: 4.0})
        candidates = price_candidates(
            0, 1.0, (0, 2, 1, 9), 5.0,
            {0: 1.0, 2: 3.0, 1: 2.0, 9: 1.0}, 1, a,
        )
        assert 1 not in candidates

    def test_destination_neighbor_gives_direct_detour(self):
        # destination 9 is my physical neighbor: appending the link i-9
        # to nothing is a transit-free detour
        a = advert(9, 9, (9,), 0.0, {9: 1.0})
        candidates = price_candidates(
            0, 1.0, (0, 1, 9), 2.0, {0: 1.0, 1: 2.0, 9: 1.0}, 9, a,
        )
        # c_k + 0 - c(i,j) = 2 + 0 - 2 = 0
        assert candidates[1] == pytest.approx(0.0)

    def test_direct_route_has_no_candidates(self):
        a = advert(1, 9, (1, 9), 0.0, {1: 1.0, 9: 1.0})
        assert price_candidates(
            0, 1.0, (0, 9), 0.0, {0: 1.0, 9: 1.0}, 1, a,
        ) == {}

    def test_no_advert_no_candidates(self):
        assert price_candidates(
            0, 1.0, (0, 1, 9), 2.0, {0: 1.0, 1: 2.0, 9: 1.0}, 3, None,
        ) == {}

    def test_missing_price_entry_skipped(self):
        # k on neighbor's path but the neighbor has no price for it yet
        a = advert(3, 9, (3, 1, 9), 2.0, {3: 4.0, 1: 2.0, 9: 1.0}, prices={})
        candidates = price_candidates(
            0, 1.0, (0, 1, 9), 2.0, {0: 1.0, 1: 2.0, 9: 1.0}, 3, a,
        )
        assert candidates == {}
