"""Tests for repro.mechanism.welfare."""

import pytest

from repro.mechanism.vcg import compute_price_table
from repro.mechanism.welfare import (
    node_incurred_cost,
    node_utility,
    total_cost,
    total_payment,
    welfare_summary,
)
from repro.routing.allpairs import all_pairs_lcp


class TestIncurredCost:
    def test_single_packet(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["X"], labels["Z"]): 1.0}
        assert node_incurred_cost(routes, traffic, labels["D"]) == 1.0
        assert node_incurred_cost(routes, traffic, labels["B"]) == 2.0
        assert node_incurred_cost(routes, traffic, labels["A"]) == 0.0

    def test_intensity_scales(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["X"], labels["Z"]): 4.0}
        assert node_incurred_cost(routes, traffic, labels["D"]) == 4.0

    def test_true_cost_override(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["X"], labels["Z"]): 1.0}
        assert node_incurred_cost(routes, traffic, labels["D"], true_cost=7.0) == 7.0


class TestTotalCost:
    def test_equals_sum_of_path_costs(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["X"], labels["Z"]): 1.0, (labels["Y"], labels["Z"]): 2.0}
        # V = 1*3 + 2*1 = 5
        assert total_cost(routes, traffic) == 5.0

    def test_true_costs_override(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["X"], labels["Z"]): 1.0}
        # route is X-B-D-Z (chosen by declared costs); truth makes D cost 10
        true_costs = dict(fig1.costs())
        true_costs[labels["D"]] = 10.0
        assert total_cost(routes, traffic, true_costs=true_costs) == 12.0


class TestUtility:
    def test_truthful_utility_is_marginal_benefit(self, fig1, labels):
        table = compute_price_table(fig1)
        traffic = {(labels["Y"], labels["Z"]): 1.0}
        # D is paid 9, incurs 1 -> utility 8
        assert node_utility(table, traffic, labels["D"]) == 8.0

    def test_idle_node_zero_utility(self, fig1, labels):
        table = compute_price_table(fig1)
        traffic = {(labels["Y"], labels["Z"]): 1.0}
        assert node_utility(table, traffic, labels["A"]) == 0.0

    def test_utility_nonnegative_when_truthful(self, small_random):
        # individual rationality of VCG with truthful declarations
        table = compute_price_table(small_random)
        traffic = {
            (i, j): 1.0
            for i in small_random.nodes
            for j in small_random.nodes
            if i != j
        }
        for node in small_random.nodes:
            assert node_utility(table, traffic, node) >= -1e-9


class TestTotals:
    def test_total_payment_ge_total_cost(self, small_random):
        table = compute_price_table(small_random)
        traffic = {
            (i, j): 2.0
            for i in small_random.nodes
            for j in small_random.nodes
            if i != j
        }
        assert total_payment(table, traffic) >= total_cost(table.routes, traffic) - 1e-9

    def test_welfare_summary_consistency(self, fig1, labels):
        table = compute_price_table(fig1)
        traffic = {(labels["X"], labels["Z"]): 1.0}
        summary = welfare_summary(table, traffic)
        assert summary["total_cost"] == 3.0
        assert summary["total_payment"] == 7.0
        assert summary["overpayment"] == 4.0
        assert summary["overpayment_ratio"] == pytest.approx(7.0 / 3.0)
