"""Tests for repro.types."""

import math

import pytest

from repro.types import INFINITY, is_finite_cost, validate_cost


class TestValidateCost:
    def test_accepts_zero(self):
        assert validate_cost(0) == 0.0

    def test_accepts_positive_float(self):
        assert validate_cost(3.25) == 3.25

    def test_accepts_integer_and_returns_float(self):
        value = validate_cost(7)
        assert value == 7.0
        assert isinstance(value, float)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_cost(-0.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            validate_cost(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError, match="finite"):
            validate_cost(INFINITY)

    def test_error_message_names_the_subject(self):
        with pytest.raises(ValueError, match="cost of node 3"):
            validate_cost(-1, what="cost of node 3")


class TestIsFiniteCost:
    def test_finite_values(self):
        assert is_finite_cost(0.0)
        assert is_finite_cost(12.5)

    def test_infinity_is_not_finite(self):
        assert not is_finite_cost(INFINITY)
        assert not is_finite_cost(-INFINITY)

    def test_nan_is_not_finite(self):
        assert not is_finite_cost(float("nan"))
