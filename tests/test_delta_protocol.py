"""The delta substrate: unit tests, full-vs-delta differential tests,
and randomized (Hypothesis) equivalence under dynamic event sequences.

The contract under test is *bit-identity*: with ``incremental=True``
(delta advertisements + dirty-set scheduling) both engines must produce
exactly the same converged tables, price rows, stage counts, message
counts, and entry accounting as the literal full-table model of
Sect. 5 -- on every graph and across arbitrary fail/restore/change-cost
event sequences.  Only the transport-level rows counters may differ
(that difference *is* the optimization).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.engine import AsynchronousEngine, SynchronousEngine
from repro.bgp.messages import (
    RouteAdvertisement,
    RouteDelta,
    intern_advertisement,
)
from repro.bgp.node import BGPNode
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.exceptions import ProtocolError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    fig1_graph,
    grid_graph,
    integer_costs,
    isp_like_graph,
)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _price_factory(mode):
    def factory(node_id, cost, policy):
        return PriceComputingNode(node_id, cost, policy, mode=mode)

    return factory


def _report_fields(report):
    """The model-level (paper-accounting) view of a ConvergenceReport --
    everything except the transport rows counters."""
    return (
        report.converged,
        report.stages,
        report.total_messages,
        report.total_entries_sent,
        [
            (s.stage, s.nodes_changed, s.messages, s.entries_sent)
            for s in report.per_stage
        ],
    )


def _engine_state(engine):
    """Full converged protocol state: routes, per-node price rows, and
    the StateReport numbers."""
    state = {}
    for node_id, node in engine.nodes.items():
        routes = sorted(
            (d, e.path, e.cost, tuple(sorted(e.node_costs.items())))
            for d, e in node.routes.items()
        )
        prices = sorted(
            (d, tuple(sorted(row.items())))
            for d, row in getattr(node, "price_rows", {}).items()
        )
        state[node_id] = (routes, prices)
    state_report = getattr(engine, "state_report", None)
    if state_report is not None:  # the async engine has no StateReport
        report = state_report()
        state["__state_report__"] = (
            sorted(report.loc_rib_entries.items()),
            sorted(report.adj_rib_in_entries.items()),
            sorted(report.price_entries.items()),
        )
    return state


def _run_pair(graph, node_factory=None, events=()):
    """Run the same workload under both transports; returns
    ((full_reports, full_state), (delta_reports, delta_state), engines)."""
    outcomes = []
    engines = []
    for incremental in (False, True):
        kwargs = {"incremental": incremental}
        if node_factory is not None:
            kwargs["node_factory"] = node_factory
        engine = SynchronousEngine(graph, **kwargs)
        engine.initialize()
        reports = [_report_fields(engine.run())]
        for event, args in events:
            getattr(engine, event)(*args)
            reports.append(_report_fields(engine.run()))
        outcomes.append((reports, _engine_state(engine)))
        engines.append(engine)
    return outcomes[0], outcomes[1], engines


# ----------------------------------------------------------------------
# Unit: RouteDelta / interning / node-level delta machinery
# ----------------------------------------------------------------------
class TestRouteDelta:
    def _advert(self, sender=1, destination=2, path=(1, 2), cost=3.0):
        return RouteAdvertisement(
            sender=sender,
            destination=destination,
            path=path,
            cost=cost,
            node_costs={1: 1.0, 2: 2.0},
        )

    def test_size_accounting(self):
        advert = self._advert()
        delta = RouteDelta(sender=1, updates=(advert,), withdrawals=(7,))
        assert delta.size_rows() == 2
        assert delta.size_entries() == advert.size_entries() + 1
        assert not delta.is_empty
        assert RouteDelta(sender=1).is_empty

    def test_rejects_foreign_rows(self):
        advert = self._advert(sender=1)
        with pytest.raises(ProtocolError):
            RouteDelta(sender=9, updates=(advert,))

    def test_rejects_update_withdraw_overlap(self):
        advert = self._advert(destination=2, path=(1, 2))
        with pytest.raises(ProtocolError):
            RouteDelta(sender=1, updates=(advert,), withdrawals=(2,))

    def test_rejects_duplicate_withdrawals(self):
        with pytest.raises(ProtocolError):
            RouteDelta(sender=1, withdrawals=(2, 2))


class TestInterning:
    def test_equal_content_interns_to_same_object(self):
        a = RouteAdvertisement(1, 3, (1, 2, 3), 4.0, {1: 1.0, 2: 2.0, 3: 0.0})
        b = RouteAdvertisement(1, 3, (1, 2, 3), 4.0, {3: 0.0, 2: 2.0, 1: 1.0})
        assert a == b
        assert intern_advertisement(a) is intern_advertisement(b)

    def test_different_content_stays_distinct(self):
        a = intern_advertisement(RouteAdvertisement(1, 2, (1, 2), 4.0, {1: 1.0}))
        b = intern_advertisement(RouteAdvertisement(1, 2, (1, 2), 5.0, {1: 1.0}))
        assert a is not b
        assert a != b

    def test_advertisements_are_hashable_and_cached(self):
        advert = RouteAdvertisement(1, 2, (1, 2), 4.0, {1: 1.0}, {2: 3.0})
        assert hash(advert) == hash(advert)
        twin = RouteAdvertisement(1, 2, (1, 2), 4.0, {1: 1.0}, {2: 3.0})
        assert hash(advert) == hash(twin)


class TestNodeDeltaMachinery:
    def test_receive_delta_matches_receive_table(self):
        adverts = (
            RouteAdvertisement(1, 1, (1,), 0.0, {1: 1.0}),
            RouteAdvertisement(1, 3, (1, 3), 0.0, {1: 1.0, 3: 2.0}),
        )
        via_table = BGPNode(2, 1.0)
        via_table.receive_table(1, adverts)
        via_delta = BGPNode(2, 1.0)
        dirty = via_delta.receive_delta(1, RouteDelta(sender=1, updates=adverts))
        assert dirty == {1, 3}
        for destination in (1, 3):
            assert via_table.rib_in.advert(1, destination) == via_delta.rib_in.advert(
                1, destination
            )
        # withdrawal drops the row; re-withdrawing is a clean no-op
        assert via_delta.receive_delta(1, RouteDelta(1, withdrawals=(3,))) == {3}
        assert via_delta.rib_in.advert(1, 3) is None
        assert via_delta.receive_delta(1, RouteDelta(1, withdrawals=(3,))) == set()

    def test_publication_delta_tracks_changes_only(self):
        node = BGPNode(1, 1.0)
        first = node.publication_delta()
        assert [a.destination for a in first.updates] == [1]
        assert first.material and not first.withdrawals
        # no changes -> empty delta
        assert node.publication_delta().is_empty
        # learning a route publishes exactly that row
        node.receive_delta(
            2, RouteDelta(2, updates=(RouteAdvertisement(2, 2, (2,), 0.0, {2: 5.0}),))
        )
        node.decide({2})
        delta = node.publication_delta()
        assert [a.destination for a in delta.updates] == [2]
        assert node.published_rows == 2

    def test_dirty_decide_equals_full_decide(self):
        table = (
            RouteAdvertisement(2, 2, (2,), 0.0, {2: 5.0}),
            RouteAdvertisement(2, 4, (2, 4), 0.0, {2: 5.0, 4: 1.0}),
        )
        full = BGPNode(1, 1.0)
        full.receive_table(2, table)
        full.decide()
        dirty = BGPNode(1, 1.0)
        changed = dirty.receive_table(2, table)
        dirty.decide(changed)
        assert full.routes == dirty.routes
        assert full.advertisements() == dirty.advertisements()


# ----------------------------------------------------------------------
# Differential: delta transport is bit-identical to full tables
# ----------------------------------------------------------------------
FACTORIES = {
    "plain": None,
    "price-monotone": _price_factory(UpdateMode.MONOTONE),
    "price-recompute": _price_factory(UpdateMode.RECOMPUTE),
}


class TestSynchronousDifferential:
    @pytest.mark.parametrize("workload", sorted(FACTORIES))
    def test_fig1_identical(self, workload):
        full, delta, _ = _run_pair(fig1_graph(), FACTORIES[workload])
        assert full == delta

    @pytest.mark.parametrize("workload", sorted(FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs_identical(self, workload, seed):
        graph = isp_like_graph(24, seed=seed, cost_sampler=integer_costs(1, 6))
        full, delta, _ = _run_pair(graph, FACTORIES[workload])
        assert full == delta

    @pytest.mark.parametrize("workload", sorted(FACTORIES))
    def test_dynamics_identical(self, workload):
        graph = isp_like_graph(16, seed=2, cost_sampler=integer_costs(1, 6))
        nodes = sorted(graph.nodes)
        engine_probe = SynchronousEngine(graph)
        u = nodes[0]
        v = sorted(engine_probe.adjacency[u])[0]
        events = [
            ("change_cost", (nodes[1], 9.0)),
            ("fail_link", (u, v)),
            ("change_cost", (nodes[2], 0.5)),
            ("restore_link", (u, v)),
            ("full_restart", ()),
        ]
        full, delta, _ = _run_pair(graph, FACTORIES[workload], events=events)
        assert full == delta

    def test_delta_transport_saves_rows(self):
        graph = isp_like_graph(24, seed=0, cost_sampler=integer_costs(1, 6))
        for incremental in (False, True):
            engine = SynchronousEngine(graph, incremental=incremental)
            engine.initialize()
            report = engine.run()
            if incremental:
                assert report.total_rows_suppressed > 0
                delta_rows = report.total_rows_sent
            else:
                assert report.total_rows_suppressed == 0
                full_rows = report.total_rows_sent
        assert full_rows > 2 * delta_rows

    def test_acceptance_200_node_rows_drop_5x(self):
        """ISSUE 4 acceptance: >= 5x fewer advertisement rows on a
        200-node generated graph, with bit-identical reports/state."""
        graph = grid_graph(10, 20, seed=0, cost_sampler=integer_costs(1, 6))
        assert graph.num_nodes == 200
        full, delta, _ = _run_pair(graph)
        assert full == delta
        rows = {}
        for incremental in (False, True):
            engine = SynchronousEngine(graph, incremental=incremental)
            engine.initialize()
            report = engine.run()
            rows[incremental] = report.total_rows_sent
        assert rows[False] >= 5 * rows[True]


class TestAsynchronousDifferential:
    @pytest.mark.parametrize("workload", sorted(FACTORIES))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_async_identical(self, workload, seed):
        graph = isp_like_graph(12, seed=seed, cost_sampler=integer_costs(1, 6))
        outcomes = {}
        for incremental in (False, True):
            kwargs = {"incremental": incremental, "seed": seed}
            factory = FACTORIES[workload]
            if factory is not None:
                kwargs["node_factory"] = factory
            engine = AsynchronousEngine(graph, **kwargs)
            engine.run()
            outcomes[incremental] = (engine.deliveries, _engine_state(engine))
        # identical delivery schedule (same RNG draws) and final state
        assert outcomes[False] == outcomes[True]

    def test_non_fifo_falls_back_to_full_tables(self):
        graph = fig1_graph()
        engine = AsynchronousEngine(graph, fifo_links=False, incremental=True)
        assert engine.incremental is False
        engine.run()
        assert engine.rows_suppressed == 0


# ----------------------------------------------------------------------
# Hypothesis: random graphs and random event sequences
# ----------------------------------------------------------------------
@st.composite
def protocol_graphs(draw, min_nodes=4, max_nodes=9):
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(st.lists(st.integers(0, 6).map(float), min_size=n, max_size=n))
    chord_pool = [
        (i, j)
        for i in range(n)
        for j in range(i + 2, n)
        if not (i == 0 and j == n - 1)
    ]
    chords = (
        draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6))
        if chord_pool
        else []
    )
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


@settings(max_examples=15, deadline=None)
@given(protocol_graphs(), st.sampled_from(sorted(FACTORIES)))
def test_full_and_delta_transports_agree(graph, workload):
    full, delta, _ = _run_pair(graph, FACTORIES[workload])
    assert full == delta


@settings(max_examples=12, deadline=None)
@given(
    protocol_graphs(min_nodes=5, max_nodes=8),
    st.sampled_from(sorted(FACTORIES)),
    st.data(),
)
def test_transports_agree_under_random_events(graph, workload, data):
    """Random sequences of cost changes and link failures/restores
    leave both transports in identical states with identical reports.

    Link failures only target ring chords so the ring keeps the graph
    connected (the engines assume live topologies stay usable)."""
    n = graph.num_nodes
    ring = {(i, (i + 1) % n) for i in range(n)}
    ring |= {(b, a) for a, b in ring}
    chords = sorted(
        (u, v) for u, v in graph.edges if (u, v) not in ring
    )
    events = []
    failed = []
    for _ in range(data.draw(st.integers(1, 4), label="num_events")):
        choices = ["change_cost"]
        if chords:
            choices.append("fail_link")
        if failed:
            choices.append("restore_link")
        kind = data.draw(st.sampled_from(choices), label="event")
        if kind == "change_cost":
            node = data.draw(st.integers(0, n - 1), label="node")
            cost = float(data.draw(st.integers(0, 9), label="cost"))
            events.append(("change_cost", (node, cost)))
        elif kind == "fail_link":
            index = data.draw(st.integers(0, len(chords) - 1), label="edge")
            edge = chords.pop(index)
            failed.append(edge)
            events.append(("fail_link", edge))
        else:
            index = data.draw(st.integers(0, len(failed) - 1), label="restore")
            edge = failed.pop(index)
            chords.append(edge)
            events.append(("restore_link", edge))
    full, delta, _ = _run_pair(graph, FACTORIES[workload], events=events)
    assert full == delta
