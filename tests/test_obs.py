"""Tests for repro.obs: spans, counters, sinks, zero overhead, and the
Fig. 1 trace-replay acceptance criterion (a recorded run reproduces the
ConvergenceReport / StateReport numbers bit-for-bit from the trace)."""

from __future__ import annotations

import io
import json

import pytest

import repro.obs as obs
from repro.bgp.engine import SynchronousEngine
from repro.core.protocol import distributed_mechanism
from repro.exceptions import TraceError
from repro.obs import names
from repro.obs.trace import (
    read_events,
    summarize_trace,
    summary_tables,
    validate_trace,
)


@pytest.fixture(autouse=True)
def _pristine_obs_state():
    """Each test starts and ends globally disabled with a fresh default."""
    obs.disable()
    obs.reset_default()
    yield
    obs.disable()
    obs.reset_default()


class TestSpans:
    def test_span_depth_nests(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        with observer.span("outer"):
            with observer.span("inner"):
                pass
        # spans are emitted at close: children before parents
        assert [e["name"] for e in sink.of_kind("span")] == ["inner", "outer"]
        assert sink.named("inner")[0]["depth"] == 2
        assert sink.named("outer")[0]["depth"] == 1

    def test_depth_recovers_after_exit(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        with observer.span("first"):
            pass
        with observer.span("second"):
            pass
        assert [e["depth"] for e in sink.of_kind("span")] == [1, 1]

    def test_span_duration_nonnegative_and_monotonic_t(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        with observer.span("timed"):
            pass
        event = sink.named("timed")[0]
        assert event["dur"] >= 0.0
        assert event["t"] >= 0.0

    def test_span_labels_recorded(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        with observer.span("stage", stage=3, engine="reference"):
            pass
        assert sink.named("stage")[0]["labels"] == {"stage": 3, "engine": "reference"}

    def test_span_stats_accumulate(self):
        observer = obs.Obs()
        for _ in range(3):
            with observer.span("repeated"):
                pass
        count, total = observer.span_stats("repeated")
        assert count == 3
        assert total >= 0.0

    def test_module_level_span_is_null_while_disabled(self):
        assert obs.span("anything") is obs.NULL_SPAN


class TestCountersAndGauges:
    def test_counter_value_and_running_total(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        observer.count("m", 1)
        observer.count("m", 2)
        events = sink.named("m")
        assert [(e["value"], e["total"]) for e in events] == [(1, 1), (2, 3)]
        assert observer.counter_total("m") == 3

    def test_labeled_series_are_independent(self):
        observer = obs.Obs()
        observer.count("msgs", 5, type="table")
        observer.count("msgs", 2, type="async")
        assert observer.counter_total("msgs", type="table") == 5
        assert observer.counter_total("msgs", type="async") == 2
        assert observer.counter_total("msgs") == 7

    def test_unknown_counter_is_zero(self):
        assert obs.Obs().counter_total("never") == 0.0

    def test_gauge_last_write_wins(self):
        observer = obs.Obs()
        observer.gauge("g", 1.0, node=0)
        observer.gauge("g", 4.0, node=0)
        observer.gauge("g", 2.0, node=1)
        assert observer.gauge_value("g", node=0) == 4.0
        assert observer.gauge_series("g") == {
            (("node", 0),): 4.0,
            (("node", 1),): 2.0,
        }

    def test_unset_gauge_is_none(self):
        assert obs.Obs().gauge_value("never") is None

    def test_reset_forgets_aggregates_keeps_sinks(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        observer.count("m")
        observer.reset()
        assert observer.counter_total("m") == 0.0
        assert observer.events_emitted() == 0
        assert observer.sinks == (sink,)


class TestZeroOverhead:
    """The contract: while disabled, hot paths emit *nothing*."""

    def test_disabled_protocol_run_emits_no_events(self, fig1):
        sink = obs.default().add_sink(obs.MemorySink())
        engine = SynchronousEngine(fig1)
        engine.run()
        assert len(sink) == 0
        assert obs.default().events_emitted() == 0

    def test_disabled_full_mechanism_emits_no_events(self, fig1):
        sink = obs.default().add_sink(obs.MemorySink())
        distributed_mechanism(fig1)
        assert len(sink) == 0

    def test_module_level_helpers_are_noops_while_disabled(self):
        obs.count("m", 3)
        obs.gauge("g", 1.0)
        with obs.span("s"):
            pass
        assert obs.default().events_emitted() == 0

    def test_active_resolution(self):
        explicit = obs.Obs()
        assert obs.active() is None
        assert obs.active(explicit) is explicit
        obs.enable()
        assert obs.active() is obs.default()
        assert obs.active(explicit) is explicit

    def test_explicit_obs_wins_even_while_disabled(self, fig1):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        SynchronousEngine(fig1, obs=observer).run()
        assert len(sink) > 0

    def test_observed_context_restores_previous_state(self):
        assert not obs.enabled()
        with obs.observed() as observer:
            assert obs.enabled()
            assert observer is obs.default()
        assert not obs.enabled()


class TestSinks:
    def test_jsonl_meta_first_then_events(self):
        buffer = io.StringIO()
        sink = obs.JSONLSink(buffer)
        observer = obs.Obs(sinks=[sink])
        observer.count("m", 1)
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines[0] == {
            "event": "meta",
            "version": obs.TRACE_VERSION,
            "clock": "monotonic",
        }
        assert lines[1]["event"] == "counter"
        assert lines[1]["name"] == "m"

    def test_jsonl_does_not_close_borrowed_files(self):
        buffer = io.StringIO()
        with obs.JSONLSink(buffer):
            pass
        assert not buffer.closed

    def test_memory_sink_helpers(self):
        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        observer.count("a")
        observer.gauge("b", 2.0)
        assert len(sink) == 2
        assert [e["name"] for e in sink.of_kind("gauge")] == ["b"]
        assert len(sink.named("a")) == 1
        sink.clear()
        assert len(sink) == 0

    def test_summary_sink_aggregates_and_renders(self):
        sink = obs.SummarySink()
        observer = obs.Obs(sinks=[sink])
        observer.count("msgs", 2, type="table")
        observer.count("msgs", 3, type="table")
        observer.gauge("size", 7.0, node=1)
        with observer.span("work"):
            pass
        assert sink.counter_total("msgs", type="table") == 5
        rendered = sink.render("run")
        assert "msgs{type=table} = 5" in rendered
        assert "size{node=1} = 7" in rendered
        assert "work: n=1" in rendered

    def test_summary_sink_empty_render(self):
        assert "(no events)" in obs.SummarySink().render()


class TestFig1TraceReplay:
    """Acceptance criterion: a recorded Fig. 1 run's trace reproduces
    the engine's own ConvergenceReport / StateReport bit-for-bit."""

    def test_sync_engine_trace_matches_reports(self, fig1, tmp_path):
        path = tmp_path / "fig1.jsonl"
        observer = obs.Obs()
        sink = observer.add_sink(obs.JSONLSink(str(path)))
        engine = SynchronousEngine(fig1, obs=observer)
        report = engine.run()
        state = engine.state_report()
        sink.close()

        summary = summarize_trace(str(path))
        assert summary.stages == report.stages
        assert summary.total_messages == report.total_messages
        assert summary.entries_sent == report.total_entries_sent
        assert summary.loc_rib_entries == state.loc_rib_entries
        assert summary.adj_rib_in_entries == state.adj_rib_in_entries
        assert summary.price_entries == state.price_entries
        assert summary.max_loc_rib == state.max_loc_rib

    def test_fig1_counts_are_the_hand_countable_values(self, fig1, tmp_path):
        """Pin the actual Figure 1 numbers: plain path-vector BGP on the
        six-AS graph converges in 3 material stages and 50 messages
        (n*(n-1) routes -> 30 Loc-RIB entries is an upper bound per
        node pair; the selected engine reports 28 for its densest
        node)."""
        path = tmp_path / "fig1.jsonl"
        observer = obs.Obs()
        sink = observer.add_sink(obs.JSONLSink(str(path)))
        SynchronousEngine(fig1, obs=observer).run()
        sink.close()
        summary = summarize_trace(str(path))
        assert summary.stages == 3
        assert summary.total_messages == 50
        assert summary.messages_by_type == {"table": 50}

    def test_full_mechanism_trace_matches_result(self, fig1, tmp_path):
        path = tmp_path / "mechanism.jsonl"
        observer = obs.Obs()
        sink = observer.add_sink(obs.JSONLSink(str(path)))
        result = distributed_mechanism(fig1, obs=observer)
        sink.close()
        summary = summarize_trace(str(path))
        assert summary.stages == result.report.stages
        assert summary.total_messages == result.report.total_messages

    def test_summary_tables_render_the_measures(self, fig1, tmp_path):
        path = tmp_path / "fig1.jsonl"
        observer = obs.Obs()
        sink = observer.add_sink(obs.JSONLSink(str(path)))
        SynchronousEngine(fig1, obs=observer).run()
        sink.close()
        tables = summary_tables(summarize_trace(str(path)))
        rendered = tables[0].render()
        assert "stages to convergence" in rendered
        assert "total messages" in rendered


class TestTraceValidation:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def _meta(self):
        return json.dumps(
            {"event": "meta", "version": obs.TRACE_VERSION, "clock": "monotonic"}
        )

    def test_valid_trace_roundtrip(self, tmp_path):
        counter = json.dumps(
            {"event": "counter", "name": "m", "value": 1, "total": 1, "t": 0.0}
        )
        path = self._write(tmp_path, [self._meta(), counter])
        assert validate_trace(path) == 1
        events = read_events(path)
        assert events[1]["name"] == "m"

    def test_empty_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="empty trace"):
            read_events(self._write(tmp_path, [""]))

    def test_missing_meta_rejected(self, tmp_path):
        counter = json.dumps(
            {"event": "counter", "name": "m", "value": 1, "total": 1, "t": 0.0}
        )
        with pytest.raises(TraceError, match="meta"):
            read_events(self._write(tmp_path, [counter]))

    def test_duplicate_meta_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="duplicate meta"):
            read_events(self._write(tmp_path, [self._meta(), self._meta()]))

    def test_wrong_version_rejected(self, tmp_path):
        meta = json.dumps({"event": "meta", "version": 999, "clock": "monotonic"})
        with pytest.raises(TraceError, match="version"):
            read_events(self._write(tmp_path, [meta]))

    def test_unknown_kind_rejected(self, tmp_path):
        bad = json.dumps({"event": "mystery", "name": "m"})
        with pytest.raises(TraceError, match="unknown event kind"):
            read_events(self._write(tmp_path, [self._meta(), bad]))

    def test_missing_required_field_rejected(self, tmp_path):
        bad = json.dumps({"event": "counter", "name": "m", "value": 1})
        with pytest.raises(TraceError, match="missing required field"):
            read_events(self._write(tmp_path, [self._meta(), bad]))

    def test_invalid_json_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="invalid JSON"):
            read_events(self._write(tmp_path, [self._meta(), "{not json"]))


class TestEngineMetrics:
    def test_parallel_engine_reports_configuration(self, fig1):
        from repro.routing.engines import get_engine

        sink = obs.MemorySink()
        observer = obs.Obs(sinks=[sink])
        engine = get_engine("parallel", workers=2)
        engine.price_table(fig1, obs=observer)
        assert observer.gauge_value(names.ENGINE_WORKERS, engine="parallel") == 2
        shards = observer.gauge_value(names.ENGINE_SHARDS, engine="parallel")
        assert shards is not None and shards >= 1
        assert observer.counter_total(names.PRICE_ROWS) == len(
            engine.price_table(fig1).rows
        )

    def test_experiment_runner_span(self):
        from repro.experiments.runner import run_experiment

        with obs.observed() as observer:
            run_experiment("E1")
        count, _total = observer.span_stats(names.SPAN_EXPERIMENT)
        assert count == 1
        assert observer.counter_total(names.STAGES) > 0
