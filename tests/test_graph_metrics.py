"""Tests for repro.graphs.metrics (the d and d' of Theorem 2)."""

import pytest

from repro.exceptions import DisconnectedGraphError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import clique_graph, fig1_graph, ring_graph
from repro.graphs.metrics import (
    avoiding_hop_diameter,
    hop_diameter,
    lcp_hop_diameter,
    topology_summary,
)


class TestHopDiameter:
    def test_triangle(self, triangle):
        assert hop_diameter(triangle) == 1

    def test_ring(self):
        assert hop_diameter(ring_graph(8)) == 4

    def test_clique(self):
        assert hop_diameter(clique_graph(5)) == 1

    def test_disconnected_raises(self):
        graph = ASGraph(nodes=[(0, 1.0), (1, 1.0), (2, 1.0)], edges=[(0, 1)])
        with pytest.raises(DisconnectedGraphError):
            hop_diameter(graph)


class TestLcpHopDiameter:
    def test_fig1(self, fig1):
        # the longest selected LCP in Fig. 1 is 3 hops (e.g. X-B-D-Z)
        assert lcp_hop_diameter(fig1) == 3

    def test_uniform_ring(self):
        # with equal costs the LCP diameter equals the hop diameter
        graph = ring_graph(8, cost_sampler=lambda rng: 1.0)
        assert lcp_hop_diameter(graph) == 4

    def test_cost_can_stretch_d(self):
        # a cheap long way around can make LCPs longer than shortest-hop
        graph = ASGraph(
            nodes=[(0, 0.0), (1, 100.0), (2, 0.0), (3, 0.0), (4, 0.0)],
            edges=[(0, 1), (1, 2), (0, 4), (4, 3), (3, 2)],
        )
        assert hop_diameter(graph) == 2
        assert lcp_hop_diameter(graph) == 3  # 0-4-3-2 avoids the pricey 1


class TestAvoidingHopDiameter:
    def test_fig1(self, fig1):
        # the longest lowest-cost k-avoiding path in Fig. 1 is
        # Y-B-X-A-Z (D-avoiding), 4 hops
        assert avoiding_hop_diameter(fig1) == 4

    def test_ring_worst_case(self):
        # the closest pair with a transit node sits 2 hops apart;
        # avoiding that transit node forces the n - 2 hop way around
        graph = ring_graph(7, cost_sampler=lambda rng: 1.0)
        assert avoiding_hop_diameter(graph) == 5

    def test_clique_small(self):
        # in a clique the detour is at most 2 hops
        assert avoiding_hop_diameter(clique_graph(5, cost_sampler=lambda rng: 1.0)) <= 2


class TestTopologySummary:
    def test_fields(self, fig1):
        summary = topology_summary(fig1, name="fig1")
        assert summary["name"] == "fig1"
        assert summary["n"] == 6
        assert summary["m"] == 7
        assert summary["d"] == 3
        assert summary["d_prime"] == 4
        assert summary["stage_bound"] == 4

    def test_bound_is_max(self, small_random):
        summary = topology_summary(small_random)
        assert summary["stage_bound"] == max(summary["d"], summary["d_prime"])
