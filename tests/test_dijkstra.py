"""Tests for repro.routing.dijkstra."""

import itertools

import pytest

from repro.exceptions import UnreachableError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import fig1_graph, integer_costs, random_biconnected_graph
from repro.routing.dijkstra import lowest_cost, route_tree
from repro.routing.tiebreak import route_key


def brute_force_best(graph, source, destination):
    """Minimum-key path by exhaustive enumeration (small graphs only)."""
    best = None
    nodes = [n for n in graph.nodes if n not in (source, destination)]
    for r in range(len(nodes) + 1):
        for middle in itertools.permutations(nodes, r):
            path = (source,) + middle + (destination,)
            if all(graph.has_edge(u, v) for u, v in zip(path, path[1:])):
                cost = sum(graph.cost(node) for node in path[1:-1])
                key = route_key(cost, path)
                if best is None or key < best:
                    best = key
    return best


class TestRouteTree:
    def test_fig1_tree_matches_paper(self, fig1, labels):
        tree = route_tree(fig1, labels["Z"])
        assert tree.parent(labels["X"]) == labels["B"]
        assert tree.parent(labels["B"]) == labels["D"]
        assert tree.parent(labels["Y"]) == labels["D"]
        assert tree.parent(labels["D"]) == labels["Z"]
        assert tree.parent(labels["A"]) == labels["Z"]

    def test_fig1_costs(self, fig1, labels):
        tree = route_tree(fig1, labels["Z"])
        assert tree.cost(labels["X"]) == 3.0
        assert tree.cost(labels["Y"]) == 1.0
        assert tree.cost(labels["A"]) == 0.0  # direct link

    def test_destination_properties(self, triangle):
        tree = route_tree(triangle, 0)
        assert tree.path(0) == (0,)
        assert tree.cost(0) == 0.0
        with pytest.raises(UnreachableError):
            tree.parent(0)

    def test_children(self, fig1, labels):
        tree = route_tree(fig1, labels["Z"])
        assert tree.children(labels["D"]) == (labels["B"], labels["Y"])
        assert tree.children(labels["Z"]) == (labels["A"], labels["D"])

    def test_on_path_indicator(self, fig1, labels):
        tree = route_tree(fig1, labels["Z"])
        assert tree.on_path(labels["D"], labels["X"])
        assert tree.on_path(labels["B"], labels["X"])
        assert not tree.on_path(labels["A"], labels["X"])
        # endpoints are never transit
        assert not tree.on_path(labels["X"], labels["X"])

    def test_unreachable_source(self):
        graph = ASGraph(nodes=[(0, 1.0), (1, 1.0), (2, 1.0)], edges=[(0, 1)])
        tree = route_tree(graph, 0)
        assert not tree.has_route(2)
        with pytest.raises(UnreachableError):
            tree.path(2)

    def test_unknown_destination(self, triangle):
        with pytest.raises(UnreachableError):
            route_tree(triangle, 99)

    def test_hops(self, fig1, labels):
        tree = route_tree(fig1, labels["Z"])
        assert tree.hops(labels["X"]) == 3
        assert tree.hops(labels["A"]) == 1

    def test_zero_cost_nodes_handled(self):
        graph = ASGraph(
            nodes=[(0, 0.0), (1, 0.0), (2, 0.0), (3, 0.0)],
            edges=[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        tree = route_tree(graph, 3)
        # both routes cost 0; fewer hops wins
        assert tree.path(0) == (0, 3)
        assert tree.path(1) == (1, 0, 3) or tree.path(1) == (1, 2, 3)
        # lexicographic tie-break between the two 2-hop options: 0 < 2
        assert tree.path(1) == (1, 0, 3)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exhaustive_search(self, seed):
        graph = random_biconnected_graph(
            7, 0.3, seed=seed, cost_sampler=integer_costs(0, 4)
        )
        for destination in graph.nodes:
            tree = route_tree(graph, destination)
            for source in graph.nodes:
                if source == destination:
                    continue
                expected = brute_force_best(graph, source, destination)
                actual = route_key(tree.cost(source), tree.path(source))
                assert actual == expected, (source, destination)


class TestSuffixConsistency:
    @pytest.mark.parametrize("seed", range(5))
    def test_selected_paths_form_tree(self, seed):
        graph = random_biconnected_graph(
            10, 0.3, seed=seed, cost_sampler=integer_costs(0, 3)
        )
        for destination in graph.nodes:
            tree = route_tree(graph, destination)
            for source in tree.sources():
                path = tree.path(source)
                # every suffix is the selected path of its head
                for index in range(1, len(path) - 1):
                    assert tree.path(path[index]) == path[index:]


class TestLowestCost:
    def test_single_pair_helper(self, fig1, labels):
        cost, path = lowest_cost(fig1, labels["X"], labels["Z"])
        assert cost == 3.0
        assert path == (labels["X"], labels["B"], labels["D"], labels["Z"])
