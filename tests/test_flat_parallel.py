"""Property tests for the sharded flat sweep's determinism guarantees.

The ``flat-parallel`` engine's contract mirrors the ``parallel``
engine's: sharding is *invisible*.  For any instance, the priced
arrays -- and the dict rows derived from them -- are bit-identical to
the single-process ``flat`` sweep's regardless of

* **worker count** (1 runs inline with no pool and no shared memory;
  2 and 4 fork real worker processes over shared-memory segments), and
* **transit-shard order** (any partition of the demanded transit
  nodes, in any order, merges to the same result),

and on defective instances (cut vertices, inconsistent route costs)
the raised error class, message, and min-sequence witness match the
reference engine's exactly.  Hypothesis draws random biconnected
graphs (cycle plus chords, quantized costs so ties are frequent --
ties are where nondeterminism would hide), cut-vertex graphs for the
error path, and random shard permutations.

The shared-memory plumbing itself is pinned too: pooled sweeps must
not leak ``/dev/shm`` segments, and the ``atexit`` backstop must
unlink whatever an interrupted run leaves behind.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.exceptions import EngineError, NotBiconnectedError, MechanismError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import fig1_graph
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import FlatParallelEngine, get_engine
from repro.routing import flatsweep
from repro.routing.flatsweep import (
    FlatSweepStats,
    demand_from_routes,
    flat_price_arrays,
    flat_sweep_sharded,
    shard_transit_nodes,
)


@st.composite
def biconnected_graphs(draw, min_nodes=5, max_nodes=11):
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(
        st.lists(
            st.integers(0, 10).map(lambda v: v / 2.0),
            min_size=n, max_size=n,
        )
    )
    chord_pool = [(i, j) for i in range(n) for j in range(i + 2, n)
                  if not (i == 0 and j == n - 1)]
    chords = draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6)) if chord_pool else []
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


@st.composite
def cut_vertex_graphs(draw, min_nodes=5, max_nodes=9):
    """A biconnected cycle-plus-chords block with a pendant triangle
    glued at one node -- that node is a cut vertex, so every cross pair
    transits it and its avoiding solve finds no path."""
    block = draw(biconnected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    joint = draw(st.sampled_from(list(block.nodes)))
    n = block.num_nodes
    extra_costs = draw(
        st.lists(st.integers(0, 10).map(lambda v: v / 2.0), min_size=2, max_size=2)
    )
    nodes = [(v, block.cost(v)) for v in block.nodes]
    nodes += [(n, extra_costs[0]), (n + 1, extra_costs[1])]
    edges = list(block.edges) + [(joint, n), (joint, n + 1), (n, n + 1)]
    return ASGraph(nodes=nodes, edges=edges)


@settings(max_examples=8, deadline=None)
@given(biconnected_graphs())
def test_worker_count_invariance(graph):
    reference = compute_price_table(graph)
    routes = all_pairs_lcp(graph)
    baseline = flat_price_arrays(graph, routes)
    for workers in (1, 2, 4):
        arrays = flat_price_arrays(graph, routes, workers=workers)
        assert np.array_equal(baseline.prices, arrays.prices), workers
        engine = FlatParallelEngine(workers=workers)
        assert engine.price_table(graph, routes).rows == reference.rows, workers


@settings(max_examples=8, deadline=None)
@given(biconnected_graphs(), st.randoms(use_true_random=False))
def test_shard_order_invariance(graph, rng):
    """Any partition of the demanded transit set, in any order, same
    priced arrays bit for bit."""
    routes = all_pairs_lcp(graph)
    baseline = flat_price_arrays(graph, routes)

    transit = list(demand_from_routes(graph, routes).transit_nodes())
    rng.shuffle(transit)
    shard_count = rng.randint(1, max(1, len(transit)))
    shards = shard_transit_nodes(transit, shard_count)
    rng.shuffle(shards)

    arrays = flat_sweep_sharded(graph, shards, workers=2, routes=routes)
    assert np.array_equal(baseline.prices, arrays.prices)
    assert np.array_equal(baseline.entry_k, arrays.entry_k)
    assert arrays.to_rows() == baseline.to_rows()


@settings(max_examples=8, deadline=None)
@given(cut_vertex_graphs())
def test_error_ordering_parity_on_cut_vertex_graphs(graph):
    """The raised NotBiconnectedError -- class, message, witness -- is
    the reference engine's, at every worker count."""
    with pytest.raises(NotBiconnectedError) as reference_error:
        get_engine("reference").price_table(graph)
    for workers in (1, 2, 4):
        with pytest.raises(NotBiconnectedError) as flat_error:
            FlatParallelEngine(workers=workers).price_table(graph)
        assert str(flat_error.value) == str(reference_error.value), workers


@settings(max_examples=6, deadline=None)
@given(cut_vertex_graphs(), st.randoms(use_true_random=False))
def test_error_ordering_survives_shard_permutation(graph, rng):
    with pytest.raises(NotBiconnectedError) as reference_error:
        get_engine("reference").price_table(graph)
    routes = all_pairs_lcp(graph)  # cut vertices keep the graph connected
    transit = list(demand_from_routes(graph, routes).transit_nodes())
    rng.shuffle(transit)
    shards = shard_transit_nodes(transit, rng.randint(1, max(1, len(transit))))
    rng.shuffle(shards)
    with pytest.raises(NotBiconnectedError) as flat_error:
        flat_sweep_sharded(graph, shards, workers=2, routes=routes)
    assert str(flat_error.value) == str(reference_error.value)


def test_negative_price_witness_matches_reference_pooled():
    # Same inconsistent-routes construction as the flat suite: routes
    # priced on a 10x-scaled copy select identical paths but report 10x
    # LCP costs, driving every price negative.  The pooled sweep must
    # surface the reference's exact min-sequence witness even though
    # the violating group may run in any worker.
    graph = fig1_graph()
    scaled = ASGraph(
        nodes=[(n, graph.cost(n) * 10.0) for n in graph.nodes],
        edges=list(graph.edges),
    )
    expensive_routes = all_pairs_lcp(scaled)
    with pytest.raises(MechanismError) as reference_error:
        compute_price_table(graph, routes=expensive_routes)
    for workers in (1, 2, 4):
        with pytest.raises(MechanismError) as flat_error:
            flat_price_arrays(graph, expensive_routes, workers=workers)
        assert str(flat_error.value) == str(reference_error.value), workers


class TestSharding:
    def test_shard_transit_nodes_partitions(self):
        shards = shard_transit_nodes(list(range(10)), 3)
        assert sorted(k for shard in shards for k in shard) == list(range(10))
        assert len(shards) == 3

    def test_shard_transit_nodes_caps_at_population(self):
        assert shard_transit_nodes([1, 2], 8) == [(1,), (2,)]

    def test_shard_transit_nodes_rejects_bad_count(self):
        with pytest.raises(EngineError, match="shard count"):
            shard_transit_nodes([1, 2, 3], 0)

    def test_sharded_rejects_non_partition(self, fig1):
        routes = all_pairs_lcp(fig1)
        transit = list(demand_from_routes(fig1, routes).transit_nodes())
        with pytest.raises(EngineError, match="partition the demanded transit set"):
            flat_sweep_sharded(fig1, [tuple(transit[:-1])], routes=routes)
        with pytest.raises(EngineError, match="partition the demanded transit set"):
            flat_sweep_sharded(
                fig1, [tuple(transit), (transit[0],)], routes=routes
            )

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(EngineError, match="worker count"):
            FlatParallelEngine(workers=0)
        with pytest.raises(EngineError, match="shards per worker"):
            FlatParallelEngine(shards_per_worker=0)

    def test_default_worker_count_is_cpu_count(self):
        import os

        assert FlatParallelEngine().workers == (os.cpu_count() or 1)
        assert FlatParallelEngine(workers=3).workers == 3

    def test_stats_record_layout(self, fig1):
        routes = all_pairs_lcp(fig1)
        stats = FlatSweepStats()
        flat_price_arrays(fig1, routes, workers=2, stats=stats)
        assert stats.workers == 2
        assert stats.shards >= 2
        inline = FlatSweepStats()
        flat_price_arrays(fig1, routes, stats=inline)
        assert inline.workers == 1
        assert inline.shards == 1
        # identical work accounting either way
        assert (inline.solves, inline.rows, inline.masked, inline.entries) == (
            stats.solves, stats.rows, stats.masked, stats.entries
        )


class TestSharedMemoryHygiene:
    def _leftovers(self):
        return glob.glob("/dev/shm/repro-flat-*")

    def test_pooled_sweep_leaves_no_segments(self, fig1):
        routes = all_pairs_lcp(fig1)
        flat_price_arrays(fig1, routes, workers=2)
        assert self._leftovers() == []
        assert flatsweep._LIVE_ARENAS == []

    def test_pooled_error_path_leaves_no_segments(self):
        graph = fig1_graph()
        scaled = ASGraph(
            nodes=[(n, graph.cost(n) * 10.0) for n in graph.nodes],
            edges=list(graph.edges),
        )
        with pytest.raises(MechanismError):
            flat_price_arrays(graph, all_pairs_lcp(scaled), workers=2)
        assert self._leftovers() == []
        assert flatsweep._LIVE_ARENAS == []

    def test_atexit_backstop_unlinks_live_arenas(self):
        # Simulate an interrupted run: an arena created but never
        # destroyed.  The atexit hook must unlink its segments.
        arena = flatsweep._SweepArena()
        spec, _view = arena.share(np.arange(8, dtype=np.float64))
        name = spec[0]
        assert glob.glob(f"/dev/shm/{name}") != []
        assert arena in flatsweep._LIVE_ARENAS
        flatsweep._unlink_leftover_arenas()
        assert glob.glob(f"/dev/shm/{name}") == []
        assert flatsweep._LIVE_ARENAS == []

    def test_arena_destroy_is_idempotent(self):
        arena = flatsweep._SweepArena()
        arena.share(np.zeros(4))
        arena.destroy()
        arena.destroy()
        assert self._leftovers() == []


class TestObservability:
    def test_flat_parallel_emits_layout_counters(self, fig1):
        observer = obs.Obs(sinks=[obs.MemorySink()])
        engine = FlatParallelEngine(workers=2)
        table = engine.price_table(fig1, obs=observer)
        assert len(table.rows) > 0
        name = engine.name
        assert observer.counter_total(obs.names.FLAT_WORKERS, engine=name) == 2
        assert observer.counter_total(obs.names.FLAT_SHARDS, engine=name) >= 2
        assert observer.counter_total(obs.names.FLAT_SOLVES, engine=name) > 0

    def test_flat_engine_reports_inline_layout(self, fig1):
        observer = obs.Obs(sinks=[obs.MemorySink()])
        get_engine("flat").price_table(fig1, obs=observer)
        assert observer.counter_total(obs.names.FLAT_WORKERS, engine="flat") == 1
        assert observer.counter_total(obs.names.FLAT_SHARDS, engine="flat") == 1

    def test_trace_summarize_surfaces_flat_rows(self, fig1, tmp_path):
        from repro.obs.trace import summarize_trace, summary_tables

        path = tmp_path / "flat.jsonl"
        observer = obs.Obs()
        sink = observer.add_sink(obs.JSONLSink(str(path)))
        FlatParallelEngine(workers=2).price_table(fig1, obs=observer)
        sink.close()
        summary = summarize_trace(str(path))
        assert summary.flat_seen
        assert summary.flat_workers == 2
        assert summary.flat_shards >= 2
        assert summary.flat_solves > 0
        assert summary.flat_rows >= summary.flat_solves
        assert summary.flat_masked > 0
        rendered = summary_tables(summary)[0].render()
        assert "flat sweep Dijkstra solves" in rendered
        assert "flat sweep workers" in rendered
