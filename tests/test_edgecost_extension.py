"""Tests for the per-neighbor cost extension (Section 3 parenthetical)."""

import itertools
import random

import pytest

from repro.exceptions import GraphError
from repro.extensions.edgecost import (
    EdgeCostGraph,
    compute_edgecost_price_table,
    edgecost_routes,
    edgecost_utility,
    run_edgecost_mechanism,
    verify_edgecost_result,
)
from repro.graphs.generators import fig1_graph, integer_costs, random_biconnected_graph
from repro.mechanism.vcg import compute_price_table


def randomized(graph, seed, low=0, high=6):
    rng = random.Random(seed)
    forwarding = {
        node: {v: float(rng.randint(low, high)) for v in graph.neighbors(node)}
        for node in graph.nodes
    }
    return EdgeCostGraph(edges=graph.edges, forwarding_costs=forwarding)


def brute_force_transit(graph, source, destination):
    best = None
    others = [n for n in graph.nodes if n not in (source, destination)]
    for r in range(len(others) + 1):
        for middle in itertools.permutations(others, r):
            path = (source,) + middle + (destination,)
            if all(graph.has_edge(u, v) for u, v in zip(path, path[1:])):
                cost = graph.path_cost(path)
                if best is None or cost < best:
                    best = cost
    return best


class TestModel:
    def test_requires_pricing_every_neighbor(self, triangle):
        with pytest.raises(GraphError, match="exactly its neighbors"):
            EdgeCostGraph(
                edges=triangle.edges,
                forwarding_costs={0: {1: 1.0}, 1: {0: 1.0, 2: 1.0}, 2: {0: 1.0, 1: 1.0}},
            )

    def test_path_cost_charges_next_hop(self):
        graph = EdgeCostGraph(
            edges=[(0, 1), (1, 2), (0, 2)],
            forwarding_costs={
                0: {1: 1.0, 2: 9.0},
                1: {0: 5.0, 2: 3.0},
                2: {0: 7.0, 1: 2.0},
            },
        )
        # path 0-1-2: node 1 forwards to 2 -> charges c_1(2) = 3
        assert graph.path_cost((0, 1, 2)) == 3.0
        # reversed direction charges c_1(0) = 5
        assert graph.path_cost((2, 1, 0)) == 5.0

    def test_from_uniform_costs(self, fig1):
        uniform = EdgeCostGraph.from_uniform(fig1)
        for node in fig1.nodes:
            for neighbor in fig1.neighbors(node):
                assert uniform.forwarding_cost(node, neighbor) == fig1.cost(node)

    def test_with_forwarding_costs(self, triangle):
        instance = EdgeCostGraph.from_uniform(triangle)
        changed = instance.with_forwarding_costs(0, {1: 9.0, 2: 8.0})
        assert changed.forwarding_cost(0, 1) == 9.0
        assert instance.forwarding_cost(0, 1) == 1.0

    def test_without_node(self, fig1):
        instance = EdgeCostGraph.from_uniform(fig1)
        smaller = instance.without_node(3)
        assert 3 not in smaller.nodes


class TestRouting:
    @pytest.mark.parametrize("seed", range(4))
    def test_transit_cost_is_brute_force_optimal(self, seed):
        base = random_biconnected_graph(6, 0.3, seed=seed, cost_sampler=integer_costs(1, 3))
        instance = randomized(base, seed=seed + 50)
        for destination in instance.nodes:
            state = edgecost_routes(instance, destination)
            for source in instance.nodes:
                if source == destination:
                    continue
                assert state.cost(source) == pytest.approx(
                    brute_force_transit(instance, source, destination)
                )

    def test_source_path_realizes_cost(self, small_random):
        instance = randomized(small_random, seed=3)
        for destination in instance.nodes:
            state = edgecost_routes(instance, destination)
            for source in instance.nodes:
                if source == destination:
                    continue
                path = state.path(source)
                assert path[0] == source and path[-1] == destination
                assert instance.path_cost(path) == pytest.approx(state.cost(source))

    def test_tree_paths_are_suffix_consistent(self, small_random):
        instance = randomized(small_random, seed=4)
        for destination in instance.nodes:
            state = edgecost_routes(instance, destination)
            for node, path in state.tree_paths.items():
                for index in range(1, len(path) - 1):
                    assert state.tree_paths[path[index]] == path[index:]


class TestMechanism:
    def test_uniform_embedding_equals_base(self, fig1):
        uniform = EdgeCostGraph.from_uniform(fig1)
        base = compute_price_table(fig1)
        ext = compute_edgecost_price_table(uniform)
        for pair, row in base.items():
            assert ext.path(*pair) == base.routes.path(*pair)
            for k, price in row.items():
                assert ext.price(k, *pair) == pytest.approx(price)

    def test_prices_cover_transit_and_dominate_cost(self, small_random):
        instance = randomized(small_random, seed=6, low=1)
        table = compute_edgecost_price_table(instance)
        for destination in instance.nodes:
            for source in instance.nodes:
                if source == destination:
                    continue
                path = table.path(source, destination)
                row = table.row(source, destination)
                assert set(row) == set(path[1:-1])
                for index in range(1, len(path) - 1):
                    k = path[index]
                    incurred = instance.forwarding_cost(k, path[index + 1])
                    assert row[k] >= incurred - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_vector_lies_never_profit(self, seed):
        base = random_biconnected_graph(7, 0.3, seed=seed, cost_sampler=integer_costs(1, 3))
        instance = randomized(base, seed=seed + 10, low=1, high=5)
        rng = random.Random(seed)
        traffic = {(i, j): 1.0 for i in instance.nodes for j in instance.nodes if i != j}
        for k in instance.nodes[:4]:
            truthful = edgecost_utility(instance, k, None, traffic)
            for _ in range(4):
                lie = {v: rng.uniform(0.0, 8.0) for v in instance.neighbors(k)}
                assert edgecost_utility(instance, k, lie, traffic) <= truthful + 1e-9


class TestDistributed:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_centralized(self, seed):
        base = random_biconnected_graph(9, 0.3, seed=seed, cost_sampler=integer_costs(1, 3))
        instance = randomized(base, seed=seed + 30)
        result = run_edgecost_mechanism(instance)
        verification = verify_edgecost_result(result)
        assert verification.ok, verification.mismatches[:3]

    def test_uniform_instance_distributed(self, fig1):
        instance = EdgeCostGraph.from_uniform(fig1)
        result = run_edgecost_mechanism(instance)
        assert verify_edgecost_result(result).ok
        # the worked example survives the embedding
        assert result.price(3, 0, 5) == pytest.approx(3.0)
        assert result.price(3, 4, 5) == pytest.approx(9.0)
