"""Tests for repro.mechanism.uniqueness (Green-Laffont probes)."""

import pytest

from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.mechanism.uniqueness import (
    groves_identity_gap,
    perturbed_mechanism_witness,
    removed_total_cost,
)
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import avoiding_cost


class TestRemovedTotalCost:
    def test_fig1_single_pair(self, fig1, labels):
        # V(c^{-D}) for the single X->Z packet is the D-avoiding cost 5
        traffic = {(labels["X"], labels["Z"]): 1.0}
        assert removed_total_cost(fig1, labels["D"], traffic) == 5.0

    def test_pairs_involving_k_unaffected(self, fig1, labels):
        routes = all_pairs_lcp(fig1)
        traffic = {(labels["D"], labels["Z"]): 2.0}
        assert removed_total_cost(fig1, labels["D"], traffic) == pytest.approx(
            2.0 * routes.cost(labels["D"], labels["Z"])
        )

    def test_zero_traffic_ignored(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 0.0}
        assert removed_total_cost(fig1, labels["D"], traffic) == 0.0


class TestGrovesIdentity:
    def test_fig1_all_nodes(self, fig1):
        traffic = {(i, j): 1.0 for i in fig1.nodes for j in fig1.nodes if i != j}
        for node in fig1.nodes:
            assert abs(groves_identity_gap(fig1, node, traffic)) < 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = random_biconnected_graph(
            9, 0.3, seed=seed, cost_sampler=integer_costs(0, 5)
        )
        traffic = {(i, j): float(1 + (i + j) % 3)
                   for i in graph.nodes for j in graph.nodes if i != j}
        for node in graph.nodes:
            assert abs(groves_identity_gap(graph, node, traffic)) < 1e-6


class TestPerturbationWitness:
    def test_constant_bonus_breaks_zero_payment(self, fig1, labels):
        traffic = {(labels["X"], labels["Z"]): 1.0}
        witness = perturbed_mechanism_witness(
            fig1, labels["A"], traffic, perturbation=lambda declared: 1.0
        )
        assert witness.violates_zero_payment
        assert witness.violated

    def test_declaration_dependent_bonus_breaks_strategyproofness(self, fig1, labels):
        # pay a bonus proportional to the declared cost: overstating
        # becomes profitable for a node that keeps its traffic
        traffic = {(labels["Y"], labels["Z"]): 1.0}
        witness = perturbed_mechanism_witness(
            fig1,
            labels["D"],
            traffic,
            perturbation=lambda declared: 2.0 * declared,
            lies=(2.0, 4.0, 7.9),
        )
        assert witness.violates_strategyproofness
        assert witness.violated

    def test_null_perturbation_is_clean(self, fig1, labels):
        traffic = {(labels["Y"], labels["Z"]): 1.0}
        witness = perturbed_mechanism_witness(
            fig1, labels["D"], traffic, perturbation=lambda declared: 0.0
        )
        assert not witness.violates_zero_payment
        assert not witness.violates_strategyproofness
