"""Property-based tests for the VCG mechanism (Theorem 1 invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.asgraph import ASGraph
from repro.mechanism.strategyproof import deviation_outcome
from repro.mechanism.uniqueness import groves_identity_gap
from repro.mechanism.vcg import compute_price_table, payments


@st.composite
def small_biconnected_graphs(draw, min_nodes=4, max_nodes=8):
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(
        st.lists(st.integers(0, 8).map(float), min_size=n, max_size=n)
    )
    chord_pool = [(i, j) for i in range(n) for j in range(i + 2, n)
                  if not (i == 0 and j == n - 1)]
    chords = draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6)) if chord_pool else []
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


@settings(max_examples=30, deadline=None)
@given(small_biconnected_graphs())
def test_prices_dominate_costs_and_vanish_off_path(graph):
    table = compute_price_table(graph)
    routes = table.routes
    for (source, destination), row in table.items():
        path = routes.path(source, destination)
        transit = set(path[1:-1])
        assert set(row) == transit
        for k, price in row.items():
            assert price >= graph.cost(k) - 1e-9
        for k in graph.nodes:
            if k not in transit:
                assert table.price(k, source, destination) == 0.0


@settings(max_examples=25, deadline=None)
@given(small_biconnected_graphs())
def test_groves_identity(graph):
    traffic = {
        (i, j): 1.0 for i in graph.nodes for j in graph.nodes if i != j
    }
    table = compute_price_table(graph)
    for node in graph.nodes:
        gap = groves_identity_gap(graph, node, traffic, table=table)
        assert abs(gap) < 1e-6


@settings(max_examples=15, deadline=None)
@given(
    small_biconnected_graphs(),
    st.integers(0, 7),
    st.one_of(st.integers(0, 16).map(lambda v: v / 2.0)),
)
def test_no_single_lie_profits(graph, node_index, lie):
    node = graph.nodes[node_index % graph.num_nodes]
    if lie == graph.cost(node):
        lie = lie + 1.0
    traffic = {
        (i, j): 1.0 for i in graph.nodes for j in graph.nodes if i != j
    }
    outcome = deviation_outcome(graph, node, lie, traffic)
    assert outcome.gain <= 1e-9


@settings(max_examples=25, deadline=None)
@given(small_biconnected_graphs())
def test_payments_linear_in_traffic(graph):
    table = compute_price_table(graph)
    nodes = graph.nodes
    traffic = {(nodes[0], nodes[-1]): 2.0, (nodes[1], nodes[-1]): 3.0}
    doubled = {pair: 2 * value for pair, value in traffic.items()}
    base = payments(table, traffic)
    scaled = payments(table, doubled)
    for node in nodes:
        assert scaled[node] == pytest.approx(2 * base[node])
