"""Tests for the experiment harness: every registered experiment must
run at small scale and report PASS -- this is the reproduction's
top-level assertion."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
)
from repro.experiments.runner import run_all, run_experiment, write_experiments_md


class TestRegistry:
    def test_all_ids_present(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 19)}

    def test_list_matches_registry(self):
        listed = list_experiments()
        assert [eid for eid, _title in listed] == list(EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("E99")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
def test_experiment_passes_at_small_scale(experiment_id):
    result = run_experiment(experiment_id, scale="small", seed=0)
    assert result.experiment_id == experiment_id
    assert result.tables, "every experiment must render at least one table"
    assert result.passed, result.render()


class TestRendering:
    def test_render_text(self):
        result = run_experiment("E1")
        text = result.render()
        assert "[E1]" in text
        assert "PASS" in text

    def test_render_markdown(self):
        result = run_experiment("E1")
        md = result.to_markdown()
        assert md.startswith("## E1")
        assert "**PASS**" in md

    def test_write_experiments_md(self, tmp_path):
        results = [run_experiment("E1"), run_experiment("E2")]
        target = tmp_path / "EXPERIMENTS.md"
        write_experiments_md(target, results, scale="small")
        content = target.read_text()
        assert "2/2 experiments PASS" in content
        assert "## E1" in content
        assert "## E2" in content

    def test_run_all_subset(self):
        results = run_all(only=["E1", "E2"])
        assert [result.experiment_id for result in results] == ["E1", "E2"]
