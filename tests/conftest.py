"""Shared fixtures, Hypothesis profiles, and markers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    FIG1_LABELS,
    fig1_graph,
    integer_costs,
    random_biconnected_graph,
    ring_graph,
)

# ----------------------------------------------------------------------
# Hypothesis profiles.  Both are deterministic (``derandomize`` derives
# the example stream from each test's fixed seed, so a red run is
# reproducible without copying a failure blob) and deadline-free (the
# differential protocol tests legitimately take seconds per example).
# CI=1 selects the wider profile; locally the smaller one keeps the
# suite fast.
# ----------------------------------------------------------------------
hypothesis_settings.register_profile(
    "dev", derandomize=True, deadline=None, max_examples=15
)
hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, max_examples=40
)
hypothesis_settings.load_profile("ci" if os.environ.get("CI") else "dev")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running differential/property tests (deselect with -m 'not slow')",
    )


@pytest.fixture
def fig1():
    """The paper's Figure 1 example graph."""
    return fig1_graph()


@pytest.fixture
def labels():
    """Human labels for the Figure 1 graph (X=0, A=1, B=2, D=3, Y=4, Z=5)."""
    return dict(FIG1_LABELS)


@pytest.fixture
def triangle():
    """The smallest biconnected graph: a 3-cycle with distinct costs."""
    return ASGraph(
        nodes=[(0, 1.0), (1, 2.0), (2, 4.0)],
        edges=[(0, 1), (1, 2), (0, 2)],
    )


@pytest.fixture
def square():
    """A 4-cycle: every pair has exactly two disjoint routes."""
    return ASGraph(
        nodes=[(0, 1.0), (1, 2.0), (2, 3.0), (3, 5.0)],
        edges=[(0, 1), (1, 2), (2, 3), (3, 0)],
    )


@pytest.fixture
def small_random():
    """A deterministic 10-node random biconnected graph with integer
    costs (ties are common, stressing tie-breaking)."""
    return random_biconnected_graph(10, 0.25, seed=7, cost_sampler=integer_costs(0, 5))


@pytest.fixture
def ring6():
    """A 6-ring with integer costs."""
    return ring_graph(6, seed=3, cost_sampler=integer_costs(1, 4))
