"""Tests for repro.mechanism.vcg (Theorem 1)."""

import math

import pytest

from repro.exceptions import MechanismError, NotBiconnectedError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.mechanism.vcg import compute_price_table, payments, vcg_price
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import avoiding_cost


class TestVcgPrice:
    def test_fig1_payments(self, fig1, labels):
        X, B, D, Y, Z = (labels[n] for n in "XBDYZ")
        assert vcg_price(fig1, X, Z, D) == 3.0
        assert vcg_price(fig1, X, Z, B) == 4.0
        assert vcg_price(fig1, Y, Z, D) == 9.0

    def test_zero_off_the_path(self, fig1, labels):
        assert vcg_price(fig1, labels["X"], labels["Z"], labels["A"]) == 0.0
        assert vcg_price(fig1, labels["X"], labels["Z"], labels["Y"]) == 0.0

    def test_price_at_least_cost(self, small_random):
        routes = all_pairs_lcp(small_random)
        for (source, destination), path in routes.paths.items():
            for k in path[1:-1]:
                price = vcg_price(small_random, source, destination, k, routes=routes)
                assert price >= small_random.cost(k) - 1e-9

    def test_non_biconnected_raises(self):
        graph = ASGraph(
            nodes=[(i, 1.0) for i in range(5)],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
        )
        # node 2 is a cut vertex on the LCP 0 -> 4
        with pytest.raises(NotBiconnectedError):
            vcg_price(graph, 0, 4, 2)


class TestPriceTable:
    def test_matches_single_price_queries(self, small_random):
        table = compute_price_table(small_random)
        routes = table.routes
        for (source, destination), path in routes.paths.items():
            for k in path[1:-1]:
                assert table.price(k, source, destination) == pytest.approx(
                    vcg_price(small_random, source, destination, k, routes=routes)
                )

    def test_rows_cover_exactly_transit_nodes(self, fig1, labels):
        table = compute_price_table(fig1)
        row = table.row(labels["X"], labels["Z"])
        assert set(row) == {labels["B"], labels["D"]}

    def test_direct_links_have_empty_rows(self, fig1, labels):
        assert table_row_empty(compute_price_table(fig1), labels["A"], labels["Z"])

    def test_total_price(self, fig1, labels):
        table = compute_price_table(fig1)
        assert table.total_price(labels["X"], labels["Z"]) == 7.0

    def test_node_prices_view(self, fig1, labels):
        table = compute_price_table(fig1)
        d_prices = table.node_prices(labels["D"])
        assert d_prices[(labels["X"], labels["Z"])] == 3.0
        assert d_prices[(labels["Y"], labels["Z"])] == 9.0

    def test_marginal_formula(self, small_random):
        # p^k_ij = c_k + Cost(P_{-k}) - Cost(P)
        table = compute_price_table(small_random)
        routes = table.routes
        for (source, destination), row in table.items():
            for k, price in row.items():
                detour = avoiding_cost(small_random, source, destination, k)
                expected = small_random.cost(k) + detour - routes.cost(source, destination)
                assert price == pytest.approx(expected)

    def test_pairs_sorted(self, triangle):
        table = compute_price_table(triangle)
        assert list(table.pairs()) == sorted(table.pairs())


def table_row_empty(table, source, destination):
    return table.row(source, destination) == {}


class TestPayments:
    def test_single_packet(self, fig1, labels):
        table = compute_price_table(fig1)
        paid = payments(table, {(labels["X"], labels["Z"]): 1.0})
        assert paid[labels["D"]] == 3.0
        assert paid[labels["B"]] == 4.0
        assert paid[labels["A"]] == 0.0

    def test_scales_with_intensity(self, fig1, labels):
        table = compute_price_table(fig1)
        paid = payments(table, {(labels["X"], labels["Z"]): 10.0})
        assert paid[labels["D"]] == 30.0

    def test_sums_over_pairs(self, fig1, labels):
        table = compute_price_table(fig1)
        paid = payments(
            table,
            {(labels["X"], labels["Z"]): 1.0, (labels["Y"], labels["Z"]): 1.0},
        )
        assert paid[labels["D"]] == 12.0  # 3 + 9

    def test_negative_traffic_rejected(self, fig1, labels):
        table = compute_price_table(fig1)
        with pytest.raises(MechanismError, match="negative"):
            payments(table, {(labels["X"], labels["Z"]): -1.0})

    def test_every_node_present(self, fig1):
        table = compute_price_table(fig1)
        paid = payments(table, {})
        assert set(paid) == set(fig1.nodes)
        assert all(value == 0.0 for value in paid.values())

    @pytest.mark.parametrize("seed", range(3))
    def test_no_transit_no_payment(self, seed):
        graph = random_biconnected_graph(
            9, 0.3, seed=seed, cost_sampler=integer_costs(1, 5)
        )
        table = compute_price_table(graph)
        routes = table.routes
        traffic = {(graph.nodes[0], graph.nodes[1]): 5.0}
        paid = payments(table, traffic)
        path = routes.path(graph.nodes[0], graph.nodes[1])
        for node in graph.nodes:
            if node not in path[1:-1]:
                assert paid[node] == 0.0
