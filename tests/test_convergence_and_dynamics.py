"""Tests for repro.core.convergence and repro.core.dynamics."""

import pytest

from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.bgp.metrics import ConvergenceReport
from repro.core.convergence import ConvergenceBound, convergence_bound
from repro.core.dynamics import apply_event_to_graph, dynamic_scenario
from repro.core.price_node import UpdateMode
from repro.exceptions import ExperimentError
from repro.graphs.generators import fig1_graph, integer_costs, random_biconnected_graph


class TestConvergenceBound:
    def test_fig1_values(self):
        bound = convergence_bound(fig1_graph())
        assert bound.d == 3
        assert bound.d_prime == 4
        assert bound.stages == 4

    def test_satisfied_by(self):
        bound = ConvergenceBound(d=3, d_prime=4)
        good = ConvergenceReport(converged=True, stages=4)
        bad = ConvergenceReport(converged=True, stages=5)
        assert bound.satisfied_by(good)
        assert not bound.satisfied_by(bad)
        assert bound.satisfied_by(bad, slack=1)


class TestApplyEventToGraph:
    def test_link_failure(self, square):
        mutated = apply_event_to_graph(square, LinkFailure(0, 1))
        assert not mutated.has_edge(0, 1)

    def test_link_recovery(self, square):
        failed = square.without_edge(0, 1)
        recovered = apply_event_to_graph(failed, LinkRecovery(0, 1))
        assert recovered.has_edge(0, 1)

    def test_cost_change(self, square):
        mutated = apply_event_to_graph(square, CostChange(2, 42.0))
        assert mutated.cost(2) == 42.0

    def test_event_descriptions(self):
        assert "fails" in LinkFailure(0, 1).describe()
        assert "recovers" in LinkRecovery(0, 1).describe()
        assert "re-declares" in CostChange(0, 2.0).describe()


class TestDynamicScenario:
    @pytest.mark.parametrize("mode", list(UpdateMode))
    def test_fig1_cost_change(self, labels, mode):
        graph = fig1_graph()
        events = [CostChange(labels["D"], 50.0)]
        run = dynamic_scenario(graph, events, mode=mode)
        assert run.all_ok
        assert run.all_within_bound
        assert len(run.epochs) == 2

    def test_fig1_failure_and_recovery(self, labels):
        graph = fig1_graph()
        # removing B-D leaves the 6-cycle X-A-Z-D-Y-B-X: still biconnected
        events = [LinkFailure(labels["B"], labels["D"]),
                  LinkRecovery(labels["B"], labels["D"])]
        run = dynamic_scenario(graph, events)
        assert run.all_ok
        descriptions = [epoch.description for epoch in run.epochs]
        assert descriptions[0] == "initial convergence"
        assert "fails" in descriptions[1]
        assert "recovers" in descriptions[2]

    def test_biconnectivity_guard(self, labels):
        graph = fig1_graph()
        # removing A-Z makes A's other connection critical: check guard
        # on an event that truly breaks biconnectivity
        events = [LinkFailure(labels["A"], labels["Z"])]
        # A would be left with degree 1 -> not biconnected
        with pytest.raises(ExperimentError, match="biconnectivity"):
            dynamic_scenario(graph, events)

    @pytest.mark.parametrize("seed", range(2))
    def test_random_graph_events(self, seed):
        graph = random_biconnected_graph(
            10, 0.35, seed=seed, cost_sampler=integer_costs(1, 5)
        )
        busiest = max(graph.nodes, key=graph.degree)
        events = [CostChange(busiest, graph.cost(busiest) + 3.0)]
        run = dynamic_scenario(graph, events)
        assert run.all_ok
        assert run.all_within_bound

    def test_epoch_records_cold_stages(self, labels):
        graph = fig1_graph()
        run = dynamic_scenario(graph, [CostChange(labels["D"], 2.0)])
        for epoch in run.epochs:
            assert epoch.cold_stages <= epoch.bound.stages
