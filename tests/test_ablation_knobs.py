"""Regression tests for the ablation knobs -- the negative controls.

These pin the three failure modes discovered while building the
distributed protocol, so they can never silently regress into the
default configuration:

* disabling the Sect. 6 restart corrupts post-event prices;
* the literal Eq. 3 child formula corrupts prices under asynchrony;
* dropping per-link FIFO corrupts even route state.
"""

import pytest

from repro.bgp.engine import AsynchronousEngine, SynchronousEngine
from repro.bgp.events import CostChange
from repro.bgp.policy import LowestCostPolicy
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import DistributedPriceResult, verify_against_centralized
from repro.graphs.generators import (
    integer_costs,
    random_biconnected_graph,
    ring_graph,
    waxman_graph,
)


def _price_factory(**kwargs):
    def factory(node_id, cost, policy):
        return PriceComputingNode(node_id, cost, policy, **kwargs)

    return factory


class TestRestartKnob:
    def _run_cost_increase(self, restart):
        graph = ring_graph(8, seed=0, cost_sampler=integer_costs(1, 5))
        engine = SynchronousEngine(
            graph,
            node_factory=_price_factory(mode=UpdateMode.MONOTONE),
            restart_on_events=restart,
        )
        engine.initialize()
        engine.run()
        victim = graph.nodes[0]
        new_cost = graph.cost(victim) * 3.0 + 1.0
        CostChange(victim, new_cost).apply(engine)
        report = engine.run()
        mutated = graph.with_cost(victim, new_cost)
        result = DistributedPriceResult(
            graph=mutated, engine=engine, report=report, mode=UpdateMode.MONOTONE
        )
        return verify_against_centralized(result)

    def test_with_restart_is_exact(self):
        assert self._run_cost_increase(True).ok

    def test_without_restart_is_wrong(self):
        # the negative control: stale candidates undercut the new truth
        assert not self._run_cost_increase(False).ok


class TestChildFormulaKnob:
    def _async_scan(self, literal, seeds=8):
        bad = 0
        for seed in range(seeds):
            graph = waxman_graph(12, seed=seed)
            engine = AsynchronousEngine(
                graph,
                policy=LowestCostPolicy(),
                node_factory=_price_factory(
                    mode=UpdateMode.MONOTONE, literal_child_formula=literal
                ),
                seed=seed,
            )
            engine.initialize()
            report = engine.run()
            result = DistributedPriceResult(
                graph=graph, engine=engine, report=report, mode=UpdateMode.MONOTONE
            )
            if not verify_against_centralized(result).ok:
                bad += 1
        return bad

    def test_advert_consistent_formula_is_exact(self):
        assert self._async_scan(False) == 0

    def test_literal_formula_fails_somewhere(self):
        assert self._async_scan(True) > 0

    def test_literal_formula_fine_when_synchronous(self):
        # on the synchronous engine the premise holds and Eq. 3 is exact
        graph = waxman_graph(12, seed=1)
        engine = SynchronousEngine(
            graph,
            node_factory=_price_factory(
                mode=UpdateMode.MONOTONE, literal_child_formula=True
            ),
        )
        engine.initialize()
        report = engine.run()
        result = DistributedPriceResult(
            graph=graph, engine=engine, report=report, mode=UpdateMode.MONOTONE
        )
        assert verify_against_centralized(result).ok


class TestFifoKnob:
    def _async_scan(self, fifo, seeds=8):
        bad = 0
        for seed in range(seeds):
            graph = random_biconnected_graph(
                9, 0.25, seed=seed, cost_sampler=integer_costs(0, 5)
            )
            engine = AsynchronousEngine(
                graph,
                policy=LowestCostPolicy(),
                node_factory=_price_factory(),
                seed=seed,
                fifo_links=fifo,
            )
            engine.initialize()
            report = engine.run()
            result = DistributedPriceResult(
                graph=graph, engine=engine, report=report, mode=UpdateMode.MONOTONE
            )
            if not verify_against_centralized(result).ok:
                bad += 1
        return bad

    def test_fifo_is_exact(self):
        assert self._async_scan(True) == 0

    def test_reordering_fails_somewhere(self):
        assert self._async_scan(False) > 0
