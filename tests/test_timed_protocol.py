"""The timed substrate: differential timing-realism tests.

Three contracts, in increasing strength:

* *Degenerate timing is the async engine*: with the default uniform
  jitter and MRAI off the discrete-event engine must reproduce the
  :class:`AsynchronousEngine`'s delivery schedule and converged model
  **bit for bit** for every seed (same RNG draw sequence, same FIFO
  clamp, same tie-breaking).
* *Correctness is timing-independent*: under any seeded delay
  distribution and MRAI configuration -- including mid-flight link
  failures and recoveries -- the converged routes and prices equal the
  centralized Theorem 1 reference exactly.
* *The simulation itself is deterministic*: virtual time never runs
  backwards, ties break by sequence number, and the full event trace is
  a pure function of the seed.

Plus accounting: the MRAI/loss counters must reconcile against the rows
actually transported (see :class:`repro.bgp.metrics.TimedReport`), and
a checked-in golden JSONL trace must summarize back to the recorded
run's report numbers bit-for-bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.delays import ConstantDelay, LogNormalDelay, UniformDelay, parse_delay
from repro.bgp.engine import AsynchronousEngine
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.bgp.timed import MRAI_PEER, MRAI_PREFIX, MRAIConfig, TimedEngine
from repro.core.dynamics import timed_scenario
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import timed_mechanism, verify_against_centralized
from repro.exceptions import ProtocolError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import fig1_graph, integer_costs, isp_like_graph


# ----------------------------------------------------------------------
# Helpers (same shapes as test_delta_protocol)
# ----------------------------------------------------------------------
def _price_factory(mode):
    def factory(node_id, cost, policy):
        return PriceComputingNode(node_id, cost, policy, mode=mode)

    return factory


FACTORIES = {
    "plain": None,
    "price-monotone": _price_factory(UpdateMode.MONOTONE),
    "price-recompute": _price_factory(UpdateMode.RECOMPUTE),
}

#: Delay/MRAI settings exercised by the parity tests.
TIMINGS = {
    "zero": (ConstantDelay(0.0), None),
    "constant": (ConstantDelay(0.25), None),
    "uniform": (UniformDelay(0.1, 1.0), None),
    "lognormal": (LogNormalDelay(-2.0, 0.8), None),
    "peer-mrai": (UniformDelay(0.1, 1.0), MRAIConfig(1.0, MRAI_PEER, jitter=0.25)),
    "prefix-mrai": (LogNormalDelay(-2.0, 0.8), MRAIConfig(0.5, MRAI_PREFIX)),
}


def _engine_state(engine):
    """Converged model state: routes, price rows, StateReport numbers."""
    state = {}
    for node_id, node in engine.nodes.items():
        routes = sorted(
            (d, e.path, e.cost, tuple(sorted(e.node_costs.items())))
            for d, e in node.routes.items()
        )
        prices = sorted(
            (d, tuple(sorted(row.items())))
            for d, row in getattr(node, "price_rows", {}).items()
        )
        state[node_id] = (routes, prices)
    return state


def _timed_engine(graph, workload="plain", **kwargs):
    factory = FACTORIES[workload]
    if factory is not None:
        kwargs["node_factory"] = factory
    return TimedEngine(graph, **kwargs)


def _assert_reconciled(engine):
    """The two TimedReport accounting invariants, at drain."""
    report = engine.run()  # idempotent on a drained engine
    assert engine.pending_mrai_rows() == 0
    assert report.rows_offered == (
        report.rows_sent + report.mrai_rows_coalesced + report.mrai_rows_discarded
    )
    assert report.rows_sent == report.rows_delivered + report.rows_lost
    return report


@st.composite
def protocol_graphs(draw, min_nodes=4, max_nodes=9):
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(st.lists(st.integers(0, 6).map(float), min_size=n, max_size=n))
    chord_pool = [
        (i, j)
        for i in range(n)
        for j in range(i + 2, n)
        if not (i == 0 and j == n - 1)
    ]
    chords = (
        draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6))
        if chord_pool
        else []
    )
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


# ----------------------------------------------------------------------
# Unit: delay models and MRAI configuration
# ----------------------------------------------------------------------
class TestDelayModels:
    def test_parse_delay_forms(self):
        assert parse_delay("constant:0.5") == ConstantDelay(0.5)
        assert parse_delay("uniform:0.1,1.0") == UniformDelay(0.1, 1.0)
        assert parse_delay("lognormal:-2,0.5") == LogNormalDelay(-2.0, 0.5)

    @pytest.mark.parametrize(
        "spec",
        ["", "gaussian:1", "uniform:1", "uniform:2,1", "constant:-1", "constant:x"],
    )
    def test_parse_delay_rejects_malformed(self, spec):
        with pytest.raises(ProtocolError):
            parse_delay(spec)

    def test_constant_draws_nothing_from_the_rng(self):
        import random

        rng = random.Random(0)
        before = rng.getstate()
        assert ConstantDelay(0.3).sample(rng) == 0.3
        assert rng.getstate() == before

    def test_uniform_matches_async_engine_draw(self):
        import random

        model = UniformDelay(0.1, 1.0)
        assert model.sample(random.Random(7)) == random.Random(7).uniform(0.1, 1.0)

    def test_means(self):
        assert ConstantDelay(0.4).mean() == 0.4
        assert UniformDelay(0.0, 1.0).mean() == 0.5
        assert LogNormalDelay(-2.0, 0.5).mean() > 0.0

    def test_describe_roundtrips_through_parse(self):
        for model in (ConstantDelay(0.5), UniformDelay(0.1, 1.0), LogNormalDelay(-2, 0.8)):
            assert parse_delay(model.describe()) == model


class TestMRAIConfig:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            MRAIConfig(0.0)
        with pytest.raises(ProtocolError):
            MRAIConfig(1.0, mode="session")
        with pytest.raises(ProtocolError):
            MRAIConfig(1.0, jitter=1.5)

    def test_describe(self):
        assert MRAIConfig(1.0, MRAI_PEER, jitter=0.25).describe() == "mrai:peer:1,jitter=0.25"
        assert "prefix" in MRAIConfig(2.0, MRAI_PREFIX).describe()

    def test_non_fifo_links_rejected(self):
        with pytest.raises(ProtocolError):
            TimedEngine(fig1_graph(), fifo_links=False)


# ----------------------------------------------------------------------
# Contract 1: degenerate timing == AsynchronousEngine, bit for bit
# ----------------------------------------------------------------------
class TestAsyncBitIdentity:
    def _run_both(self, graph, seed, workload="plain"):
        timed = _timed_engine(graph, workload, seed=seed, delay=UniformDelay(0.1, 1.0))
        timed.delivery_log = []
        timed.initialize()
        timed_report = timed.run()

        kwargs = {"seed": seed}
        if FACTORIES[workload] is not None:
            kwargs["node_factory"] = FACTORIES[workload]
        async_engine = AsynchronousEngine(graph, **kwargs)
        async_engine.delivery_log = []
        async_engine.run()
        return timed, timed_report, async_engine

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_schedule_and_model_identical(self, seed):
        graph = isp_like_graph(12, seed=seed, cost_sampler=integer_costs(1, 6))
        timed, report, async_engine = self._run_both(graph, seed)
        # the *schedule* -- every delivery's timestamp, link, and size
        assert timed.delivery_log == async_engine.delivery_log
        assert report.deliveries == async_engine.deliveries
        assert report.rows_sent == async_engine.rows_sent
        assert report.rows_suppressed == async_engine.rows_suppressed
        # ... and the converged model
        assert _engine_state(timed) == _engine_state(async_engine)

    @pytest.mark.parametrize("workload", ["price-monotone", "price-recompute"])
    def test_price_workloads_identical(self, workload):
        graph = isp_like_graph(10, seed=3, cost_sampler=integer_costs(1, 6))
        timed, _report, async_engine = self._run_both(graph, 3, workload)
        assert timed.delivery_log == async_engine.delivery_log
        assert _engine_state(timed) == _engine_state(async_engine)

    @settings(max_examples=10, deadline=None)
    @given(protocol_graphs(), st.integers(0, 2**16))
    def test_bit_identity_on_random_graphs(self, graph, seed):
        timed, _report, async_engine = self._run_both(graph, seed)
        assert timed.delivery_log == async_engine.delivery_log
        assert _engine_state(timed) == _engine_state(async_engine)

    def test_zero_delay_collapses_virtual_time(self):
        graph = fig1_graph()
        engine = _timed_engine(graph, seed=0, delay=ConstantDelay(0.0))
        engine.initialize()
        report = engine.run()
        assert report.converged
        assert report.clock == 0.0
        assert report.convergence_time == 0.0
        assert verify_against_centralized(
            timed_mechanism(graph, seed=0, delay=ConstantDelay(0.0))
        ).ok


# ----------------------------------------------------------------------
# Contract 2: centralized parity under every timing model
# ----------------------------------------------------------------------
class TestCentralizedParity:
    @pytest.mark.parametrize("timing", sorted(TIMINGS))
    @pytest.mark.parametrize("seed", [0, 11])
    def test_parity_fixed_graphs(self, timing, seed):
        delay, mrai = TIMINGS[timing]
        graph = isp_like_graph(12, seed=seed, cost_sampler=integer_costs(1, 6))
        result = timed_mechanism(graph, seed=seed, delay=delay, mrai=mrai)
        assert result.report.converged
        verify_against_centralized(result).raise_on_mismatch()

    @pytest.mark.slow
    @settings(max_examples=12, deadline=None)
    @given(
        protocol_graphs(min_nodes=4, max_nodes=8),
        st.integers(0, 2**16),
        st.sampled_from(sorted(TIMINGS)),
    )
    def test_parity_random(self, graph, seed, timing):
        delay, mrai = TIMINGS[timing]
        result = timed_mechanism(graph, seed=seed, delay=delay, mrai=mrai)
        assert result.report.converged
        verify_against_centralized(result).raise_on_mismatch()


# ----------------------------------------------------------------------
# Contract 3: virtual-clock monotonicity & deterministic tie-breaking
# ----------------------------------------------------------------------
class TestDeterminism:
    def _trace(self, graph, seed, timing="peer-mrai"):
        delay, mrai = TIMINGS[timing]
        engine = _timed_engine(graph, seed=seed, delay=delay, mrai=mrai)
        engine.event_log = []
        engine.initialize()
        engine.run()
        return engine.event_log

    def test_same_seed_same_event_trace(self):
        graph = isp_like_graph(10, seed=5, cost_sampler=integer_costs(1, 6))
        first = self._trace(graph, seed=42)
        second = self._trace(graph, seed=42)
        assert first == second
        assert first  # non-vacuous

    def test_clock_is_monotone(self):
        graph = isp_like_graph(10, seed=5, cost_sampler=integer_costs(1, 6))
        trace = self._trace(graph, seed=9, timing="lognormal")
        times = [when for when, _kind, _detail in trace]
        assert times == sorted(times)

    @settings(max_examples=10, deadline=None)
    @given(protocol_graphs(), st.integers(0, 2**16), st.sampled_from(sorted(TIMINGS)))
    def test_event_trace_is_a_function_of_the_seed(self, graph, seed, timing):
        delay, mrai = TIMINGS[timing]
        traces = []
        for _ in range(2):
            engine = _timed_engine(graph, seed=seed, delay=delay, mrai=mrai)
            engine.event_log = []
            engine.initialize()
            engine.run()
            traces.append(engine.event_log)
            times = [when for when, _kind, _detail in engine.event_log]
            assert times == sorted(times)
        assert traces[0] == traces[1]

    def test_scheduling_into_the_past_is_rejected(self):
        graph = fig1_graph()
        engine = TimedEngine(graph, seed=0)
        engine.initialize()
        engine.run()
        assert engine.clock > 0.0
        with pytest.raises(ProtocolError):
            engine.schedule_event(0.0, LinkFailure(0, 1))


# ----------------------------------------------------------------------
# Fault sequences: timed failures/restores mid-flight
# ----------------------------------------------------------------------
class TestFaultSequences:
    def _chords(self, graph):
        """Edges whose removal keeps the ring (and biconnectivity)."""
        n = graph.num_nodes
        ring = {(i, (i + 1) % n) for i in range(n)}
        ring |= {(b, a) for a, b in ring}
        return sorted((u, v) for u, v in graph.edges if (u, v) not in ring)

    @pytest.mark.parametrize("timing", ["uniform", "peer-mrai"])
    def test_midflight_fail_and_restore(self, timing):
        delay, mrai = TIMINGS[timing]
        graph = isp_like_graph(12, seed=1, cost_sampler=integer_costs(1, 6))
        chords = self._chords(graph)
        assert chords
        u, v = chords[0]
        # t=0.2 lands inside the initial flood: in-flight messages on
        # the failed link must be dropped, not delivered
        run = timed_scenario(
            graph,
            [
                (0.2, LinkFailure(u, v)),
                (1.5, CostChange(sorted(graph.nodes)[1], 9.0)),
                (2.5, LinkRecovery(u, v)),
            ],
            seed=7,
            delay=delay,
            mrai=mrai,
        )
        assert run.ok
        assert run.events_applied == 3
        run.verification.raise_on_mismatch()
        report = run.report
        assert report.network_events == 3
        if timing == "uniform":
            assert report.messages_lost > 0
        assert report.rows_offered == (
            report.rows_sent + report.mrai_rows_coalesced + report.mrai_rows_discarded
        )
        assert report.rows_sent == report.rows_delivered + report.rows_lost

    @pytest.mark.slow
    @settings(max_examples=8, deadline=None)
    @given(
        protocol_graphs(min_nodes=5, max_nodes=8),
        st.integers(0, 2**16),
        st.sampled_from(["uniform", "peer-mrai", "prefix-mrai"]),
        st.data(),
    )
    def test_random_fault_sequences_converge_with_parity(
        self, graph, seed, timing, data
    ):
        delay, mrai = TIMINGS[timing]
        chords = self._chords(graph)
        events = []
        failed = []
        when = 0.0
        n = graph.num_nodes
        for _ in range(data.draw(st.integers(1, 4), label="num_events")):
            when += data.draw(st.floats(0.1, 2.0, allow_nan=False), label="gap")
            choices = ["change_cost"]
            if chords:
                choices.append("fail_link")
            if failed:
                choices.append("restore_link")
            kind = data.draw(st.sampled_from(choices), label="event")
            if kind == "change_cost":
                node = data.draw(st.integers(0, n - 1), label="node")
                cost = float(data.draw(st.integers(0, 9), label="cost"))
                events.append((when, CostChange(node, cost)))
            elif kind == "fail_link":
                index = data.draw(st.integers(0, len(chords) - 1), label="edge")
                edge = chords.pop(index)
                failed.append(edge)
                events.append((when, LinkFailure(*edge)))
            else:
                index = data.draw(st.integers(0, len(failed) - 1), label="restore")
                edge = failed.pop(index)
                chords.append(edge)
                events.append((when, LinkRecovery(*edge)))
        run = timed_scenario(graph, events, seed=seed, delay=delay, mrai=mrai)
        assert run.report.converged
        run.verification.raise_on_mismatch()
        report = run.report
        assert report.rows_offered == (
            report.rows_sent + report.mrai_rows_coalesced + report.mrai_rows_discarded
        )
        assert report.rows_sent == report.rows_delivered + report.rows_lost


# ----------------------------------------------------------------------
# MRAI accounting
# ----------------------------------------------------------------------
class TestMRAIAccounting:
    def test_suppression_reconciles_with_rows_delivered(self):
        graph = isp_like_graph(16, seed=0, cost_sampler=integer_costs(1, 6))
        engine = _timed_engine(
            graph,
            "price-monotone",
            seed=0,
            delay=UniformDelay(0.1, 1.0),
            mrai=MRAIConfig(1.0, MRAI_PEER, jitter=0.25),
        )
        engine.initialize()
        report = _assert_reconciled(engine)
        assert report.converged
        assert report.mrai_deferrals > 0
        assert report.mrai_flushes > 0
        assert report.mrai_rows_coalesced > 0
        # nothing was lost on a healthy topology
        assert report.rows_lost == 0 and report.messages_lost == 0

    def test_mrai_reduces_deliveries(self):
        graph = isp_like_graph(16, seed=0, cost_sampler=integer_costs(1, 6))
        deliveries = {}
        for label in ("uniform", "peer-mrai"):
            delay, mrai = TIMINGS[label]
            result = timed_mechanism(graph, seed=0, delay=delay, mrai=mrai)
            assert verify_against_centralized(result).ok
            deliveries[label] = result.report.deliveries
        assert deliveries["peer-mrai"] < deliveries["uniform"]

    def test_failure_discards_pending_mrai_rows(self):
        graph = isp_like_graph(12, seed=4, cost_sampler=integer_costs(1, 6))
        n = graph.num_nodes
        ring = {(i, (i + 1) % n) for i in range(n)} | {
            ((i + 1) % n, i) for i in range(n)
        }
        chord = sorted((u, v) for u, v in graph.edges if (u, v) not in ring)[0]
        run = timed_scenario(
            graph,
            [(0.3, LinkFailure(*chord))],
            seed=4,
            delay=UniformDelay(0.1, 1.0),
            mrai=MRAIConfig(2.0, MRAI_PEER),
        )
        assert run.ok
        report = run.report
        # pending rows on the failed session never hit the wire ...
        assert report.mrai_rows_discarded >= 0
        # ... and the books still balance
        assert report.rows_offered == (
            report.rows_sent + report.mrai_rows_coalesced + report.mrai_rows_discarded
        )
        assert report.rows_sent == report.rows_delivered + report.rows_lost
        assert run.engine.pending_mrai_rows() == 0
