"""Tests for repro.devtools.lint (the repo-specific AST linter).

Each rule is exercised twice: against a known-bad fixture file under
``tests/fixtures/lint/repro/`` (through the real file/scoping pipeline)
and against inline snippets (unit-level edge cases).  The suite also
pins the gate property the linter exists for: the shipped ``src/repro``
tree lints clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import (
    ALL_CODES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint" / "repro"
SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"


def codes_in(findings) -> set:
    return {f.code for f in findings}


class TestFixtureFiles:
    """The known-bad fixtures fire exactly their intended rule."""

    @pytest.mark.parametrize(
        "fixture, code, count",
        [
            ("bgp/bad_float_eq.py", "RPR001", 3),
            ("bgp/bad_mutation.py", "RPR002", 4),
            ("core/bad_set_iter.py", "RPR003", 3),
            ("bgp/bad_random.py", "RPR004", 5),
            ("bgp/bad_wallclock.py", "RPR005", 3),
            ("routing/bad_graph_copy.py", "RPR006", 3),
            ("routing/bad_shim_import.py", "RPR011", 2),
        ],
    )
    def test_fixture_fires_rule(self, fixture, code, count):
        findings = lint_file(FIXTURES / fixture)
        assert codes_in(findings) == {code}
        assert len(findings) == count

    def test_fixture_relpath_is_package_relative(self):
        findings = lint_file(FIXTURES / "bgp" / "bad_float_eq.py")
        assert findings[0].path == "bgp/bad_float_eq.py"

    def test_suppressed_fixture_is_clean(self):
        assert lint_file(FIXTURES / "bgp" / "suppressed.py") == []

    def test_lint_paths_walks_directories(self):
        findings = lint_paths([FIXTURES])
        assert codes_in(findings) == set(ALL_CODES)

    def test_select_restricts_codes(self):
        findings = lint_paths([FIXTURES], select=["RPR004"])
        assert codes_in(findings) == {"RPR004"}


class TestRule001FloatEquality:
    def test_cost_identifier_comparison(self):
        findings = lint_source("ok = a_cost == b_cost\n", "mechanism/x.py")
        assert codes_in(findings) == {"RPR001"}

    def test_float_literal_comparison(self):
        findings = lint_source("flag = value == 0.0\n", "mechanism/x.py")
        assert codes_in(findings) == {"RPR001"}

    def test_attribute_chain_is_cost_like(self):
        findings = lint_source("flag = entry.cost != other.cost\n", "bgp/x.py")
        assert codes_in(findings) == {"RPR001"}

    def test_non_cost_identifiers_pass(self):
        assert lint_source("flag = left == right\n", "bgp/x.py") == []

    def test_integer_literals_pass(self):
        assert lint_source("flag = hops == 2\n", "bgp/x.py") == []

    def test_ordering_comparisons_pass(self):
        assert lint_source("flag = cost < other_cost\n", "bgp/x.py") == []

    def test_tiebreak_module_is_exempt(self):
        assert lint_source("flag = cost == other_cost\n", "routing/tiebreak.py") == []


class TestRule002Mutation:
    def test_graph_subscript_assignment(self):
        findings = lint_source("graph.node_costs[1] = 2.0\n", "core/x.py")
        assert codes_in(findings) == {"RPR002"}

    def test_path_mutator_call(self):
        findings = lint_source("path.append(3)\n", "bgp/x.py")
        assert codes_in(findings) == {"RPR002"}

    def test_graph_reached_mutator_call(self):
        findings = lint_source("self.graph.adjacency.clear()\n", "bgp/x.py")
        assert codes_in(findings) == {"RPR002"}

    def test_outside_protocol_scope_passes(self):
        assert lint_source("graph.node_costs[1] = 2.0\n", "graphs/x.py") == []

    def test_rebinding_a_graph_name_passes(self):
        # rebinding the *name* is fine; only mutation through the object
        # is flagged.
        assert lint_source("graph = graph.with_cost(1, 2.0)\n", "core/x.py") == []


class TestRule003SetIteration:
    def test_annotated_parameter(self):
        source = "def f(nodes: Set[int]):\n    for n in nodes:\n        pass\n"
        assert codes_in(lint_source(source, "routing/x.py")) == {"RPR003"}

    def test_inferred_local_set(self):
        source = "seen = set()\nfor n in seen:\n    pass\n"
        assert codes_in(lint_source(source, "bgp/x.py")) == {"RPR003"}

    def test_set_operation_expression(self):
        source = "for n in set(a) - set(b):\n    pass\n"
        assert codes_in(lint_source(source, "mechanism/x.py")) == {"RPR003"}

    def test_comprehension_over_set(self):
        source = "xs = [n for n in {1, 2, 3}]\n"
        assert codes_in(lint_source(source, "core/x.py")) == {"RPR003"}

    def test_sorted_iteration_passes(self):
        assert lint_source("for n in sorted(set(xs)):\n    pass\n", "bgp/x.py") == []

    def test_rebound_to_list_passes(self):
        source = "xs = set()\nxs = sorted(xs)\nfor n in xs:\n    pass\n"
        assert lint_source(source, "bgp/x.py") == []

    def test_outside_hot_paths_passes(self):
        assert lint_source("for n in set(xs):\n    pass\n", "graphs/x.py") == []


class TestRule004Randomness:
    def test_global_random_call(self):
        source = "import random\nx = random.random()\n"
        assert codes_in(lint_source(source, "graphs/x.py")) == {"RPR004"}

    def test_unseeded_random_instance(self):
        source = "import random\nrng = random.Random()\n"
        assert codes_in(lint_source(source, "graphs/x.py")) == {"RPR004"}

    def test_seeded_random_instance_passes(self):
        source = "import random\nrng = random.Random(7)\n"
        assert lint_source(source, "graphs/x.py") == []

    def test_from_import_global_function(self):
        source = "from random import shuffle\nshuffle(xs)\n"
        assert codes_in(lint_source(source, "bgp/x.py")) == {"RPR004"}

    def test_numpy_legacy_global(self):
        source = "import numpy as np\nx = np.random.uniform()\n"
        assert codes_in(lint_source(source, "traffic/x.py")) == {"RPR004"}

    def test_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes_in(lint_source(source, "traffic/x.py")) == {"RPR004"}

    def test_seeded_default_rng_passes(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(source, "traffic/x.py") == []

    def test_generators_module_numpy_exempt(self):
        source = "import numpy as np\nx = np.random.uniform()\n"
        assert lint_source(source, "graphs/generators.py") == []

    def test_generators_module_global_random_still_flagged(self):
        source = "import random\nx = random.random()\n"
        assert codes_in(lint_source(source, "graphs/generators.py")) == {"RPR004"}


class TestRule005WallClock:
    def test_time_time_in_protocol_code(self):
        source = "import time\nt = time.time()\n"
        assert codes_in(lint_source(source, "bgp/x.py")) == {"RPR005"}

    def test_time_ns_in_engine_code(self):
        source = "import time\nt = time.time_ns()\n"
        assert codes_in(lint_source(source, "routing/engines/x.py")) == {"RPR005"}

    def test_from_import_alias(self):
        source = "from time import time as now\nt = now()\n"
        assert codes_in(lint_source(source, "obs/x.py")) == {"RPR005"}

    def test_perf_counter_passes(self):
        source = "import time\nt = time.perf_counter()\n"
        assert lint_source(source, "bgp/x.py") == []

    def test_monotonic_passes(self):
        source = "import time\nt = time.monotonic()\n"
        assert lint_source(source, "obs/x.py") == []

    def test_sleep_passes(self):
        source = "import time\ntime.sleep(0.1)\n"
        assert lint_source(source, "core/x.py") == []

    def test_outside_protocol_scope_passes(self):
        source = "import time\nt = time.time()\n"
        assert lint_source(source, "experiments/x.py") == []


class TestRule006GraphCopies:
    def test_without_node_in_routing(self):
        source = "tree = route_tree(graph.without_node(k), j)\n"
        assert codes_in(lint_source(source, "routing/avoiding.py")) == {"RPR006"}

    def test_without_node_in_engine_code(self):
        source = "g = self._graph.without_node(k)\n"
        assert codes_in(lint_source(source, "routing/engines/x.py")) == {"RPR006"}

    def test_masked_view_passes(self):
        source = "tree = route_tree(graph.masked_without_node(k), j)\n"
        assert lint_source(source, "routing/avoiding.py") == []

    def test_outside_routing_passes(self):
        # The copying constructor is the point where a true independent
        # graph is needed (biconnectivity probes, experiments, tests).
        source = "sides = components(current.without_node(cut))\n"
        assert lint_source(source, "graphs/biconnectivity.py") == []

    def test_suppression_applies(self):
        source = "g = graph.without_node(k)  # repro-lint: ok(RPR006)\n"
        assert lint_source(source, "routing/x.py") == []


class TestRule011DeprecatedShims:
    def test_plain_import(self):
        source = "import repro.routing.scipy_engine\n"
        assert codes_in(lint_source(source, "experiments/x.py")) == {"RPR011"}

    def test_from_import(self):
        source = "from repro.routing.scipy_engine import all_pairs_costs\n"
        assert codes_in(lint_source(source, "mechanism/x.py")) == {"RPR011"}

    def test_fires_everywhere_in_tree(self):
        # Unlike the hot-path rules, shim imports are banned tree-wide:
        # there is no legitimate in-tree caller of a deprecation shim.
        source = "import repro.routing.scipy_engine\n"
        assert codes_in(lint_source(source, "graphs/x.py")) == {"RPR011"}

    def test_replacement_module_passes(self):
        source = "from repro.routing.engines.vectorized import all_pairs_costs\n"
        assert lint_source(source, "experiments/x.py") == []

    def test_suppression_applies(self):
        source = (
            "import repro.routing.scipy_engine  # repro-lint: ok(RPR011)\n"
        )
        assert lint_source(source, "experiments/x.py") == []


class TestSuppression:
    def test_bare_pragma_suppresses_all(self):
        source = "x = cost == 0.0  # repro-lint: ok\n"
        assert lint_source(source, "bgp/x.py") == []

    def test_scoped_pragma_suppresses_named_code(self):
        source = "x = cost == 0.0  # repro-lint: ok(RPR001)\n"
        assert lint_source(source, "bgp/x.py") == []

    def test_scoped_pragma_keeps_other_codes(self):
        source = "import random\nx = random.random()  # repro-lint: ok(RPR001)\n"
        assert codes_in(lint_source(source, "bgp/x.py")) == {"RPR004"}


class TestGate:
    def test_shipped_tree_is_clean(self):
        findings = lint_paths([SRC_REPRO])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_main_exit_zero_on_clean_tree(self, capsys):
        assert main([str(SRC_REPRO)]) == 0
        assert capsys.readouterr().out == ""

    def test_main_exit_one_on_findings(self, capsys):
        assert main([str(FIXTURES / "bgp" / "bad_float_eq.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out

    def test_main_select_option(self, capsys):
        exit_code = main(
            ["--select", "RPR002", str(FIXTURES / "bgp" / "bad_float_eq.py")]
        )
        assert exit_code == 0

    def test_main_rejects_missing_path(self, capsys):
        assert main(["does/not/exist.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_main_rejects_unknown_select_code(self, capsys):
        assert main(["--select", "RPR01", str(SRC_REPRO / "types.py")]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_unparsable_file_reported_not_crash(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([bad])
        assert [f.code for f in findings] == ["PARSE"]
        # parse errors always surface, even under --select filtering
        findings = lint_paths([bad], select=["RPR001"])
        assert [f.code for f in findings] == ["PARSE"]

    def test_finding_str_is_grep_friendly(self):
        finding = Finding(path="bgp/x.py", line=3, col=5, code="RPR001", message="msg")
        assert str(finding) == "bgp/x.py:3:5: RPR001 msg"
