"""Tests for the engine registry and the ``engine=`` plumbing."""

from __future__ import annotations

import pytest

from repro.exceptions import EngineError
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import (
    Engine,
    FlatEngine,
    FlatParallelEngine,
    IncrementalEngine,
    ParallelEngine,
    ReferenceEngine,
    ScipyEngine,
    engine_names,
    get_engine,
    register,
    resolve_engine,
)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert engine_names() == (
            "flat",
            "flat-parallel",
            "incremental",
            "parallel",
            "reference",
            "scipy",
        )

    def test_get_engine_instantiates(self):
        assert isinstance(get_engine("reference"), ReferenceEngine)
        assert isinstance(get_engine("scipy"), ScipyEngine)
        assert isinstance(get_engine("flat"), FlatEngine)
        assert isinstance(get_engine("flat-parallel"), FlatParallelEngine)
        assert isinstance(get_engine("parallel"), ParallelEngine)
        assert isinstance(get_engine("incremental"), IncrementalEngine)

    def test_get_engine_forwards_options(self):
        assert get_engine("parallel", workers=2).workers == 2
        assert get_engine("flat-parallel", workers=3).workers == 3

    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError, match="unknown engine 'turbo'"):
            get_engine("turbo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(EngineError, match="already registered"):
            register(ReferenceEngine)

    def test_resolve_accepts_instances(self):
        engine = ParallelEngine(workers=1)
        assert resolve_engine(engine) is engine
        assert isinstance(resolve_engine("scipy"), ScipyEngine)

    def test_capabilities(self):
        assert get_engine("reference").carries_paths
        assert get_engine("parallel").carries_paths
        assert get_engine("incremental").carries_paths
        assert not get_engine("scipy").carries_paths
        assert not get_engine("flat").carries_paths
        assert not get_engine("flat-parallel").carries_paths


class TestCapabilityErrors:
    @pytest.mark.parametrize("name", ["scipy", "flat", "flat-parallel"])
    def test_cost_only_engine_has_no_paths(self, fig1, name):
        with pytest.raises(EngineError, match="cost-only"):
            get_engine(name).all_pairs(fig1)

    @pytest.mark.parametrize("name", ["scipy", "flat", "flat-parallel"])
    def test_all_pairs_lcp_engine_must_carry_paths(self, fig1, name):
        with pytest.raises(EngineError, match="cost-only"):
            all_pairs_lcp(fig1, engine=name)


class TestEngineParameter:
    def test_all_pairs_lcp_dispatches(self, fig1):
        default = all_pairs_lcp(fig1)
        assert all_pairs_lcp(fig1, engine="reference").paths == default.paths
        assert all_pairs_lcp(fig1, engine="parallel").paths == default.paths
        engine = ParallelEngine(workers=1)
        assert all_pairs_lcp(fig1, engine=engine).paths == default.paths

    @pytest.mark.parametrize(
        "name",
        ["reference", "scipy", "flat", "flat-parallel", "parallel", "incremental"],
    )
    def test_compute_price_table_dispatches(self, fig1, name):
        default = compute_price_table(fig1)
        assert compute_price_table(fig1, engine=name).rows == default.rows

    def test_price_table_reuses_routes(self, fig1):
        routes = all_pairs_lcp(fig1)
        table = compute_price_table(fig1, routes=routes, engine="scipy")
        assert table.routes is routes

    def test_unknown_engine_name_raises(self, fig1):
        with pytest.raises(EngineError):
            compute_price_table(fig1, engine="turbo")


class TestCostMatrix:
    def test_reference_cost_matrix_matches_routes(self, fig1):
        routes = all_pairs_lcp(fig1)
        matrix = get_engine("reference").cost_matrix(fig1)
        for (i, j), _path in routes.paths.items():
            assert matrix.cost(i, j) == routes.cost(i, j)

    def test_diagonal_zero(self, fig1):
        matrix = get_engine("scipy").cost_matrix(fig1)
        for node in fig1.nodes:
            assert matrix.cost(node, node) == 0.0


class TestCliSurface:
    def test_engines_subcommand(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in engine_names():
            assert name in out
        assert "cost-only" in out

    def test_run_with_engine_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "E11", "--engine", "scipy"]) == 0
        out = capsys.readouterr().out
        assert "scipy" in out
        assert "PASS" in out

    def test_engine_flag_rejects_unknown(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E11", "--engine", "turbo"])


def test_repr_is_informative():
    assert "parallel" in repr(ParallelEngine(workers=2))
    assert isinstance(ParallelEngine(workers=2), Engine)
