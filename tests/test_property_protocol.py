"""Property-based tests for the distributed protocol: on every randomly
drawn biconnected instance, the BGP-based computation must reproduce the
centralized routes and prices exactly and respect the Theorem 2 bound."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.convergence import convergence_bound
from repro.core.price_node import UpdateMode
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.graphs.asgraph import ASGraph


@st.composite
def protocol_graphs(draw, min_nodes=4, max_nodes=9):
    n = draw(st.integers(min_nodes, max_nodes))
    costs = draw(st.lists(st.integers(0, 6).map(float), min_size=n, max_size=n))
    chord_pool = [(i, j) for i in range(n) for j in range(i + 2, n)
                  if not (i == 0 and j == n - 1)]
    chords = draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=6)) if chord_pool else []
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


@settings(max_examples=20, deadline=None)
@given(protocol_graphs(), st.sampled_from(list(UpdateMode)))
def test_distributed_equals_centralized(graph, mode):
    result = distributed_mechanism(graph, mode=mode)
    verification = verify_against_centralized(result)
    assert verification.ok, verification.mismatches[:3]


@settings(max_examples=20, deadline=None)
@given(protocol_graphs())
def test_convergence_respects_theorem_2(graph):
    bound = convergence_bound(graph)
    result = distributed_mechanism(graph)
    assert result.stages <= bound.stages


@settings(max_examples=12, deadline=None)
@given(protocol_graphs(max_nodes=7), st.integers(0, 10_000))
def test_asynchronous_delivery_order_is_immaterial(graph, seed):
    result = distributed_mechanism(graph, asynchronous=True, seed=seed)
    assert verify_against_centralized(result).ok


@settings(max_examples=15, deadline=None)
@given(protocol_graphs())
def test_price_rows_internally_consistent(graph):
    # each node's advertised prices are exactly its price rows, and the
    # rows cover exactly the transit nodes of its selected paths
    result = distributed_mechanism(graph)
    for node_id, node in result.engine.nodes.items():
        for destination, entry in node.routes.items():
            row = node.price_rows.get(destination, {})
            assert set(row) == set(entry.transit)
