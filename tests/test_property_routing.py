"""Property-based tests (hypothesis) for the routing substrate.

Graphs are drawn as a Hamiltonian cycle plus random chords (always
biconnected) with quantized costs so that ties are frequent -- ties are
where tie-breaking bugs live.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.asgraph import ASGraph
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import avoiding_tree
from repro.routing.dijkstra import route_tree
from repro.routing.engines.vectorized import all_pairs_costs


@st.composite
def biconnected_graphs(draw, min_nodes=4, max_nodes=10):
    n = draw(st.integers(min_nodes, max_nodes))
    # quantized costs in {0, 0.5, ..., 5} -> many exact ties
    costs = draw(
        st.lists(
            st.integers(0, 10).map(lambda v: v / 2.0),
            min_size=n, max_size=n,
        )
    )
    chord_pool = [(i, j) for i in range(n) for j in range(i + 2, n)
                  if not (i == 0 and j == n - 1)]
    chords = draw(st.lists(st.sampled_from(chord_pool), unique=True, max_size=8)) if chord_pool else []
    edges = [(i, (i + 1) % n) for i in range(n)] + list(chords)
    return ASGraph(nodes=list(enumerate(costs)), edges=edges)


@settings(max_examples=40, deadline=None)
@given(biconnected_graphs())
def test_tree_paths_are_real_and_cost_consistent(graph):
    for destination in graph.nodes:
        tree = route_tree(graph, destination)
        for source in tree.sources():
            path = tree.path(source)
            # a real simple path in the graph...
            assert graph.path_cost(path) == pytest.approx(tree.cost(source))
            # ...ending at the destination
            assert path[0] == source and path[-1] == destination


@settings(max_examples=40, deadline=None)
@given(biconnected_graphs())
def test_suffix_consistency_makes_a_tree(graph):
    for destination in graph.nodes:
        tree = route_tree(graph, destination)
        for source in tree.sources():
            path = tree.path(source)
            for index in range(1, len(path) - 1):
                assert tree.path(path[index]) == path[index:]


@settings(max_examples=40, deadline=None)
@given(biconnected_graphs())
def test_lcp_cost_is_minimal_over_tree_alternatives(graph):
    # any neighbor-based alternative route is no better
    routes = all_pairs_lcp(graph)
    for destination in graph.nodes:
        tree = routes.tree(destination)
        for source in tree.sources():
            best = tree.cost(source)
            for neighbor in graph.neighbors(source):
                if neighbor == destination:
                    assert best <= 0.0 + 1e-12
                    continue
                via = tree.cost(neighbor) + graph.cost(neighbor)
                assert best <= via + 1e-9


@settings(max_examples=30, deadline=None)
@given(biconnected_graphs())
def test_avoiding_cost_dominates_lcp_cost(graph):
    routes = all_pairs_lcp(graph)
    for destination in graph.nodes:
        tree = routes.tree(destination)
        for source in tree.sources():
            for k in tree.path(source)[1:-1]:
                detour = avoiding_tree(graph, destination, k)
                if detour.has_route(source):
                    assert detour.cost(source) >= tree.cost(source) - 1e-9
                    assert k not in detour.path(source)


@settings(max_examples=30, deadline=None)
@given(biconnected_graphs())
def test_scipy_engine_matches_reference(graph):
    routes = all_pairs_lcp(graph)
    matrix, index = all_pairs_costs(graph)
    for (source, destination), _path in routes.paths.items():
        assert matrix[index[source], index[destination]] == pytest.approx(
            routes.cost(source, destination)
        )


@settings(max_examples=30, deadline=None)
@given(biconnected_graphs())
def test_cost_symmetry(graph):
    routes = all_pairs_lcp(graph)
    for source in graph.nodes:
        for destination in graph.nodes:
            if source < destination:
                assert routes.cost(source, destination) == pytest.approx(
                    routes.cost(destination, source)
                )
