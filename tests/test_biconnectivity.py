"""Tests for repro.graphs.biconnectivity."""

import random

import pytest

from repro.exceptions import GraphError, NotBiconnectedError
from repro.graphs.asgraph import ASGraph
from repro.graphs.biconnectivity import (
    articulation_points,
    biconnected_components,
    ensure_biconnected,
    is_biconnected,
    make_biconnected,
)


def path_graph(n):
    return ASGraph(
        nodes=[(i, 1.0) for i in range(n)],
        edges=[(i, i + 1) for i in range(n - 1)],
    )


def two_triangles_sharing_a_node():
    """Classic articulation example: node 2 joins two triangles."""
    return ASGraph(
        nodes=[(i, 1.0) for i in range(5)],
        edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
    )


class TestArticulationPoints:
    def test_cycle_has_none(self, square):
        assert articulation_points(square) == set()

    def test_path_interior_nodes(self):
        assert articulation_points(path_graph(5)) == {1, 2, 3}

    def test_shared_node_of_two_triangles(self):
        assert articulation_points(two_triangles_sharing_a_node()) == {2}

    def test_star_center(self):
        star = ASGraph(
            nodes=[(i, 1.0) for i in range(4)],
            edges=[(0, 1), (0, 2), (0, 3)],
        )
        assert articulation_points(star) == {0}

    def test_fig1_has_none(self, fig1):
        assert articulation_points(fig1) == set()

    def test_disconnected_graph(self):
        graph = ASGraph(
            nodes=[(i, 1.0) for i in range(6)],
            edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        )
        assert articulation_points(graph) == set()

    def test_matches_networkx_on_random_graphs(self):
        networkx = pytest.importorskip("networkx")
        rng = random.Random(42)
        for trial in range(20):
            n = rng.randint(4, 15)
            edges = set()
            for _ in range(rng.randint(n - 1, 2 * n)):
                u, v = rng.sample(range(n), 2)
                edges.add((min(u, v), max(u, v)))
            graph = ASGraph(nodes=[(i, 1.0) for i in range(n)], edges=sorted(edges))
            nx_graph = networkx.Graph()
            nx_graph.add_nodes_from(range(n))
            nx_graph.add_edges_from(edges)
            assert articulation_points(graph) == set(
                networkx.articulation_points(nx_graph)
            ), f"trial {trial}"


class TestBiconnectedComponents:
    def test_cycle_is_one_component(self, square):
        components = biconnected_components(square)
        assert len(components) == 1
        assert components[0] == frozenset(square.edges)

    def test_bridge_is_own_component(self):
        graph = ASGraph(
            nodes=[(i, 1.0) for i in range(4)],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3)],
        )
        components = biconnected_components(graph)
        assert frozenset({(2, 3)}) in components
        assert len(components) == 2

    def test_components_partition_edges(self, fig1):
        components = biconnected_components(fig1)
        all_edges = [edge for component in components for edge in component]
        assert sorted(all_edges) == sorted(fig1.edges)


class TestIsBiconnected:
    def test_triangle(self, triangle):
        assert is_biconnected(triangle)

    def test_single_edge_is_not(self):
        assert not is_biconnected(ASGraph(nodes=[(0, 1.0), (1, 1.0)], edges=[(0, 1)]))

    def test_path_is_not(self):
        assert not is_biconnected(path_graph(4))

    def test_disconnected_is_not(self):
        graph = ASGraph(nodes=[(i, 1.0) for i in range(6)],
                        edges=[(0, 1), (1, 2), (0, 2)])
        assert not is_biconnected(graph)

    def test_fig1(self, fig1):
        assert is_biconnected(fig1)


class TestEnsureBiconnected:
    def test_passes_silently(self, triangle):
        ensure_biconnected(triangle)

    def test_raises_with_articulation_points(self):
        with pytest.raises(NotBiconnectedError) as excinfo:
            ensure_biconnected(two_triangles_sharing_a_node())
        assert excinfo.value.articulation_points == (2,)

    def test_raises_on_tiny_graph(self):
        with pytest.raises(NotBiconnectedError, match="fewer than 3"):
            ensure_biconnected(ASGraph(nodes=[(0, 1.0), (1, 1.0)], edges=[(0, 1)]))

    def test_raises_on_disconnected(self):
        graph = ASGraph(nodes=[(i, 1.0) for i in range(4)], edges=[(0, 1)])
        with pytest.raises(NotBiconnectedError, match="disconnected"):
            ensure_biconnected(graph)


class TestMakeBiconnected:
    def test_repairs_a_path(self):
        repaired = make_biconnected(path_graph(6), rng=random.Random(1))
        assert is_biconnected(repaired)

    def test_preserves_existing_edges(self):
        original = path_graph(6)
        repaired = make_biconnected(original, rng=random.Random(1))
        for edge in original.edges:
            assert edge in repaired.edges

    def test_repairs_disconnected(self):
        graph = ASGraph(
            nodes=[(i, 1.0) for i in range(6)],
            edges=[(0, 1), (1, 2), (3, 4), (4, 5)],
        )
        repaired = make_biconnected(graph, rng=random.Random(2))
        assert is_biconnected(repaired)

    def test_noop_when_already_biconnected(self, square):
        repaired = make_biconnected(square, rng=random.Random(0))
        assert repaired == square

    def test_rejects_tiny_graphs(self):
        with pytest.raises(GraphError, match="fewer than 3"):
            make_biconnected(ASGraph(nodes=[(0, 1.0), (1, 1.0)], edges=[(0, 1)]))

    def test_costs_preserved(self):
        graph = ASGraph(
            nodes=[(0, 1.5), (1, 2.5), (2, 3.5), (3, 4.5)],
            edges=[(0, 1), (1, 2), (2, 3)],
        )
        repaired = make_biconnected(graph, rng=random.Random(3))
        for node in graph.nodes:
            assert repaired.cost(node) == graph.cost(node)
