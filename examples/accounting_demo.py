"""Using the prices (Section 6.4): tallies, settlement, and the books.

Runs the distributed mechanism on a mid-size topology, then simulates a
billing period: every source keeps running tallies of owed charges
using *its own* converged price rows (the O(n) counters of Sect. 6.4),
tallies are periodically drained to a settlement function, and the
resulting per-AS revenue is reconciled against the closed-form
Theorem 1 payments.

Run:  python examples/accounting_demo.py
"""

from repro.accounting.settlement import settle
from repro.accounting.tally import PacketTally
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.mechanism.vcg import compute_price_table, payments
from repro.traffic.generators import hotspot_traffic


def main() -> None:
    graph = random_biconnected_graph(14, 0.25, seed=9,
                                     cost_sampler=integer_costs(1, 5))
    result = distributed_mechanism(graph)
    assert verify_against_centralized(result).ok
    print(f"Distributed mechanism converged on {graph.num_nodes} ASes "
          f"in {result.stages} stages")

    traffic = hotspot_traffic(graph, hotspots=2, seed=9,
                              hot_intensity=50.0, background=1.0)
    print(f"Traffic: {traffic.total_packets:,.0f} packets, "
          f"{len(traffic)} active pairs, 2 hotspot destinations")

    # Billing period: sources count charges with their own price rows.
    tallies = {}
    for (source, destination), packets in traffic.items():
        tally = tallies.setdefault(source, PacketTally(source))
        row = result.node(source).price_rows.get(destination, {})
        tally.record_packets(destination, row, packets)

    report = settle(tallies.values())
    print(f"\nSettled {report.sources_settled} sources; "
          f"total transit revenue {report.total():,.1f}")

    reference = payments(compute_price_table(graph), dict(traffic.items()))
    print(f"\n{'AS':>4} {'degree':>7} {'cost':>5} {'settled':>12} {'Theorem 1':>12}")
    worst = 0.0
    for node in graph.nodes:
        settled = report.revenue.get(node, 0.0)
        expected = reference[node]
        worst = max(worst, abs(settled - expected))
        if settled or expected:
            print(f"{node:>4} {graph.degree(node):>7} {graph.cost(node):>5g} "
                  f"{settled:>12,.2f} {expected:>12,.2f}")
    print(f"\nLargest per-AS discrepancy: {worst:.2e} "
          "(float summation order only)")
    assert worst < 1e-6


if __name__ == "__main__":
    main()
