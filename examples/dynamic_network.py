"""Network dynamics: link failure, recovery, and a cost re-declaration.

Drives a running FPSS network through the Section 6 restart model:
each event restarts the price convergence on the mutated topology;
after every epoch the script verifies the prices against the
centralized mechanism for the *current* graph and compares the
reconvergence stages to the new instance's max(d, d') bound.  A
routes-only BGP network is run alongside to show warm incremental
reconvergence (no restart needed for routing).

Run:  python examples/dynamic_network.py
"""

from repro.bgp.engine import SynchronousEngine
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.core.dynamics import apply_event_to_graph, dynamic_scenario
from repro.graphs.biconnectivity import is_biconnected
from repro.graphs.generators import integer_costs, isp_like_graph


def main() -> None:
    graph = isp_like_graph(18, seed=5, cost_sampler=integer_costs(1, 6))
    print(f"ISP-like topology: {graph.num_nodes} ASes, {graph.num_edges} links")

    # pick a link whose loss keeps the mechanism well-defined
    edge = next(
        (u, v) for u, v in graph.edges
        if is_biconnected(graph.without_edge(u, v))
    )
    busiest = max(graph.nodes, key=graph.degree)
    events = [
        LinkFailure(*edge),
        LinkRecovery(*edge),
        CostChange(busiest, graph.cost(busiest) * 3.0),
    ]

    print("\nScripted events:")
    for event in events:
        print(f"  - {event.describe()}")

    run = dynamic_scenario(graph, events)
    print(f"\n{'epoch':<32} {'stages':>7} {'bound':>6} {'prices':>7}")
    for epoch in run.epochs:
        print(f"{epoch.description:<32} {epoch.stages:>7} "
              f"{epoch.bound.stages:>6} {'ok' if epoch.ok else 'WRONG':>7}")
    assert run.all_ok and run.all_within_bound
    print("\nEvery epoch reconverged to the exact centralized prices within "
          "the mutated instance's max(d, d').")

    # Plain BGP (routes only) reconverges warm -- no restart:
    engine = SynchronousEngine(graph)
    engine.initialize()
    engine.run()
    current = graph
    print("\nPlain BGP (routes only, warm reconvergence):")
    for event in events:
        current = apply_event_to_graph(current, event)
        event.apply(engine)
        report = engine.run()
        print(f"  after '{event.describe()}': {report.stages} stages")


if __name__ == "__main__":
    main()
