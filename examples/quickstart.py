"""Quickstart: the paper's Figure 1 example, end to end.

Builds the six-AS example graph from Section 4, computes the VCG
prices with the centralized Theorem 1 mechanism, runs the BGP-based
distributed protocol of Section 6, and shows they agree -- including
the famous numbers: D is paid 3 per X->Z packet, B is paid 4, and D is
paid 9 per Y->Z packet despite a cost of 1.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_price_table,
    convergence_bound,
    fig1_graph,
    distributed_mechanism,
    verify_against_centralized,
)
from repro.graphs.generators import FIG1_LABELS


def main() -> None:
    graph = fig1_graph()
    label = FIG1_LABELS
    names = {value: key for key, value in label.items()}

    print("The Figure 1 AS graph:")
    for node in graph.nodes:
        neighbors = ", ".join(names[n] for n in graph.neighbors(node))
        print(f"  AS {names[node]}: cost {graph.cost(node):g}, links to {neighbors}")

    # --- centralized mechanism (Theorem 1) -------------------------------
    table = compute_price_table(graph)
    X, B, D, Y, Z = (label[name] for name in "XBDYZ")

    def show_pair(source, destination):
        path = table.routes.path(source, destination)
        pretty = "-".join(names[node] for node in path)
        print(f"\n  LCP {names[source]} -> {names[destination]}: {pretty} "
              f"(transit cost {table.routes.cost(source, destination):g})")
        for k, price in sorted(table.row(source, destination).items()):
            print(f"    transit AS {names[k]} (cost {graph.cost(k):g}) "
                  f"is paid {price:g} per packet")

    print("\nCentralized VCG prices:")
    show_pair(X, Z)
    show_pair(Y, Z)

    # --- distributed protocol (Section 6) --------------------------------
    bound = convergence_bound(graph)
    result = distributed_mechanism(graph)
    print(f"\nDistributed protocol converged in {result.stages} stages "
          f"(Theorem 2 bound: max(d, d') = max({bound.d}, {bound.d_prime}) "
          f"= {bound.stages})")

    verification = verify_against_centralized(result, table=table)
    print(f"Distributed vs centralized: {verification.pairs_checked} pairs, "
          f"{verification.prices_checked} prices, "
          f"{len(verification.mismatches)} mismatches")
    assert verification.ok

    print(f"\nAs in the paper: p^D_XZ = {result.price(D, X, Z):g}, "
          f"p^B_XZ = {result.price(B, X, Z):g}, "
          f"p^D_YZ = {result.price(D, Y, Z):g} (D's cost is only "
          f"{graph.cost(D):g} -- the Sect. 7 overcharging).")


if __name__ == "__main__":
    main()
