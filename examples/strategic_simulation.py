"""Strategic play: why lying about transit costs does not pay.

Pits lying strategies (the footnote-1 temptations: understate to
attract traffic, overstate to inflate the price) against the VCG
mechanism on a random biconnected AS graph.  For every liar the script
reports the utility actually earned and the utility a truthful
declaration would have earned against the same opponents -- the regret
is always >= 0, and a numeric best-response search lands back on the
truth.

Run:  python examples/strategic_simulation.py
"""

from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.strategic.agents import OverstateAgent, RandomLiar, UnderstateAgent
from repro.strategic.bestresponse import best_response
from repro.strategic.game import play_declaration_game
from repro.traffic.generators import uniform_traffic


def main() -> None:
    graph = random_biconnected_graph(12, 0.3, seed=21,
                                     cost_sampler=integer_costs(1, 6))
    traffic = uniform_traffic(graph, intensity=1.0)
    print(f"AS graph: {graph.num_nodes} nodes, {graph.num_edges} links; "
          "uniform all-pairs traffic\n")

    strategies = {
        graph.nodes[0]: OverstateAgent(factor=2.0),
        graph.nodes[1]: OverstateAgent(factor=1.2, offset=1.0),
        graph.nodes[2]: UnderstateAgent(factor=0.5),
        graph.nodes[3]: UnderstateAgent(factor=0.0),
        graph.nodes[4]: RandomLiar(spread=3.0),
    }
    outcome = play_declaration_game(graph, strategies, traffic, seed=13)

    print(f"{'AS':>4} {'strategy':<12} {'true':>5} {'declared':>9} "
          f"{'utility':>9} {'if truthful':>12} {'regret':>8}")
    for node, strategy in sorted(strategies.items()):
        print(f"{node:>4} {strategy.name:<12} {graph.cost(node):>5g} "
              f"{outcome.declared[node]:>9.2f} "
              f"{outcome.utilities[node]:>9.2f} "
              f"{outcome.truthful_counterfactuals[node]:>12.2f} "
              f"{outcome.regret(node):>8.2f}")

    assert not outcome.any_liar_beat_truth
    print("\nNo liar beat its truthful counterfactual (regret >= 0 everywhere):")
    print("lying is weakly dominated, exactly as Theorem 1 promises.\n")

    node = graph.nodes[0]
    search = best_response(graph, node, traffic, grid_points=12, random_probes=8)
    print(f"Best-response search for AS {node} (true cost "
          f"{search.true_cost:g}, {search.probes} probes): best declaration "
          f"{search.best_declaration:g} with utility {search.best_utility:.2f} "
          f"vs truthful {search.truthful_utility:.2f}")
    assert search.truth_is_best
    print("The search cannot beat the truth either.")


if __name__ == "__main__":
    main()
