"""An Internet-scale-shaped scenario: prices on an ISP-like topology.

Synthesizes a two-tier AS topology (dense provider core, multihomed
stubs), runs the full FPSS mechanism, and reports the quantities a
network economist would ask about:

* convergence stages vs the Theorem 2 bound (and how close d' is to d
  on Internet-like graphs, as Section 6.2 remarks);
* per-node revenue under a gravity traffic matrix;
* overpayment ratios (Section 7) for this family.

Run:  python examples/internet_like.py [n]
"""

import sys

from repro import compute_price_table, convergence_bound, distributed_mechanism
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.mechanism.overpayment import overpayment_stats
from repro.mechanism.vcg import payments
from repro.traffic.generators import gravity_traffic


def main(n: int = 24) -> None:
    graph = isp_like_graph(n, seed=7, cost_sampler=integer_costs(1, 6))
    print(f"ISP-like topology: {graph.num_nodes} ASes, {graph.num_edges} links")

    bound = convergence_bound(graph)
    result = distributed_mechanism(graph)
    print(f"\nBGP-based price computation converged in {result.stages} stages; "
          f"d = {bound.d}, d' = {bound.d_prime}, bound max(d, d') = {bound.stages}")
    print("(on Internet-like graphs d' stays close to d, as Sect. 6.2 expects)")

    table = compute_price_table(graph)
    traffic = gravity_traffic(graph, seed=7, total=10_000.0)
    revenue = payments(table, dict(traffic.items()))

    print("\nTop five transit earners under a gravity traffic matrix:")
    top = sorted(revenue.items(), key=lambda item: -item[1])[:5]
    for node, paid in top:
        print(f"  AS {node:3d}: degree {graph.degree(node)}, "
              f"cost {graph.cost(node):g}, revenue {paid:,.1f}")

    idle = [node for node, paid in revenue.items() if paid == 0.0]
    print(f"\nASes earning nothing (no transit traffic): {len(idle)} of {n} "
          "-- exactly the nodes off every used LCP, as Theorem 1 requires")

    stats = overpayment_stats(table, traffic=dict(traffic.items()))
    print(f"\nOvercharging (Sect. 7): mean per-pair ratio {stats.mean_ratio:.2f}, "
          f"max {stats.max_ratio:.2f}, aggregate {stats.aggregate_ratio:.2f}")
    print("Dense Internet-like graphs overcharge mildly; try a ring to see it blow up.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
