# Development entry points.  `make check` is the full gate CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test bench sanitize-test

check:
	$(PYTHON) -m repro.devtools.check

lint:
	$(PYTHON) -m repro.devtools.lint

test:
	$(PYTHON) -m pytest -x -q

# the whole suite doubles as a sanitizer stress test: every protocol
# run is invariant-checked end to end
sanitize-test:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
