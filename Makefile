# Development entry points.  `make check` is the full gate CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint analyze test test-deprecations bench bench-protocol bench-dynamics bench-analyzer bench-flat bench-flat-parallel bench-timed sanitize-test test-engines test-timed trace-smoke

check:
	$(PYTHON) -m repro.devtools.check

lint:
	$(PYTHON) -m repro.devtools.lint

# interprocedural determinism/contract analyzer (RPR007-RPR010):
# fails on any finding not grandfathered by flow_baseline.json, and on
# stale `# repro-lint: ok` suppressions
analyze:
	$(PYTHON) -m repro.devtools.flow src/repro
	$(PYTHON) -m repro.devtools.flow src/repro --check-suppressions

test:
	$(PYTHON) -m pytest -x -q

# the suite with DeprecationWarning promoted to an error: internal code
# (and every test except the wrappers' own pytest.deprecated_call
# blocks) must not touch the shims it deprecates
test-deprecations:
	$(PYTHON) -m pytest -x -q -W error::DeprecationWarning

# the whole suite doubles as a sanitizer stress test: every protocol
# run is invariant-checked end to end
sanitize-test:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

# cross-engine differential harness: every registered engine must
# agree with the reference (golden fixtures, worker/shard invariance,
# zero-cost exactness), with the runtime sanitizer enabled
test-engines:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q \
		tests/test_engine_differential.py \
		tests/test_golden_engines.py \
		tests/test_engine_parallel.py \
		tests/test_engine_registry.py

# timed-substrate differential suite: async bit-identity, centralized
# parity under every delay/MRAI setting, determinism, fault sequences,
# MRAI accounting, and the golden JSONL trace (CI=1 widens Hypothesis)
test-timed:
	$(PYTHON) -m pytest -x -q \
		tests/test_timed_protocol.py \
		tests/test_timed_golden_trace.py

# observability smoke test: record one experiment as a JSONL trace,
# schema-validate it, and summarize the paper's complexity measures
trace-smoke:
	$(PYTHON) -m repro.cli run E1 --trace /tmp/repro-trace-smoke.jsonl
	$(PYTHON) -m repro.cli trace validate /tmp/repro-trace-smoke.jsonl
	$(PYTHON) -m repro.cli trace summarize /tmp/repro-trace-smoke.jsonl

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# protocol transport benchmark: full-table vs delta substrate; writes
# BENCH_protocol.json at the repo root (quick sizes; drop --quick for
# the full sweep up to n = 200)
bench-protocol:
	$(PYTHON) benchmarks/bench_protocol_scaling.py --quick --out BENCH_protocol.json

# dynamics benchmark: incremental warm-start engine vs from-scratch
# reference across a scripted event sequence; writes BENCH_dynamics.json
# at the repo root and exits non-zero unless every epoch is bit-identical
# to the cold reference (quick: 4 events at n = 200; drop --quick for 12)
bench-dynamics:
	$(PYTHON) benchmarks/bench_dynamics_incremental.py --quick --out BENCH_dynamics.json

# timed-substrate benchmark: delay/MRAI grid vs the synchronous Sect. 5
# baseline; writes BENCH_timed.json at the repo root and exits non-zero
# unless every configuration converges to the centralized model
bench-timed:
	$(PYTHON) benchmarks/bench_timed_protocol.py --quick --out BENCH_timed.json

# flat-sweep benchmark: the batched k-avoiding price core; writes
# BENCH_flat.json at the repo root and exits non-zero unless the flat
# engine matches the reference/legacy tables, beats the legacy
# vectorized sweep by >= 5x at n = 500, and prices the n = 1000
# ISP-like preset within its demand-derived memory bound
bench-flat:
	$(PYTHON) benchmarks/bench_flat_sweep.py --out BENCH_flat.json

# sharded flat-sweep gate: on the isp-like-2000 preset the 4-worker
# array-native sweep must beat the single-process dict-materializing
# flat path by >= 2x with bit-identical prices across worker counts;
# merges the speedup-vs-workers rows into BENCH_flat.json without
# discarding the committed full-preset records
bench-flat-parallel:
	$(PYTHON) benchmarks/bench_flat_sweep.py --phases parallel --out BENCH_flat.json

# analyzer wall-clock benchmark: full-tree analysis must stay under
# ~5 s so the contract gate remains a per-commit check; writes
# BENCH_analyzer.json at the repo root
bench-analyzer:
	$(PYTHON) benchmarks/bench_analyzer.py --out BENCH_analyzer.json
