"""Protocol-scaling benchmark: full-table vs delta transport (BENCH_protocol.json).

Measures the BGP substrate's cost-to-convergence as the instance grows,
under both transports:

* ``full``  -- the literal Sect. 5 model: whole routing tables on every
  transmission;
* ``delta`` -- the incremental substrate: per-destination diff
  advertisements plus dirty-set scheduling.

For each (family, workload, n) the script runs both transports, checks
that every model-level measure (stages, messages, entries) is
identical, and records the transport-level difference: rows actually
transmitted and wall-clock.  Output goes to ``BENCH_protocol.json``
(``make bench-protocol`` writes it at the repo root), so the perf
trajectory of the substrate is tracked in-repo.

Run directly::

    python benchmarks/bench_protocol_scaling.py --quick --out BENCH_protocol.json

or via pytest (``make bench``), where the quick configuration doubles
as a regression assertion on the delta transport's savings.

This module must stay importable with the baseline toolchain only (in
particular: no scipy) -- `repro.devtools.check` enforces that for the
whole benchmarks/ directory.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bgp.engine import SynchronousEngine
from repro.bgp.policy import SelectionPolicy
from repro.core.price_node import PriceComputingNode
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import grid_graph, integer_costs, isp_like_graph
from repro.types import Cost, NodeId

#: (rows, cols) grid shapes: high-diameter instances where full-table
#: rebroadcast is at its worst.  n = rows * cols.
_GRID_SHAPES: Dict[int, Tuple[int, int]] = {
    16: (4, 4),
    36: (6, 6),
    64: (8, 8),
    100: (10, 10),
    144: (12, 12),
    200: (10, 20),
}

QUICK_SIZES: Tuple[int, ...] = (16, 36, 64)
FULL_SIZES: Tuple[int, ...] = (16, 36, 64, 100, 144, 200)

WORKLOADS: Tuple[str, ...] = ("plain", "price")
FAMILIES: Tuple[str, ...] = ("isp", "grid")


def _price_factory(node_id: NodeId, cost: Cost, policy: SelectionPolicy):
    return PriceComputingNode(node_id, cost, policy)


def _make_graph(family: str, n: int, seed: int) -> ASGraph:
    if family == "grid":
        rows, cols = _GRID_SHAPES[n]
        return grid_graph(rows, cols, seed=seed, cost_sampler=integer_costs(1, 6))
    return isp_like_graph(n, seed=seed, cost_sampler=integer_costs(1, 6))


def _run_once(graph: ASGraph, workload: str, incremental: bool) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {"incremental": incremental}
    if workload == "price":
        kwargs["node_factory"] = _price_factory
    engine = SynchronousEngine(graph, **kwargs)
    engine.initialize()
    started = time.perf_counter()
    report = engine.run()
    elapsed = time.perf_counter() - started
    return {
        "transport": "delta" if incremental else "full",
        "stages": report.stages,
        "messages": report.total_messages,
        "entries_sent": report.total_entries_sent,
        "rows_sent": report.total_rows_sent,
        "rows_suppressed": report.total_rows_suppressed,
        "wall_s": round(elapsed, 6),
    }


def run_config(family: str, workload: str, n: int, seed: int = 0) -> Dict[str, Any]:
    """Run both transports on one configuration; returns the record."""
    graph = _make_graph(family, n, seed)
    full = _run_once(graph, workload, incremental=False)
    delta = _run_once(graph, workload, incremental=True)
    model_identical = all(
        full[key] == delta[key] for key in ("stages", "messages", "entries_sent")
    )
    rows_ratio = (
        full["rows_sent"] / delta["rows_sent"] if delta["rows_sent"] else float("inf")
    )
    return {
        "family": family,
        "workload": workload,
        "n": n,
        "seed": seed,
        "full": full,
        "delta": delta,
        "model_identical": model_identical,
        "rows_ratio": round(rows_ratio, 3),
        "speedup": round(full["wall_s"] / delta["wall_s"], 3)
        if delta["wall_s"]
        else float("inf"),
    }


def run_suite(quick: bool = True, seed: int = 0) -> Dict[str, Any]:
    """Run the whole grid of configurations; returns the JSON document."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    results: List[Dict[str, Any]] = []
    for family in FAMILIES:
        for workload in WORKLOADS:
            for n in sizes:
                if workload == "price" and n > 100:
                    # All-pairs price rows at n > 100 make the full
                    # transport minutes-slow; the plain workload already
                    # covers those sizes.
                    continue
                results.append(run_config(family, workload, n, seed=seed))
    return {
        "benchmark": "protocol_scaling",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
        "all_model_identical": all(r["model_identical"] for r in results),
        "min_rows_ratio": min((r["rows_ratio"] for r in results), default=0.0),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small sizes only {QUICK_SIZES} (CI mode; full: {FULL_SIZES})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_protocol.json",
        help="output path (default: BENCH_protocol.json)",
    )
    args = parser.parse_args(argv)
    document = run_suite(quick=args.quick, seed=args.seed)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    for record in document["results"]:
        print(
            "%(family)s/%(workload)s n=%(n)d: rows %(ratio).1fx, "
            "wall %(fw).2fs -> %(dw).2fs, model identical: %(ident)s"
            % {
                "family": record["family"],
                "workload": record["workload"],
                "n": record["n"],
                "ratio": record["rows_ratio"],
                "fw": record["full"]["wall_s"],
                "dw": record["delta"]["wall_s"],
                "ident": record["model_identical"],
            }
        )
    print(f"wrote {args.out}")
    return 0 if document["all_model_identical"] else 1


# ----------------------------------------------------------------------
# pytest integration: the quick configuration as a tracked benchmark.
# ----------------------------------------------------------------------
def test_bench_protocol_delta_transport(benchmark):
    graph = _make_graph("grid", 64, seed=0)

    def run_delta():
        return _run_once(graph, "plain", incremental=True)

    delta = benchmark(run_delta)
    full = _run_once(graph, "plain", incremental=False)
    for key in ("stages", "messages", "entries_sent"):
        assert full[key] == delta[key]
    assert full["rows_sent"] >= 2 * delta["rows_sent"]
    assert delta["rows_suppressed"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
