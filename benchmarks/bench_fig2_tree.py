"""E2: regenerate the Figure 2 route tree T(Z)."""

from repro.graphs.generators import FIG1_LABELS
from repro.routing.dijkstra import route_tree


def test_bench_fig2_route_tree(benchmark, fig1):
    label = FIG1_LABELS
    tree = benchmark(route_tree, fig1, label["Z"])
    assert tree.parent(label["X"]) == label["B"]
    assert tree.parent(label["B"]) == label["D"]
    assert tree.parent(label["Y"]) == label["D"]
    assert tree.parent(label["D"]) == label["Z"]
    assert tree.parent(label["A"]) == label["Z"]
