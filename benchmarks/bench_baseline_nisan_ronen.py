"""E8: the prior-mechanism baselines.

Benchmarks the Nisan-Ronen single-pair mechanism and both
replacement-path engines (cut scan vs per-edge Dijkstra), asserting the
formula equivalences; the relative timings exhibit the batching win
Hershberger-Suri is about.
"""

import math
import random

import pytest

from repro.baselines.hershberger_suri import (
    replacement_path_costs,
    replacement_path_costs_naive,
)
from repro.baselines.nisan_ronen import EdgeWeightedGraph, nisan_ronen_mechanism


def _edge_graph(n=24, extra=20, seed=3):
    rng = random.Random(seed)
    costs = {}
    for i in range(n):
        u, v = i, (i + 1) % n
        costs[(min(u, v), max(u, v))] = rng.uniform(1.0, 10.0)
    while extra:
        u, v = rng.sample(range(n), 2)
        key = (min(u, v), max(u, v))
        if key not in costs:
            costs[key] = rng.uniform(1.0, 10.0)
            extra -= 1
    return EdgeWeightedGraph(costs)


GRAPH = _edge_graph()
SOURCE, TARGET = 0, 12


def test_bench_nisan_ronen_mechanism(benchmark):
    result = benchmark(nisan_ronen_mechanism, GRAPH, SOURCE, TARGET)
    base = result.path_cost
    for (u, v), payment in result.payments.items():
        marginal = GRAPH.cost(u, v) + GRAPH.without_edge(u, v).distance(SOURCE, TARGET) - base
        assert payment == pytest.approx(marginal)
    assert result.total_payment >= result.path_cost - 1e-9


def test_bench_replacement_paths_cut_scan(benchmark):
    fast = benchmark(replacement_path_costs, GRAPH, SOURCE, TARGET)
    naive = replacement_path_costs_naive(GRAPH, SOURCE, TARGET)
    for edge, value in naive.items():
        if math.isinf(value):
            assert math.isinf(fast[edge])
        else:
            assert fast[edge] == pytest.approx(value)


def test_bench_replacement_paths_naive(benchmark):
    naive = benchmark(replacement_path_costs_naive, GRAPH, SOURCE, TARGET)
    assert naive
