"""E10: reconvergence under dynamics (failure / recovery / re-price)."""

from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.core.dynamics import dynamic_scenario
from repro.graphs.biconnectivity import is_biconnected


def _script(graph):
    events = []
    for u, v in graph.edges:
        if is_biconnected(graph.without_edge(u, v)):
            events.append(LinkFailure(u, v))
            events.append(LinkRecovery(u, v))
            break
    busiest = max(graph.nodes, key=graph.degree)
    events.append(CostChange(busiest, graph.cost(busiest) * 2.0 + 1.0))
    return events


def test_bench_dynamic_scenario(benchmark, isp16):
    events = _script(isp16)
    run = benchmark(dynamic_scenario, isp16, events)
    assert run.all_ok
    assert run.all_within_bound
