"""E13: the per-neighbor cost extension, centralized and distributed."""

import random

import pytest

from repro.extensions.edgecost import (
    EdgeCostGraph,
    compute_edgecost_price_table,
    run_edgecost_mechanism,
    verify_edgecost_result,
)
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.mechanism.vcg import compute_price_table


def _instance(n=14, seed=0):
    base = isp_like_graph(n, seed=seed, cost_sampler=integer_costs(1, 6))
    rng = random.Random(seed)
    forwarding = {
        node: {v: float(rng.randint(0, 6)) for v in base.neighbors(node)}
        for node in base.nodes
    }
    return base, EdgeCostGraph(edges=base.edges, forwarding_costs=forwarding)


def test_bench_edgecost_centralized(benchmark):
    _base, instance = _instance()
    table = benchmark(compute_edgecost_price_table, instance)
    for destination in instance.nodes:
        for source in instance.nodes:
            if source != destination:
                assert table.path(source, destination)[0] == source


def test_bench_edgecost_distributed(benchmark):
    _base, instance = _instance()
    result = benchmark(run_edgecost_mechanism, instance)
    assert verify_edgecost_result(result).ok


def test_bench_edgecost_uniform_embedding(benchmark):
    base, _ = _instance()
    uniform = EdgeCostGraph.from_uniform(base)
    ext = benchmark(compute_edgecost_price_table, uniform)
    reference = compute_price_table(base)
    for pair, row in reference.items():
        for k, price in row.items():
            assert ext.price(k, *pair) == pytest.approx(price)
