"""E16: valley-free policy routing on the ISP-like family."""

from repro.graphs.generators import integer_costs, isp_like_graph
from repro.policy import annotate_isp_hierarchy, is_valley_free, run_policy_routing


def test_bench_policy_routing(benchmark):
    graph = isp_like_graph(20, seed=0, cost_sampler=integer_costs(1, 6))
    relationships = annotate_isp_hierarchy(graph, core_size=4)

    result = benchmark(run_policy_routing, graph, relationships)
    for path in result.routes_by_pair().values():
        assert is_valley_free(path, relationships)
