"""E1: regenerate the Figure 1 worked example (centralized mechanism).

Benchmarks the all-pairs Theorem 1 price table on the paper's six-AS
graph and asserts every worked number digit for digit.
"""

import pytest

from repro.graphs.generators import FIG1_LABELS
from repro.mechanism.vcg import compute_price_table


def test_bench_fig1_price_table(benchmark, fig1):
    table = benchmark(compute_price_table, fig1)
    label = FIG1_LABELS
    X, B, D, Y, Z = (label[name] for name in "XBDYZ")
    assert table.routes.path(X, Z) == (X, B, D, Z)
    assert table.routes.cost(X, Z) == 3.0
    assert table.price(D, X, Z) == 3.0
    assert table.price(B, X, Z) == 4.0
    assert table.routes.cost(Y, Z) == 1.0
    assert table.price(D, Y, Z) == 9.0
    assert table.total_price(X, Z) == 7.0
