"""Overhead of the runtime sanitizer (repro.devtools.sanitize).

The sanitizer's contract is *zero-cost when off*: the hot paths pay one
``enabled()`` predicate call per guarded site and nothing else.  The
off-mode benchmarks here are directly comparable to the uninstrumented
engine baselines in ``bench_scaling_engines.py``; the on-mode benchmarks
document what full checking costs (it recomputes Dijkstras per check, so
it is intentionally expensive -- a debugging mode, not a shipping mode).
"""

import pytest

from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.devtools import sanitize
from repro.mechanism.vcg import compute_price_table


@pytest.fixture(autouse=True)
def _restore_sanitizer_state():
    previous = sanitize.enabled()
    yield
    if previous:
        sanitize.enable()
    else:
        sanitize.disable()


def test_bench_distributed_sanitizer_off(benchmark, isp16):
    sanitize.disable()
    checks_before = sanitize.checks_run()
    result = benchmark(distributed_mechanism, isp16)
    assert verify_against_centralized(result).ok
    assert sanitize.checks_run() == checks_before  # off means *zero* checks


def test_bench_distributed_sanitizer_on(benchmark, isp16):
    sanitize.enable()
    result = benchmark(distributed_mechanism, isp16)
    assert verify_against_centralized(result).ok
    assert sanitize.checks_run() > 0


def test_bench_centralized_sanitizer_off(benchmark, isp16):
    sanitize.disable()
    table = benchmark(compute_price_table, isp16)
    assert table.rows


def test_bench_centralized_sanitizer_on(benchmark, isp16):
    sanitize.enable()
    table = benchmark(compute_price_table, isp16)
    assert table.rows
