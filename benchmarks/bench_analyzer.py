"""Analyzer benchmark: full-tree wall-clock for repro.devtools.flow (BENCH_analyzer.json).

The interprocedural contract analyzer is wired into the per-commit gate
(``devtools.check``'s ``flow`` step and ``make analyze``), so its cost
is paid on every commit: it must stay a static-check budget, not a test
budget.  This benchmark runs the whole-program analysis over
``src/repro`` several times, records per-run wall-clock plus the
program size it covered (modules, functions, findings), and exits
non-zero if the slowest run breaches the gate budget (default 5 s).

Output goes to ``BENCH_analyzer.json`` (``make bench-analyzer`` writes
it at the repo root).  Run directly::

    python benchmarks/bench_analyzer.py --out BENCH_analyzer.json

or via pytest (``make bench``), where one timed run doubles as a
regression assertion on the budget.

This module must stay importable with the baseline toolchain only (in
particular: no scipy) -- `repro.devtools.check` enforces that for the
whole benchmarks/ directory.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.devtools.flow import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"

#: Gate budget in seconds: the analyzer must finish a full-tree pass
#: well within this for the per-commit gate to stay cheap.
DEFAULT_BUDGET_S = 5.0
DEFAULT_REPEATS = 3


def run_benchmark(repeats: int = DEFAULT_REPEATS) -> Dict[str, Any]:
    timings: List[float] = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = analyze_paths([SRC_REPRO])
        timings.append(time.perf_counter() - started)
    assert result is not None
    return {
        "target": str(SRC_REPRO.relative_to(REPO_ROOT)),
        "repeats": repeats,
        "wall_clock_s": [round(t, 4) for t in timings],
        "best_s": round(min(timings), 4),
        "worst_s": round(max(timings), 4),
        "modules": result.modules,
        "functions": result.functions,
        "findings": len(result.findings),
        "counts": result.counts(),
        "python": platform.python_version(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the benchmark record as JSON",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, help="timed runs"
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_S,
        help="wall-clock gate in seconds (worst run must stay under it)",
    )
    args = parser.parse_args(argv)
    record = run_benchmark(repeats=args.repeats)
    record["budget_s"] = args.budget
    record["within_budget"] = record["worst_s"] < args.budget
    print(
        f"flow analyzer: {record['modules']} modules / "
        f"{record['functions']} functions, best {record['best_s']:.3f} s, "
        f"worst {record['worst_s']:.3f} s (budget {args.budget:.1f} s)"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if not record["within_budget"]:
        print(
            f"FAIL: worst run {record['worst_s']:.3f} s exceeds the "
            f"{args.budget:.1f} s gate budget"
        )
        return 1
    return 0


def test_analyzer_within_budget() -> None:
    """Pytest hook (``make bench``): one timed run under the gate."""
    record = run_benchmark(repeats=1)
    assert record["worst_s"] < DEFAULT_BUDGET_S, record


if __name__ == "__main__":
    raise SystemExit(main())
