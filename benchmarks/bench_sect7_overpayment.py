"""E7: the Section 7 overcharging numbers.

Benchmarks the overpayment statistics and asserts the paper's extreme
example (Y->Z pays 9x) plus the ratio >= 1 invariant and the
sparse-beats-dense shape.
"""

import math

import pytest

from repro.graphs.generators import FIG1_LABELS
from repro.mechanism.overpayment import overpayment_ratio, overpayment_stats
from repro.mechanism.vcg import compute_price_table


def test_bench_overpayment_fig1(benchmark, fig1):
    table = compute_price_table(fig1)
    stats = benchmark(overpayment_stats, table)
    label = FIG1_LABELS
    assert overpayment_ratio(table, label["Y"], label["Z"]) == pytest.approx(9.0)
    assert stats.max_ratio == pytest.approx(9.0)
    assert stats.mean_ratio >= 1.0


def test_bench_overpayment_families(benchmark, ring12, isp16):
    def compute():
        ring_stats = overpayment_stats(compute_price_table(ring12))
        isp_stats = overpayment_stats(compute_price_table(isp16))
        return ring_stats, isp_stats

    ring_stats, isp_stats = benchmark(compute)
    assert ring_stats.mean_ratio >= 1.0
    assert isp_stats.mean_ratio >= 1.0
    # sparse rings overcharge more than dense Internet-like graphs
    assert ring_stats.mean_ratio >= isp_stats.mean_ratio
