"""E12: tallies + settlement against the Theorem 1 payments."""

import pytest

from repro.accounting.settlement import run_accounting
from repro.mechanism.vcg import compute_price_table
from repro.traffic.generators import gravity_traffic


def test_bench_accounting_identity(benchmark, isp16):
    table = compute_price_table(isp16)
    traffic = gravity_traffic(isp16, seed=0, total=1000.0)

    report, reference = benchmark(run_accounting, table, traffic)
    for node in isp16.nodes:
        assert report.revenue.get(node, 0.0) == pytest.approx(
            reference.get(node, 0.0), rel=1e-9, abs=1e-9
        )
