"""Dynamics benchmark: incremental vs reference recomputation (BENCH_dynamics.json).

The Sect. 6 model recomputes the centralized reference from scratch
after every network event: ``n + sum_j |transit(j)|`` destination-rooted
Dijkstras per epoch.  The ``incremental`` engine keeps route and
avoiding trees cached across epochs and *repairs* the affected trees in
place (improve waves for decreases/recoveries, detach + re-anchor for
increases/failures).  This benchmark drives both through the same
scripted event sequence on an ISP-like instance and records, per epoch:

* the Dijkstra count (the complexity currency: actual ``route_tree``
  invocations for the incremental engine, the analytic
  ``n + sum_j |transit(j)|`` for the reference sweep),
* the repair counters (labels relaxed / detached / re-anchored) and the
  derived ``dijkstra_equivalents`` -- full runs plus repaired labels
  amortized over the tree size ``n`` -- which the repair-path ceiling
  gates: on the default instance, recover and cost-decrease epochs must
  stay at least 5x below the Dijkstra counts PR 5's warm start needed
  for the same events (1631 and 78; see BENCH_dynamics.json history),
* wall-clock for the full routes+prices recomputation,
* a bit-identity check -- the incremental answer must equal the cold
  reference *exactly* (same paths, ``==`` on every cost and price) on
  every epoch, or the record is marked non-identical and the run fails.

Output goes to ``BENCH_dynamics.json`` (``make bench-dynamics`` writes
it at the repo root).  Run directly::

    python benchmarks/bench_dynamics_incremental.py --quick --out BENCH_dynamics.json

or via pytest (``make bench``), where a small configuration doubles as
a regression assertion on the cache's savings and soundness.

This module must stay importable with the baseline toolchain only (in
particular: no scipy) -- `repro.devtools.check` enforces that for the
whole benchmarks/ directory.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.asgraph import ASGraph
from repro.graphs.biconnectivity import is_biconnected
from repro.graphs.generators import isp_like_graph, uniform_costs
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import IncrementalEngine

QUICK_EVENTS = 4
FULL_EVENTS = 12
DEFAULT_N = 200

#: Dijkstra-equivalent ceilings for the improving-event repair path,
#: calibrated on the default instance (n = 200, seed = 0): PR 5's
#: warm start spent 1631 Dijkstras per recover and 78 per cost
#: decrease; the acceptance bar is >= 5x below that.  Applied only at
#: the default size (the constants are instance-specific).
REPAIR_CEILINGS = {"recover": 1631 / 5.0, "cost_down": 78 / 5.0}

EventSpec = Tuple[str, Any]


def _make_graph(n: int, seed: int) -> ASGraph:
    # Continuous costs: quantized (integer) costs make through-node
    # candidates *tie* incumbents all over the graph, and a tie must
    # invalidate (the canonical tie-break may pick the new path), which
    # would measure tie-handling rather than incremental recomputation.
    return isp_like_graph(n, seed=seed, cost_sampler=uniform_costs(1.0, 6.0))


def _low_degree_nodes(graph: ASGraph, max_degree: int = 4) -> List[int]:
    degree: Dict[int, int] = {node: 0 for node in graph.nodes}
    for u, v in graph.edges:
        degree[u] += 1
        degree[v] += 1
    low = [node for node in graph.nodes if degree[node] <= max_degree]
    return low or list(graph.nodes)


def _script(graph: ASGraph, count: int, seed: int) -> List[EventSpec]:
    """A deterministic mixed event script preserving biconnectivity.

    Cycles through cost increase, link failure, cost decrease, link
    recovery so that every invalidation family (worsening, tree-edge
    removal, improving bound test, edge-addition bound test) is hit.

    Cost events target stub/regional nodes (degree <= 4; ~70% of an
    ISP-like instance): re-pricing a backbone hub that is transit in
    nearly every route tree changes nearly every tree *genuinely*, a
    global event where incremental and from-scratch recomputation
    coincide by construction.  The steady-state dynamics this benchmark
    measures is the typical event, not the catastrophic one.
    """
    rng = random.Random(seed)
    events: List[EventSpec] = []
    current = graph
    down: List[Tuple[int, int]] = []
    kinds = ("cost_up", "fail", "cost_down", "recover")
    for index in range(count):
        kind = kinds[index % len(kinds)]
        if kind == "fail":
            edges = list(current.edges)
            rng.shuffle(edges)
            for u, v in edges:
                candidate = current.without_edge(u, v)
                if is_biconnected(candidate):
                    events.append(("fail", (u, v)))
                    current = candidate
                    down.append((u, v))
                    break
            else:
                kind = "cost_up"  # no removable link: substitute an increase
        if kind == "recover":
            if down:
                u, v = down.pop(0)
                events.append(("recover", (u, v)))
                current = current.with_edge(u, v)
            else:
                kind = "cost_down"
        if kind == "cost_up":
            node = rng.choice(_low_degree_nodes(current))
            new_cost = current.cost(node) * 2.0 + 1.0
            events.append(("cost", (node, new_cost)))
            current = current.with_cost(node, new_cost)
        elif kind == "cost_down":
            node = rng.choice(_low_degree_nodes(current))
            new_cost = current.cost(node) / 2.0
            events.append(("cost", (node, new_cost)))
            current = current.with_cost(node, new_cost)
    return events


def _apply(graph: ASGraph, event: EventSpec) -> ASGraph:
    kind, payload = event
    if kind == "fail":
        return graph.without_edge(*payload)
    if kind == "recover":
        return graph.with_edge(*payload)
    node, new_cost = payload
    return graph.with_cost(node, new_cost)


def _describe(event: EventSpec) -> str:
    kind, payload = event
    if kind == "cost":
        return f"cost({payload[0]}) -> {payload[1]}"
    return f"{kind}{payload}"


def _reference_epoch(graph: ASGraph) -> Tuple[Any, Any, int, float]:
    """Cold reference recomputation; returns (routes, table, dijkstras, wall)."""
    started = time.perf_counter()
    routes = all_pairs_lcp(graph)
    table = compute_price_table(graph, routes=routes)
    elapsed = time.perf_counter() - started
    dijkstras = graph.num_nodes + sum(
        len(routes.transit_nodes(destination)) for destination in graph.nodes
    )
    return routes, table, dijkstras, elapsed


def _incremental_epoch(
    engine: IncrementalEngine, graph: ASGraph
) -> Tuple[Any, Any, Dict[str, int], float]:
    before = engine.stats.snapshot()
    started = time.perf_counter()
    routes = engine.all_pairs(graph)
    table = engine.price_table(graph)
    elapsed = time.perf_counter() - started
    after = engine.stats.snapshot()
    delta = {
        key: after[i] - before[i]
        for i, key in enumerate(
            (
                "hits",
                "misses",
                "invalidations",
                "dijkstras",
                "relaxed",
                "detached",
                "reanchored",
            )
        )
    }
    return routes, table, delta, elapsed


def _equivalents(cache: Dict[str, int], n: int) -> float:
    """Dijkstra-equivalent work: full runs plus repaired labels over n."""
    return cache["dijkstras"] + (cache["relaxed"] + cache["reanchored"]) / n


def _identical(ref_routes, ref_table, inc_routes, inc_table) -> bool:
    if inc_routes.paths != ref_routes.paths:
        return False
    for destination in ref_routes.graph.nodes:
        ref_tree = ref_routes.tree(destination)
        inc_tree = inc_routes.tree(destination)
        if inc_tree.parents != ref_tree.parents:
            return False
        if inc_tree._costs != ref_tree._costs:
            return False
    return inc_table.rows == ref_table.rows


def run_suite(quick: bool = True, seed: int = 0, n: int = DEFAULT_N) -> Dict[str, Any]:
    """Run the scripted comparison; returns the JSON document."""
    graph = _make_graph(n, seed)
    events = _script(graph, QUICK_EVENTS if quick else FULL_EVENTS, seed)
    engine = IncrementalEngine()

    # Warm both sides on the initial instance, untimed: the benchmark
    # measures steady-state event handling, not the first cold build
    # (which is identical work for both engines by construction).
    ref_routes, ref_table, _, _ = _reference_epoch(graph)
    inc_routes, inc_table, _, _ = _incremental_epoch(engine, graph)
    warm_identical = _identical(ref_routes, ref_table, inc_routes, inc_table)

    epochs: List[Dict[str, Any]] = []
    for event in events:
        kind, payload = event
        if kind == "cost":
            kind = "cost_down" if payload[1] < graph.cost(payload[0]) else "cost_up"
        graph = _apply(graph, event)
        ref_routes, ref_table, ref_dijkstras, ref_wall = _reference_epoch(graph)
        inc_routes, inc_table, cache, inc_wall = _incremental_epoch(engine, graph)
        equivalents = _equivalents(cache, n)
        ceiling = REPAIR_CEILINGS.get(kind) if n == DEFAULT_N else None
        epochs.append(
            {
                "event": _describe(event),
                "kind": kind,
                "reference": {
                    "dijkstras": ref_dijkstras,
                    "wall_s": round(ref_wall, 6),
                },
                "incremental": {
                    "dijkstras": cache["dijkstras"],
                    "dijkstra_equivalents": round(equivalents, 3),
                    "wall_s": round(inc_wall, 6),
                    "cache_hits": cache["hits"],
                    "cache_misses": cache["misses"],
                    "cache_invalidations": cache["invalidations"],
                    "repair_relaxed": cache["relaxed"],
                    "repair_detached": cache["detached"],
                    "repair_reanchored": cache["reanchored"],
                },
                "dijkstra_ratio": round(
                    ref_dijkstras / cache["dijkstras"], 3
                )
                if cache["dijkstras"]
                else float("inf"),
                "speedup": round(ref_wall / inc_wall, 3)
                if inc_wall
                else float("inf"),
                "repair_ceiling": ceiling,
                "repair_ok": ceiling is None or equivalents <= ceiling,
                "model_identical": _identical(
                    ref_routes, ref_table, inc_routes, inc_table
                ),
            }
        )
    ref_total_dijkstras = sum(e["reference"]["dijkstras"] for e in epochs)
    inc_total_dijkstras = sum(e["incremental"]["dijkstras"] for e in epochs)
    ref_total_wall = sum(e["reference"]["wall_s"] for e in epochs)
    inc_total_wall = sum(e["incremental"]["wall_s"] for e in epochs)
    return {
        "benchmark": "dynamics_incremental",
        "mode": "quick" if quick else "full",
        "n": n,
        "seed": seed,
        "events": len(epochs),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "epochs": epochs,
        "all_model_identical": warm_identical
        and all(e["model_identical"] for e in epochs),
        "repair_within_ceiling": all(e["repair_ok"] for e in epochs),
        "total_dijkstra_ratio": round(
            ref_total_dijkstras / inc_total_dijkstras, 3
        )
        if inc_total_dijkstras
        else float("inf"),
        "total_speedup": round(ref_total_wall / inc_total_wall, 3)
        if inc_total_wall
        else float("inf"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"{QUICK_EVENTS} events (CI mode; full: {FULL_EVENTS})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=DEFAULT_N, help="graph size")
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_dynamics.json",
        help="output path (default: BENCH_dynamics.json)",
    )
    args = parser.parse_args(argv)
    document = run_suite(quick=args.quick, seed=args.seed, n=args.n)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    for epoch in document["epochs"]:
        print(
            "%(event)s: dijkstras %(rd)d -> %(eq).1f equiv (%(relaxed)d relaxed, "
            "%(rean)d re-anchored), wall %(rw).2fs -> %(iw).2fs (%(speedup).1fx), "
            "identical: %(ident)s%(ceiling)s"
            % {
                "event": epoch["event"],
                "rd": epoch["reference"]["dijkstras"],
                "eq": epoch["incremental"]["dijkstra_equivalents"],
                "relaxed": epoch["incremental"]["repair_relaxed"],
                "rean": epoch["incremental"]["repair_reanchored"],
                "rw": epoch["reference"]["wall_s"],
                "iw": epoch["incremental"]["wall_s"],
                "speedup": epoch["speedup"],
                "ident": epoch["model_identical"],
                "ceiling": ""
                if epoch["repair_ok"]
                else f" OVER CEILING {epoch['repair_ceiling']:.1f}",
            }
        )
    print(
        "total: dijkstras %(ratio).1fx fewer, wall %(speedup).1fx faster, "
        "all identical: %(ident)s, repair within ceiling: %(repair)s"
        % {
            "ratio": document["total_dijkstra_ratio"],
            "speedup": document["total_speedup"],
            "ident": document["all_model_identical"],
            "repair": document["repair_within_ceiling"],
        }
    )
    print(f"wrote {args.out}")
    ok = document["all_model_identical"] and document["repair_within_ceiling"]
    return 0 if ok else 1


# ----------------------------------------------------------------------
# pytest integration: a small configuration as a tracked benchmark.
# ----------------------------------------------------------------------
def test_bench_dynamics_incremental(benchmark):
    graph = _make_graph(60, seed=0)
    events = _script(graph, 4, seed=0)
    engine = IncrementalEngine()
    _incremental_epoch(engine, graph)  # warm

    mutated = graph
    for event in events:
        mutated = _apply(mutated, event)

    def run_warm_epochs():
        # Replay from the warmed state: the cache makes this the
        # steady-state cost of tracking the script.
        current = graph
        total = 0
        for event in events:
            current = _apply(current, event)
            _routes, _table, cache, _wall = _incremental_epoch(engine, current)
            total += cache["dijkstras"]
        return total

    inc_dijkstras = benchmark(run_warm_epochs)
    # Soundness: final epoch bit-identical to the cold reference.
    ref_routes, ref_table, ref_dijkstras, _ = _reference_epoch(mutated)
    inc_routes, inc_table, _, _ = _incremental_epoch(engine, mutated)
    assert _identical(ref_routes, ref_table, inc_routes, inc_table)
    # Savings: one epoch of reference work exceeds the whole warm replay.
    assert inc_dijkstras < ref_dijkstras * len(events)
    # The script's mixed events must exercise both repair families.
    assert engine.stats.relaxed > 0
    assert engine.stats.detached > 0 and engine.stats.reanchored > 0


if __name__ == "__main__":
    raise SystemExit(main())
