"""Timed-substrate benchmark: delays & MRAI vs the sync bound (BENCH_timed.json).

Runs the FPSS protocol (routes + prices) on the discrete-event timed
substrate (:mod:`repro.bgp.timed`) across a grid of delay distributions
and MRAI configurations, next to the synchronous Sect. 5 baseline.  For
every configuration the script

* asserts *model identity*: the converged routes and prices match the
  centralized Theorem 1 reference exactly
  (:func:`~repro.core.protocol.verify_against_centralized`; any
  mismatch gates the exit code),
* records virtual convergence time, deliveries, and transported rows
  next to the synchronous run's stages (vs the Theorem 2 ``max(d, d')``
  bound) and rows.

Output goes to ``BENCH_timed.json`` (``make bench-timed`` writes it at
the repo root).

Run directly::

    python benchmarks/bench_timed_protocol.py --quick --out BENCH_timed.json

This module must stay importable with the baseline toolchain only (in
particular: no scipy) -- `repro.devtools.check` enforces that for the
whole benchmarks/ directory.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.bgp.delays import ConstantDelay, DelayModel, LogNormalDelay, UniformDelay
from repro.bgp.timed import MRAI_PEER, MRAI_PREFIX, MRAIConfig
from repro.core.convergence import convergence_bound
from repro.core.protocol import (
    distributed_mechanism,
    timed_mechanism,
    verify_against_centralized,
)
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import grid_graph, integer_costs, isp_like_graph

#: (rows, cols) grid shapes, n = rows * cols (see bench_protocol_scaling).
_GRID_SHAPES: Dict[int, Tuple[int, int]] = {
    16: (4, 4),
    36: (6, 6),
    64: (8, 8),
}

QUICK_SIZES: Tuple[int, ...] = (16, 36)
FULL_SIZES: Tuple[int, ...] = (16, 36, 64)

FAMILIES: Tuple[str, ...] = ("isp", "grid")

#: The delay/MRAI grid (>= 3 settings, per the acceptance criteria).
SETTINGS: Tuple[Tuple[str, DelayModel, Optional[MRAIConfig]], ...] = (
    ("zero-delay", ConstantDelay(0.0), None),
    ("uniform-jitter", UniformDelay(0.1, 1.0), None),
    (
        "peer-mrai",
        UniformDelay(0.1, 1.0),
        MRAIConfig(1.0, MRAI_PEER, jitter=0.25),
    ),
    (
        "lognormal-prefix-mrai",
        LogNormalDelay(-2.0, 0.8),
        MRAIConfig(1.0, MRAI_PREFIX),
    ),
)


def _make_graph(family: str, n: int, seed: int) -> ASGraph:
    if family == "grid":
        rows, cols = _GRID_SHAPES[n]
        return grid_graph(rows, cols, seed=seed, cost_sampler=integer_costs(1, 6))
    return isp_like_graph(n, seed=seed, cost_sampler=integer_costs(1, 6))


def _run_timed_once(
    graph: ASGraph,
    setting: str,
    delay: DelayModel,
    mrai: Optional[MRAIConfig],
    seed: int,
) -> Dict[str, Any]:
    started = time.perf_counter()
    result = timed_mechanism(graph, seed=seed, delay=delay, mrai=mrai)
    elapsed = time.perf_counter() - started
    verification = verify_against_centralized(result)
    report = result.report
    return {
        "setting": setting,
        "delay": delay.describe(),
        "mrai": mrai.describe() if mrai is not None else "off",
        "deliveries": report.deliveries,
        "convergence_time": round(report.convergence_time, 6),
        "rows_sent": report.rows_sent,
        "rows_suppressed": report.rows_suppressed,
        "mrai_deferrals": report.mrai_deferrals,
        "mrai_rows_coalesced": report.mrai_rows_coalesced,
        "model_identical": verification.ok,
        "wall_s": round(elapsed, 6),
    }


def run_config(family: str, n: int, seed: int = 0) -> Dict[str, Any]:
    """Run the sync baseline plus every timed setting on one instance."""
    graph = _make_graph(family, n, seed)
    bound = convergence_bound(graph)
    started = time.perf_counter()
    sync = distributed_mechanism(graph)
    sync_wall = time.perf_counter() - started
    sync_ok = verify_against_centralized(sync).ok
    timed = [
        _run_timed_once(graph, setting, delay, mrai, seed)
        for setting, delay, mrai in SETTINGS
    ]
    return {
        "family": family,
        "n": n,
        "seed": seed,
        "sync": {
            "stages": sync.stages,
            "bound": bound.stages,
            "within_bound": sync.stages <= bound.stages,
            "rows_sent": sync.report.total_rows_sent,
            "model_identical": sync_ok,
            "wall_s": round(sync_wall, 6),
        },
        "timed": timed,
        "model_identical": sync_ok and all(t["model_identical"] for t in timed),
    }


def run_suite(quick: bool = True, seed: int = 0) -> Dict[str, Any]:
    """Run the whole grid of configurations; returns the JSON document."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    results: List[Dict[str, Any]] = []
    for family in FAMILIES:
        for n in sizes:
            results.append(run_config(family, n, seed=seed))
    return {
        "benchmark": "timed_protocol",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "settings": [setting for setting, _delay, _mrai in SETTINGS],
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": results,
        "all_model_identical": all(r["model_identical"] for r in results),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"small sizes only {QUICK_SIZES} (CI mode; full: {FULL_SIZES})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_timed.json",
        help="output path (default: BENCH_timed.json)",
    )
    args = parser.parse_args(argv)
    document = run_suite(quick=args.quick, seed=args.seed)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    for record in document["results"]:
        sync = record["sync"]
        print(
            f"{record['family']} n={record['n']}: sync stages "
            f"{sync['stages']}/{sync['bound']} rows {sync['rows_sent']}"
        )
        for timed in record["timed"]:
            print(
                "  %(setting)-22s deliveries=%(deliveries)-6d "
                "conv_t=%(ct)-8.3f rows=%(rows)-6d coalesced=%(co)-5d "
                "identical=%(ok)s"
                % {
                    "setting": timed["setting"],
                    "deliveries": timed["deliveries"],
                    "ct": timed["convergence_time"],
                    "rows": timed["rows_sent"],
                    "co": timed["mrai_rows_coalesced"],
                    "ok": timed["model_identical"],
                }
            )
    print(f"wrote {args.out}")
    return 0 if document["all_model_identical"] else 1


# ----------------------------------------------------------------------
# pytest integration: the quick configuration as a tracked benchmark.
# ----------------------------------------------------------------------
def test_bench_timed_mrai(benchmark):
    graph = _make_graph("isp", 16, seed=0)
    _setting, delay, mrai = SETTINGS[2]  # peer-based MRAI over jitter

    def run_once():
        return timed_mechanism(graph, seed=0, delay=delay, mrai=mrai)

    result = benchmark(run_once)
    assert verify_against_centralized(result).ok
    baseline = timed_mechanism(graph, seed=0, delay=UniformDelay(0.1, 1.0))
    # MRAI trades virtual latency for fewer deliveries.
    assert result.report.deliveries < baseline.report.deliveries
    assert result.report.convergence_time > 0.0


if __name__ == "__main__":
    raise SystemExit(main())
