"""E15: the design-choice ablations as a benchmark.

The positive configurations are benchmarked (they are the shipping
code paths); the negative controls are asserted once outside the
timer so the benchmark still certifies the failures exist.
"""

from repro.bgp.engine import AsynchronousEngine
from repro.bgp.policy import LowestCostPolicy
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import (
    DistributedPriceResult,
    distributed_mechanism,
    verify_against_centralized,
)
from repro.graphs.generators import waxman_graph


def test_bench_monotone_mode(benchmark, isp16):
    result = benchmark(distributed_mechanism, isp16, UpdateMode.MONOTONE)
    assert verify_against_centralized(result).ok


def test_bench_recompute_mode(benchmark, isp16):
    result = benchmark(distributed_mechanism, isp16, UpdateMode.RECOMPUTE)
    assert verify_against_centralized(result).ok


def test_bench_async_fifo(benchmark):
    graph = waxman_graph(12, seed=2)

    def factory(node_id, cost, policy):
        return PriceComputingNode(node_id, cost, policy)

    def run():
        engine = AsynchronousEngine(
            graph, policy=LowestCostPolicy(), node_factory=factory, seed=2
        )
        engine.initialize()
        report = engine.run()
        return DistributedPriceResult(
            graph=graph, engine=engine, report=report, mode=UpdateMode.MONOTONE
        )

    result = benchmark(run)
    assert verify_against_centralized(result).ok
