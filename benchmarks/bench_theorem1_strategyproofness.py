"""E4: the Theorem 1 deviation sweep.

Benchmarks the full lie grid over every node of a random instance and
asserts no lie is profitable.
"""

from repro.mechanism.strategyproof import most_profitable, sweep_deviations
from repro.traffic.generators import gravity_traffic


def test_bench_deviation_sweep(benchmark, random14):
    traffic = dict(gravity_traffic(random14, seed=0).items())

    outcomes = benchmark(sweep_deviations, random14, traffic)
    worst = most_profitable(outcomes)
    assert worst is not None
    assert worst.gain <= 1e-9
    assert not any(outcome.profitable for outcome in outcomes)
