"""E6: Theorem 2 state and communication accounting.

Benchmarks plain BGP and the FPSS extension on the same instance and
asserts the constant-factor claims (state O(nd); communication within
3x of plain BGP).
"""

import pytest

from repro.bgp.engine import SynchronousEngine
from repro.core.convergence import convergence_bound
from repro.core.price_node import PriceComputingNode, UpdateMode


def _price_factory(node_id, cost, policy):
    return PriceComputingNode(node_id, cost, policy, mode=UpdateMode.MONOTONE)


def _run_plain(graph):
    engine = SynchronousEngine(graph)
    engine.initialize()
    report = engine.run()
    return engine, report


def _run_fpss(graph):
    engine = SynchronousEngine(graph, node_factory=_price_factory)
    engine.initialize()
    report = engine.run()
    return engine, report


def test_bench_plain_bgp_state(benchmark, isp16):
    engine, report = benchmark(_run_plain, isp16)
    bound = convergence_bound(isp16)
    state = engine.state_report()
    assert state.max_loc_rib <= 2 * isp16.num_nodes * (bound.d + 1)
    assert report.total_entries_sent > 0


def test_bench_fpss_state_and_comm_factor(benchmark, isp16):
    _plain_engine, plain_report = _run_plain(isp16)
    engine, report = benchmark(_run_fpss, isp16)
    bound = convergence_bound(isp16)
    state = engine.state_report()
    assert state.max_loc_rib <= 2 * isp16.num_nodes * (bound.d + 1)
    assert state.max_price_entries <= isp16.num_nodes * bound.d
    # The paper's constant-factor claim is about per-message size; total
    # traffic additionally grows with the max(d, d')/d stage ratio.
    plain_size = plain_report.total_entries_sent / plain_report.total_messages
    fpss_size = report.total_entries_sent / report.total_messages
    ratio = fpss_size / plain_size
    assert ratio <= 3.0, f"per-message size ratio {ratio} exceeds the constant-factor cap"
