"""E9: the plain BGP substrate and the hop-count baseline."""

import pytest

from repro.baselines.hopcount_bgp import route_stretch
from repro.bgp.engine import SynchronousEngine
from repro.core.convergence import convergence_bound
from repro.routing.allpairs import all_pairs_lcp


def test_bench_plain_bgp_convergence(benchmark, isp16):
    def run():
        engine = SynchronousEngine(isp16)
        engine.initialize()
        return engine, engine.run()

    engine, report = benchmark(run)
    assert report.stages <= convergence_bound(isp16).d
    routes = all_pairs_lcp(isp16)
    for source in isp16.nodes:
        for destination in isp16.nodes:
            if source != destination:
                assert engine.node(source).route(destination).path == routes.path(
                    source, destination
                )


def test_bench_hopcount_stretch(benchmark, isp16):
    report = benchmark(route_stretch, isp16)
    assert report.mean_stretch >= 1.0 - 1e-9
    assert report.aggregate_stretch >= 1.0 - 1e-9
