"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one experiment artifact from DESIGN.md's
experiment index (E1..E12) and *asserts* its reproduction criterion, so
``pytest benchmarks/ --benchmark-only`` is both a performance run and a
re-verification of the paper's claims.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    fig1_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
)


@pytest.fixture(scope="session")
def fig1():
    return fig1_graph()


@pytest.fixture(scope="session")
def isp16():
    """The benchmark workhorse: a 16-AS Internet-like topology."""
    return isp_like_graph(16, seed=0, cost_sampler=integer_costs(1, 6))


@pytest.fixture(scope="session")
def isp32():
    """A larger instance for the scaling benchmarks."""
    return isp_like_graph(32, seed=0, cost_sampler=integer_costs(1, 6))


@pytest.fixture(scope="session")
def isp100():
    """The engine-comparison instance: all-pairs prices at n = 100 are
    expensive enough (seconds, pure Python) for parallel/vectorized
    engines to show real wall-clock separation."""
    return isp_like_graph(100, seed=0, cost_sampler=integer_costs(1, 6))


@pytest.fixture(scope="session")
def isp100_reference_prices(isp100):
    """The reference engine's price table on ``isp100``, computed once;
    every engine benchmark asserts agreement against it."""
    from repro.mechanism.vcg import compute_price_table

    return compute_price_table(isp100)


@pytest.fixture(scope="session")
def ring12():
    return ring_graph(12, seed=0, cost_sampler=integer_costs(1, 5))


@pytest.fixture(scope="session")
def random14():
    return random_biconnected_graph(14, 0.25, seed=0, cost_sampler=integer_costs(0, 5))
