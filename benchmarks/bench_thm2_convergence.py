"""E5: Theorem 2 convergence, per topology family.

Each benchmark runs the full FPSS protocol to quiescence and asserts
the measured stages never exceed max(d, d').
"""

import pytest

from repro.core.convergence import convergence_bound
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.graphs.generators import (
    grid_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
)

FAMILIES = {
    "ring": lambda: ring_graph(10, seed=0, cost_sampler=integer_costs(1, 5)),
    "grid": lambda: grid_graph(3, 4, seed=0, cost_sampler=integer_costs(1, 6)),
    "random": lambda: random_biconnected_graph(
        12, 0.25, seed=0, cost_sampler=integer_costs(0, 5)
    ),
    "isp-like": lambda: isp_like_graph(16, seed=0, cost_sampler=integer_costs(1, 6)),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_bench_convergence(benchmark, family):
    graph = FAMILIES[family]()
    bound = convergence_bound(graph)

    result = benchmark(distributed_mechanism, graph)
    assert result.stages <= bound.stages, (
        f"{family}: {result.stages} stages > max(d, d') = {bound.stages}"
    )
    assert verify_against_centralized(result).ok
