"""Flat-sweep benchmark: the batched k-avoiding price core (BENCH_flat.json).

The ``flat`` engine is the scaling backend for the Theorem 1 price
sweep: one-shot CSR build, O(deg(k)) in-place masking for ``G - k``,
demand-restricted and symmetry-oriented Dijkstra batches, vectorized
price evaluation.  This benchmark pins the three claims that justify
its existence, and fails (non-zero exit) if any regresses:

1. **Identity.**  At n <= 200 the flat table must match the reference
   engine (n = 128) and the legacy vectorized sweep (n = 200):
   identical ``(pair, transit)`` key sets, every price within
   ``costs_close``.

2. **Speed.**  At n = 500 the flat sweep must price the table at least
   ``SPEEDUP_FLOOR`` (5x) faster than the legacy vectorized
   ``vcg_price_rows`` path, with the canonical routes precomputed and
   shared so only the avoiding sweeps are compared.

3. **Memory.**  At n = 1000 (ISP-like scaling preset) the sweep must
   complete with a tracemalloc peak under a bound derived from its own
   demand accounting -- a few live distance blocks plus O(entries)
   assembly -- far below both the O(n^3) dense-cache predecessor and
   one retained matrix per transit node.  Wall-clock is recorded.

Output goes to ``BENCH_flat.json`` (``make bench-flat`` writes it at
the repo root).  Run directly::

    python benchmarks/bench_flat_sweep.py --quick --out BENCH_flat.json

(``--quick`` skips the n = 1000 memory phase and shrinks the speedup
instance; the CI gate runs the full configuration.)  Under pytest
(``make bench``) a small configuration doubles as a regression
assertion on identity and on the demand-restriction accounting.

This module must stay importable with the baseline toolchain only (in
particular: no module-level scipy) -- ``repro.devtools.check`` enforces
that for the whole benchmarks/ directory; the engine imports below pull
scipy in lazily at call time instead.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from typing import Any, Dict, List, Optional

from repro.graphs.generators import integer_costs, isp_like_graph, scaling_graph
from repro.types import costs_close

#: The acceptance bar: flat sweep vs legacy vectorized sweep at n = 500.
SPEEDUP_FLOOR = 5.0

IDENTITY_REFERENCE_N = 128
IDENTITY_LEGACY_N = 200
SPEEDUP_N = 500
SPEEDUP_QUICK_N = 200
MEMORY_PRESET = "isp-like-1000"


def _tables_agree(expected, actual) -> List[str]:
    """Differences between two ``(pair) -> {k: price}`` mappings."""
    problems: List[str] = []
    if set(expected) != set(actual):
        problems.append(
            f"pair sets differ: {len(expected)} expected vs {len(actual)} actual"
        )
        return problems
    for pair in expected:
        if set(expected[pair]) != set(actual[pair]):
            problems.append(f"transit keys differ at {pair}")
            continue
        for k, price in expected[pair].items():
            if not costs_close(price, actual[pair][k]):
                problems.append(
                    f"price p^{k}_{pair}: {price} vs {actual[pair][k]}"
                )
    return problems


def run_identity_phase() -> Dict[str, Any]:
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines import get_engine
    from repro.routing.engines.flat import flat_price_rows
    from repro.routing.engines.vectorized import vcg_price_rows

    problems: List[str] = []

    reference_graph = isp_like_graph(
        IDENTITY_REFERENCE_N, seed=1, cost_sampler=integer_costs(1, 6)
    )
    reference_table = get_engine("reference").price_table(reference_graph)
    flat_table = get_engine("flat").price_table(
        reference_graph, routes=reference_table.routes
    )
    problems += [
        f"reference n={IDENTITY_REFERENCE_N}: {p}"
        for p in _tables_agree(reference_table.rows, flat_table.rows)
    ]

    legacy_graph = isp_like_graph(
        IDENTITY_LEGACY_N, seed=2, cost_sampler=integer_costs(1, 6)
    )
    routes = all_pairs_lcp(legacy_graph)
    legacy_rows = vcg_price_rows(legacy_graph, routes)
    flat_rows = flat_price_rows(legacy_graph, routes)
    problems += [
        f"legacy n={IDENTITY_LEGACY_N}: {p}"
        for p in _tables_agree(legacy_rows, flat_rows)
    ]

    return {
        "reference_n": IDENTITY_REFERENCE_N,
        "legacy_n": IDENTITY_LEGACY_N,
        "pairs_compared": len(reference_table.rows) + len(legacy_rows),
        "identical_keys": not problems,
        "problems": problems,
    }


def run_speedup_phase(n: int) -> Dict[str, Any]:
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import FlatSweepStats, flat_price_rows
    from repro.routing.engines.vectorized import vcg_price_rows

    graph = isp_like_graph(n, seed=0, cost_sampler=integer_costs(1, 6))
    # Shared, precomputed routes: path selection is identical work for
    # both backends, so only the avoiding sweeps are timed.
    routes_start = time.perf_counter()
    routes = all_pairs_lcp(graph)
    routes_seconds = time.perf_counter() - routes_start

    legacy_start = time.perf_counter()
    legacy_rows = vcg_price_rows(graph, routes)
    legacy_seconds = time.perf_counter() - legacy_start

    stats = FlatSweepStats()
    flat_start = time.perf_counter()
    flat_rows = flat_price_rows(graph, routes, stats=stats)
    flat_seconds = time.perf_counter() - flat_start

    problems = _tables_agree(legacy_rows, flat_rows)
    speedup = legacy_seconds / flat_seconds if flat_seconds > 0 else float("inf")
    return {
        "n": n,
        "edges": graph.num_edges,
        "routes_seconds": round(routes_seconds, 4),
        "legacy_seconds": round(legacy_seconds, 4),
        "flat_seconds": round(flat_seconds, 4),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "sweep_stats": stats.__dict__.copy(),
        "problems": problems,
    }


def run_memory_phase() -> Dict[str, Any]:
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import FlatSweepStats, flat_price_rows

    graph = scaling_graph(MEMORY_PRESET)
    n = graph.num_nodes
    routes_start = time.perf_counter()
    routes = all_pairs_lcp(graph)
    routes_seconds = time.perf_counter() - routes_start

    stats = FlatSweepStats()
    tracemalloc.start()
    sweep_start = time.perf_counter()
    rows = flat_price_rows(graph, routes, stats=stats)
    sweep_seconds = time.perf_counter() - sweep_start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # The bound is the sweep's own accounting, not a magic constant: a
    # few live distance blocks (max_block_rows * n doubles), the flat
    # demand/price arrays, and the per-entry Python result assembly
    # (dict-of-dicts, ~400 bytes/entry of interpreter overhead).
    block_bytes = 8 * n * stats.max_block_rows
    demand_bound = 64_000_000 + 4 * block_bytes + 400 * stats.entries
    # What the alternatives would have held alive at minimum:
    dense_cache_bytes = stats.solves * 8 * n * n  # one matrix per k
    cubic_bytes = 8 * n * n * n  # the O(n^3) strawman
    return {
        "preset": MEMORY_PRESET,
        "n": n,
        "edges": graph.num_edges,
        "pairs_priced": len(rows),
        "routes_seconds": round(routes_seconds, 4),
        "sweep_seconds": round(sweep_seconds, 4),
        "sweep_stats": stats.__dict__.copy(),
        "tracemalloc_peak_bytes": peak,
        "demand_bound_bytes": demand_bound,
        "dense_cache_bytes": dense_cache_bytes,
        "cubic_bytes": cubic_bytes,
        "within_bound": peak < demand_bound,
        "note": "sweep timed under tracemalloc; wall-clock without it is lower",
    }


def run_suite(quick: bool = False) -> Dict[str, Any]:
    phases: Dict[str, Any] = {"identity": run_identity_phase()}
    phases["speedup"] = run_speedup_phase(SPEEDUP_QUICK_N if quick else SPEEDUP_N)
    if not quick:
        phases["memory"] = run_memory_phase()

    failures: List[str] = []
    if not phases["identity"]["identical_keys"]:
        failures.append("identity: flat table disagrees")
    if phases["speedup"]["problems"]:
        failures.append("speedup: flat table disagrees with legacy sweep")
    # the 5x bar is calibrated at n = 500; quick runs record but don't gate
    if not quick and phases["speedup"]["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"speedup {phases['speedup']['speedup']}x below the "
            f"{SPEEDUP_FLOOR}x floor at n={phases['speedup']['n']}"
        )
    if not quick and not phases["memory"]["within_bound"]:
        failures.append(
            f"memory: peak {phases['memory']['tracemalloc_peak_bytes']} "
            f"over bound {phases['memory']['demand_bound_bytes']}"
        )
    return {
        "benchmark": "flat_sweep",
        "quick": quick,
        "phases": phases,
        "failures": failures,
        "passed": not failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller speedup instance, skip the n=1000 memory phase",
    )
    parser.add_argument("--out", default="BENCH_flat.json", help="output path")
    args = parser.parse_args(argv)

    document = run_suite(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")

    speed = document["phases"]["speedup"]
    print(
        f"flat sweep n={speed['n']}: legacy {speed['legacy_seconds']}s, "
        f"flat {speed['flat_seconds']}s ({speed['speedup']}x)"
    )
    if "memory" in document["phases"]:
        memory = document["phases"]["memory"]
        print(
            f"n={memory['n']}: sweep {memory['sweep_seconds']}s under "
            f"tracemalloc, peak {memory['tracemalloc_peak_bytes'] / 1e6:.0f} MB "
            f"(bound {memory['demand_bound_bytes'] / 1e6:.0f} MB, dense cache "
            f"would hold {memory['dense_cache_bytes'] / 1e9:.1f} GB)"
        )
    for failure in document["failures"]:
        print(f"FAIL: {failure}")
    print("PASS" if document["passed"] else "FAIL", f"-> {args.out}")
    return 0 if document["passed"] else 1


# ----------------------------------------------------------------------
# pytest integration: a small configuration as a tracked benchmark.
# ----------------------------------------------------------------------
def test_bench_flat_sweep(benchmark):
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import FlatSweepStats, flat_price_rows
    from repro.routing.engines.vectorized import vcg_price_rows

    graph = isp_like_graph(96, seed=0, cost_sampler=integer_costs(1, 6))
    routes = all_pairs_lcp(graph)

    flat_rows = benchmark(lambda: flat_price_rows(graph, routes))

    assert not _tables_agree(vcg_price_rows(graph, routes), flat_rows)
    stats = FlatSweepStats()
    flat_price_rows(graph, routes, stats=stats)
    # demand restriction + symmetric orientation must actually engage
    assert stats.rows < stats.solves * graph.num_nodes
    assert stats.max_block_rows < graph.num_nodes


if __name__ == "__main__":
    raise SystemExit(main())
