"""Flat-sweep benchmark: the batched k-avoiding price core (BENCH_flat.json).

The ``flat`` engine is the scaling backend for the Theorem 1 price
sweep: one-shot CSR build, O(deg(k)) in-place masking for ``G - k``,
vectorized route inversion, demand-restricted and symmetry-oriented
Dijkstra batches, array-native price evaluation; ``flat-parallel``
shards the same sweep across worker processes over shared memory.
This benchmark pins the claims that justify both, and fails (non-zero
exit) if any regresses:

1. **Identity** (phase ``identity``).  At n <= 200 the flat table must
   match the reference engine (n = 128) and the legacy vectorized
   sweep (n = 200): identical ``(pair, transit)`` key sets, every
   price within ``costs_close``.

2. **Speed** (phase ``speedup``).  At n = 500 the flat sweep must
   price the table at least ``SPEEDUP_FLOOR`` (5x) faster than the
   legacy vectorized ``vcg_price_rows`` path, with the canonical
   routes precomputed and shared so only the avoiding sweeps are
   compared.

3. **Memory** (phase ``memory``).  At n = 1000 (ISP-like scaling
   preset) the dict-materializing sweep must complete with a
   tracemalloc peak under a bound derived from its own demand
   accounting.

4. **Sharded speed** (phase ``parallel``).  On the isp-like-2000
   preset, the array-native sharded sweep with 4 workers must beat the
   single-process dict-materializing ``flat`` path by at least
   ``PARALLEL_SPEEDUP_FLOOR`` (2x), with speedup-vs-workers rows
   recorded for workers 1/2/4 and bit-identical prices across worker
   counts.  This is the ``make bench-flat-parallel`` CI gate.

5. **Preset scaling** (phase ``presets``).  Every scaling preset is
   priced end-to-end on the array-native path (scipy-forest demand +
   inline sweep), recording wall-clock, peak tracemalloc, and peak RSS,
   each gated against a bound derived from the preset's own demand
   accounting.  By default the phase covers n <= 2000;
   ``--full-presets`` extends it to n = 5000 and n = 10000 (the
   internet-scale floor -- minutes of wall-clock, run to refresh the
   committed artifact rather than per-CI).

``--phases`` selects a comma-separated subset; the output document
*merges* into an existing ``BENCH_flat.json`` (phases not re-run keep
their previous records), so the parallel CI gate does not discard the
committed full-preset rows.  Run directly::

    python benchmarks/bench_flat_sweep.py --quick --out BENCH_flat.json
    python benchmarks/bench_flat_sweep.py --phases parallel
    python benchmarks/bench_flat_sweep.py --phases presets --full-presets

(``--quick`` shrinks the speedup/parallel instances and skips the
memory/presets phases; quick runs record but do not gate.)  Under
pytest (``make bench``) a small configuration doubles as a regression
assertion on identity, worker parity, and the demand accounting.

This module must stay importable with the baseline toolchain only (in
particular: no module-level scipy or numpy) -- ``repro.devtools.check``
enforces that for the whole benchmarks/ directory; the engine imports
below pull scipy in lazily at call time instead.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import time
import tracemalloc
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.generators import (
    SCALING_PRESETS,
    integer_costs,
    isp_like_graph,
    scaling_graph,
    uniform_costs,
)
from repro.types import costs_close

#: The acceptance bar: flat sweep vs legacy vectorized sweep at n = 500.
SPEEDUP_FLOOR = 5.0

#: The acceptance bar: 4-worker array-native sharded sweep vs the
#: single-process dict-materializing flat path at n = 2000.
PARALLEL_SPEEDUP_FLOOR = 2.0

IDENTITY_REFERENCE_N = 128
IDENTITY_LEGACY_N = 200
SPEEDUP_N = 500
SPEEDUP_QUICK_N = 200
MEMORY_PRESET = "isp-like-1000"
PARALLEL_PRESET = "isp-like-2000"
PARALLEL_QUICK_N = 300
PARALLEL_WORKERS = (1, 2, 4)

#: Preset sizes covered by the default ``presets`` phase vs by
#: ``--full-presets`` (the n >= 5000 rows take minutes; they are
#: refreshed explicitly, not per-CI).
PRESET_GATE_SIZES = (1000, 2000)
PRESET_FULL_SIZES = (1000, 2000, 5000, 10000)

ALL_PHASES = ("identity", "speedup", "memory", "parallel", "presets")


def _tables_agree(expected, actual) -> List[str]:
    """Differences between two ``(pair) -> {k: price}`` mappings."""
    problems: List[str] = []
    if set(expected) != set(actual):
        problems.append(
            f"pair sets differ: {len(expected)} expected vs {len(actual)} actual"
        )
        return problems
    for pair in expected:
        if set(expected[pair]) != set(actual[pair]):
            problems.append(f"transit keys differ at {pair}")
            continue
        for k, price in expected[pair].items():
            if not costs_close(price, actual[pair][k]):
                problems.append(
                    f"price p^{k}_{pair}: {price} vs {actual[pair][k]}"
                )
    return problems


def _peak_rss_bytes() -> int:
    """High-water RSS of this process (Linux reports KiB).

    Cumulative over the process lifetime -- meaningful when phases run
    instances in ascending size order, as the presets phase does.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_identity_phase() -> Dict[str, Any]:
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines import get_engine
    from repro.routing.engines.flat import flat_price_rows
    from repro.routing.engines.vectorized import vcg_price_rows

    problems: List[str] = []

    reference_graph = isp_like_graph(
        IDENTITY_REFERENCE_N, seed=1, cost_sampler=integer_costs(1, 6)
    )
    reference_table = get_engine("reference").price_table(reference_graph)
    flat_table = get_engine("flat").price_table(
        reference_graph, routes=reference_table.routes
    )
    problems += [
        f"reference n={IDENTITY_REFERENCE_N}: {p}"
        for p in _tables_agree(reference_table.rows, flat_table.rows)
    ]
    sharded_table = get_engine("flat-parallel", workers=2).price_table(
        reference_graph, routes=reference_table.routes
    )
    problems += [
        f"sharded n={IDENTITY_REFERENCE_N}: {p}"
        for p in _tables_agree(reference_table.rows, sharded_table.rows)
    ]

    legacy_graph = isp_like_graph(
        IDENTITY_LEGACY_N, seed=2, cost_sampler=integer_costs(1, 6)
    )
    routes = all_pairs_lcp(legacy_graph)
    legacy_rows = vcg_price_rows(legacy_graph, routes)
    flat_rows = flat_price_rows(legacy_graph, routes)
    problems += [
        f"legacy n={IDENTITY_LEGACY_N}: {p}"
        for p in _tables_agree(legacy_rows, flat_rows)
    ]

    return {
        "reference_n": IDENTITY_REFERENCE_N,
        "legacy_n": IDENTITY_LEGACY_N,
        "pairs_compared": len(reference_table.rows) + len(legacy_rows),
        "identical_keys": not problems,
        "problems": problems,
    }


def run_speedup_phase(n: int) -> Dict[str, Any]:
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import FlatSweepStats, flat_price_rows
    from repro.routing.engines.vectorized import vcg_price_rows

    graph = isp_like_graph(n, seed=0, cost_sampler=integer_costs(1, 6))
    # Shared, precomputed routes: path selection is identical work for
    # both backends, so only the avoiding sweeps are timed.
    routes_start = time.perf_counter()
    routes = all_pairs_lcp(graph)
    routes_seconds = time.perf_counter() - routes_start

    legacy_start = time.perf_counter()
    legacy_rows = vcg_price_rows(graph, routes)
    legacy_seconds = time.perf_counter() - legacy_start

    stats = FlatSweepStats()
    flat_start = time.perf_counter()
    flat_rows = flat_price_rows(graph, routes, stats=stats)
    flat_seconds = time.perf_counter() - flat_start

    problems = _tables_agree(legacy_rows, flat_rows)
    speedup = legacy_seconds / flat_seconds if flat_seconds > 0 else float("inf")
    return {
        "n": n,
        "edges": graph.num_edges,
        "routes_seconds": round(routes_seconds, 4),
        "legacy_seconds": round(legacy_seconds, 4),
        "flat_seconds": round(flat_seconds, 4),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "sweep_stats": stats.__dict__.copy(),
        "problems": problems,
    }


def run_memory_phase() -> Dict[str, Any]:
    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import FlatSweepStats, flat_price_rows

    graph = scaling_graph(MEMORY_PRESET)
    n = graph.num_nodes
    routes_start = time.perf_counter()
    routes = all_pairs_lcp(graph)
    routes_seconds = time.perf_counter() - routes_start

    stats = FlatSweepStats()
    tracemalloc.start()
    sweep_start = time.perf_counter()
    rows = flat_price_rows(graph, routes, stats=stats)
    sweep_seconds = time.perf_counter() - sweep_start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # The bound is the sweep's own accounting, not a magic constant: a
    # few live distance blocks (max_block_rows * n doubles), the flat
    # demand/price arrays, and the per-entry Python result assembly
    # (dict-of-dicts, ~400 bytes/entry of interpreter overhead).
    block_bytes = 8 * n * stats.max_block_rows
    demand_bound = 64_000_000 + 4 * block_bytes + 400 * stats.entries
    # What the alternatives would have held alive at minimum:
    dense_cache_bytes = stats.solves * 8 * n * n  # one matrix per k
    cubic_bytes = 8 * n * n * n  # the O(n^3) strawman
    return {
        "preset": MEMORY_PRESET,
        "n": n,
        "edges": graph.num_edges,
        "pairs_priced": len(rows),
        "routes_seconds": round(routes_seconds, 4),
        "sweep_seconds": round(sweep_seconds, 4),
        "sweep_stats": stats.__dict__.copy(),
        "tracemalloc_peak_bytes": peak,
        "demand_bound_bytes": demand_bound,
        "dense_cache_bytes": dense_cache_bytes,
        "cubic_bytes": cubic_bytes,
        "within_bound": peak < demand_bound,
        "note": "sweep timed under tracemalloc; wall-clock without it is lower",
    }


def run_parallel_phase(quick: bool = False) -> Dict[str, Any]:
    """Speedup-vs-workers for the sharded array-native sweep.

    The baseline is what the ``flat`` engine delivers -- the
    dict-materializing :func:`flat_price_rows` -- and the contenders
    are what ``flat-parallel`` delivers: :func:`flat_price_arrays`
    with 1/2/4 workers, no per-entry Python assembly.  Canonical
    routes are precomputed and shared so route selection is out of the
    comparison, and prices must be bit-identical across all worker
    counts.
    """
    import numpy as np

    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import flat_price_rows
    from repro.routing.flatsweep import FlatSweepStats, flat_price_arrays

    if quick:
        preset = f"isp-like-{PARALLEL_QUICK_N} (ad hoc)"
        graph = isp_like_graph(
            PARALLEL_QUICK_N, seed=0, cost_sampler=uniform_costs(1.0, 6.0)
        )
    else:
        preset = PARALLEL_PRESET
        graph = scaling_graph(PARALLEL_PRESET)

    routes_start = time.perf_counter()
    routes = all_pairs_lcp(graph)
    routes_seconds = time.perf_counter() - routes_start

    dict_start = time.perf_counter()
    flat_price_rows(graph, routes)
    dict_seconds = time.perf_counter() - dict_start

    worker_rows: List[Dict[str, Any]] = []
    baseline_prices = None
    identical = True
    for workers in PARALLEL_WORKERS:
        stats = FlatSweepStats()
        start = time.perf_counter()
        arrays = flat_price_arrays(graph, routes, workers=workers, stats=stats)
        seconds = time.perf_counter() - start
        if baseline_prices is None:
            baseline_prices = arrays.prices
        else:
            identical = identical and np.array_equal(baseline_prices, arrays.prices)
        worker_rows.append(
            {
                "workers": workers,
                "shards": stats.shards,
                "seconds": round(seconds, 4),
                "speedup_vs_flat_dict": round(dict_seconds / seconds, 2)
                if seconds > 0
                else float("inf"),
            }
        )

    gated = next(row for row in worker_rows if row["workers"] == 4)
    return {
        "preset": preset,
        "n": graph.num_nodes,
        "edges": graph.num_edges,
        "routes_seconds": round(routes_seconds, 4),
        "flat_dict_seconds": round(dict_seconds, 4),
        "workers": worker_rows,
        "speedup": gated["speedup_vs_flat_dict"],
        "speedup_floor": PARALLEL_SPEEDUP_FLOOR,
        "prices_identical_across_workers": identical,
        "note": (
            "baseline is the flat engine's dict deliverable; contenders are "
            "the flat-parallel engine's array deliverable (sweep + assembly "
            "both counted, shared precomputed routes)"
        ),
    }


def run_presets_phase(sizes: Sequence[int]) -> Dict[str, Any]:
    """Price every scaling preset end-to-end on the array-native path.

    Demand comes from the scipy predecessor forest (the canonical
    tie-broken solve is infeasible at n >= 5000), the sweep runs
    inline, and nothing materializes per-entry Python objects -- this
    is the large-instance configuration the ROADMAP's internet-scale
    item needs.  Peak tracemalloc is gated against a bound derived from
    the preset's own demand accounting; peak RSS is recorded (run in
    ascending size order, so the cumulative high-water mark is
    attributable to the largest completed preset).
    """
    from repro.routing.flatgraph import build_flat_graph
    from repro.routing.flatsweep import (
        _FOREST_BLOCK,
        FlatSweepStats,
        demand_from_forest,
        sweep_demand,
    )

    presets = [
        f"{family}-{n}"
        for n in sorted(sizes)
        for family in ("barabasi-albert", "isp-like")
        if f"{family}-{n}" in SCALING_PRESETS
    ]
    rows: Dict[str, Any] = {}
    for preset in presets:
        graph = scaling_graph(preset)
        n = graph.num_nodes
        flat = build_flat_graph(graph)
        stats = FlatSweepStats()
        tracemalloc.start()
        demand_start = time.perf_counter()
        demand = demand_from_forest(graph, flat)
        demand_seconds = time.perf_counter() - demand_start
        sweep_start = time.perf_counter()
        arrays = sweep_demand(demand, stats=stats)
        sweep_seconds = time.perf_counter() - sweep_start
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        # Demand-derived bound, no dict assembly term: the forest blocks
        # (dist + predecessors + flattened parents), the demand arrays
        # (two orders plus pre-gathered solve columns, ~56B/entry with
        # concatenation transients), and a few live distance blocks.
        block_bytes = 8 * n * stats.max_block_rows
        forest_bytes = 24 * n * _FOREST_BLOCK
        demand_bound = (
            64_000_000
            + 4 * block_bytes
            + 2 * forest_bytes
            + 96 * stats.entries
        )
        rows[preset] = {
            "n": n,
            "edges": graph.num_edges,
            "pairs_priced": arrays.num_pairs,
            "demand_seconds": round(demand_seconds, 4),
            "sweep_seconds": round(sweep_seconds, 4),
            "sweep_stats": stats.__dict__.copy(),
            "tracemalloc_peak_bytes": peak,
            "demand_bound_bytes": demand_bound,
            "rss_peak_bytes": _peak_rss_bytes(),
            "within_bound": peak < demand_bound,
        }
        del demand, arrays, flat, graph
    return {
        "sizes": sorted(sizes),
        "demand": "scipy predecessor forest (canonical ties infeasible here)",
        "rows": rows,
        "note": (
            "timed under tracemalloc; rss_peak_bytes is the process "
            "high-water mark, cumulative across ascending presets"
        ),
    }


def run_suite(
    quick: bool = False,
    phases_selected: Optional[Sequence[str]] = None,
    full_presets: bool = False,
) -> Dict[str, Any]:
    if phases_selected is None:
        phases_selected = (
            ("identity", "speedup", "parallel")
            if quick
            else ("identity", "speedup", "memory", "parallel", "presets")
        )
    phases: Dict[str, Any] = {}
    if "identity" in phases_selected:
        phases["identity"] = run_identity_phase()
    if "speedup" in phases_selected:
        phases["speedup"] = run_speedup_phase(SPEEDUP_QUICK_N if quick else SPEEDUP_N)
    if "memory" in phases_selected and not quick:
        phases["memory"] = run_memory_phase()
    if "parallel" in phases_selected:
        phases["parallel"] = run_parallel_phase(quick=quick)
    if "presets" in phases_selected and not quick:
        phases["presets"] = run_presets_phase(
            PRESET_FULL_SIZES if full_presets else PRESET_GATE_SIZES
        )

    failures: List[str] = []
    if "identity" in phases and not phases["identity"]["identical_keys"]:
        failures.append("identity: flat table disagrees")
    if "speedup" in phases:
        if phases["speedup"]["problems"]:
            failures.append("speedup: flat table disagrees with legacy sweep")
        # the 5x bar is calibrated at n = 500; quick runs record but don't gate
        if not quick and phases["speedup"]["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"speedup {phases['speedup']['speedup']}x below the "
                f"{SPEEDUP_FLOOR}x floor at n={phases['speedup']['n']}"
            )
    if "memory" in phases and not phases["memory"]["within_bound"]:
        failures.append(
            f"memory: peak {phases['memory']['tracemalloc_peak_bytes']} "
            f"over bound {phases['memory']['demand_bound_bytes']}"
        )
    if "parallel" in phases:
        if not phases["parallel"]["prices_identical_across_workers"]:
            failures.append("parallel: prices differ across worker counts")
        # the 2x bar is calibrated on isp-like-2000; quick records only
        if not quick and phases["parallel"]["speedup"] < PARALLEL_SPEEDUP_FLOOR:
            failures.append(
                f"parallel speedup {phases['parallel']['speedup']}x below the "
                f"{PARALLEL_SPEEDUP_FLOOR}x floor on {phases['parallel']['preset']}"
            )
    if "presets" in phases:
        for preset, row in phases["presets"]["rows"].items():
            if not row["within_bound"]:
                failures.append(
                    f"presets: {preset} peak {row['tracemalloc_peak_bytes']} "
                    f"over bound {row['demand_bound_bytes']}"
                )
    return {
        "benchmark": "flat_sweep",
        "quick": quick,
        "phases": phases,
        "failures": failures,
        "passed": not failures,
    }


def _merge_into_existing(path: str, document: Dict[str, Any]) -> Dict[str, Any]:
    """Merge this run's phases into an existing output document.

    Phases not re-run keep their previous records (so a
    ``--phases parallel`` CI gate does not discard the committed
    full-preset rows); ``failures``/``passed`` always describe the
    current run only.
    """
    if not os.path.exists(path):
        return document
    try:
        with open(path, "r", encoding="utf-8") as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        return document
    if previous.get("benchmark") != document["benchmark"]:
        return document
    merged_phases = dict(previous.get("phases", {}))
    merged_phases.update(document["phases"])
    document = dict(document)
    document["phases"] = merged_phases
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller speedup/parallel instances, skip memory/presets phases",
    )
    parser.add_argument(
        "--phases",
        default=None,
        help=f"comma-separated subset of {', '.join(ALL_PHASES)} (default: all)",
    )
    parser.add_argument(
        "--full-presets",
        action="store_true",
        help="extend the presets phase to n=5000 and n=10000 (minutes)",
    )
    parser.add_argument("--out", default="BENCH_flat.json", help="output path")
    args = parser.parse_args(argv)

    selected: Optional[List[str]] = None
    if args.phases:
        selected = [phase.strip() for phase in args.phases.split(",") if phase.strip()]
        unknown = [phase for phase in selected if phase not in ALL_PHASES]
        if unknown:
            parser.error(f"unknown phases: {', '.join(unknown)}")

    document = run_suite(
        quick=args.quick, phases_selected=selected, full_presets=args.full_presets
    )
    document = _merge_into_existing(args.out, document)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")

    phases = document["phases"]
    if "speedup" in phases:
        speed = phases["speedup"]
        print(
            f"flat sweep n={speed['n']}: legacy {speed['legacy_seconds']}s, "
            f"flat {speed['flat_seconds']}s ({speed['speedup']}x)"
        )
    if "memory" in phases:
        memory = phases["memory"]
        print(
            f"n={memory['n']}: sweep {memory['sweep_seconds']}s under "
            f"tracemalloc, peak {memory['tracemalloc_peak_bytes'] / 1e6:.0f} MB "
            f"(bound {memory['demand_bound_bytes'] / 1e6:.0f} MB, dense cache "
            f"would hold {memory['dense_cache_bytes'] / 1e9:.1f} GB)"
        )
    if "parallel" in phases:
        par = phases["parallel"]
        per_worker = ", ".join(
            f"w={row['workers']}: {row['seconds']}s "
            f"({row['speedup_vs_flat_dict']}x)"
            for row in par["workers"]
        )
        print(
            f"sharded sweep on {par['preset']}: flat dict "
            f"{par['flat_dict_seconds']}s; {per_worker}"
        )
    if "presets" in phases:
        for preset, row in phases["presets"]["rows"].items():
            print(
                f"{preset}: demand {row['demand_seconds']}s + sweep "
                f"{row['sweep_seconds']}s, peak "
                f"{row['tracemalloc_peak_bytes'] / 1e6:.0f} MB "
                f"(bound {row['demand_bound_bytes'] / 1e6:.0f} MB), "
                f"rss {row['rss_peak_bytes'] / 1e6:.0f} MB"
            )
    for failure in document["failures"]:
        print(f"FAIL: {failure}")
    print("PASS" if document["passed"] else "FAIL", f"-> {args.out}")
    return 0 if document["passed"] else 1


# ----------------------------------------------------------------------
# pytest integration: a small configuration as a tracked benchmark.
# ----------------------------------------------------------------------
def test_bench_flat_sweep(benchmark):
    import numpy as np

    from repro.routing.allpairs import all_pairs_lcp
    from repro.routing.engines.flat import FlatSweepStats, flat_price_rows
    from repro.routing.engines.vectorized import vcg_price_rows
    from repro.routing.flatsweep import flat_price_arrays

    graph = isp_like_graph(96, seed=0, cost_sampler=integer_costs(1, 6))
    routes = all_pairs_lcp(graph)

    flat_rows = benchmark(lambda: flat_price_rows(graph, routes))

    assert not _tables_agree(vcg_price_rows(graph, routes), flat_rows)
    stats = FlatSweepStats()
    flat_price_rows(graph, routes, stats=stats)
    # demand restriction + symmetric orientation must actually engage
    assert stats.rows < stats.solves * graph.num_nodes
    assert stats.max_block_rows < graph.num_nodes
    # sharding must be invisible: pooled prices match inline bit for bit
    inline = flat_price_arrays(graph, routes)
    pooled = flat_price_arrays(graph, routes, workers=2)
    assert np.array_equal(inline.prices, pooled.prices)


if __name__ == "__main__":
    raise SystemExit(main())
