"""E14: congestion analysis and the greedy feasibility repair."""

from repro.extensions.capacity import congestion_report, greedy_decongest
from repro.traffic.generators import gravity_traffic


def test_bench_congestion_report(benchmark, isp16):
    traffic = dict(gravity_traffic(isp16, seed=0, total=1000.0).items())
    capacities = {node: 100.0 for node in isp16.nodes}
    report = benchmark(congestion_report, isp16, capacities, traffic)
    assert report.total_cost > 0


def test_bench_greedy_decongest(benchmark, isp16):
    traffic = dict(gravity_traffic(isp16, seed=0, total=1000.0).items())
    baseline = congestion_report(
        isp16, {node: float("inf") for node in isp16.nodes}, traffic
    )
    capacities = {
        node: max(1.0, 0.7 * baseline.loads.get(node, 0.0)) for node in isp16.nodes
    }
    result = benchmark(greedy_decongest, isp16, capacities, traffic)
    assert result.cost_premium >= -1e-9
