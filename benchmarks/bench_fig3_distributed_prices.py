"""E3: the Fig. 3 distributed price computation, both update modes.

Benchmarks a full protocol run to quiescence on the Internet-like
instance and asserts exact agreement with the centralized mechanism.
"""

import pytest

from repro.core.price_node import UpdateMode
from repro.core.protocol import distributed_mechanism, verify_against_centralized


@pytest.mark.parametrize("mode", list(UpdateMode), ids=lambda m: m.value)
def test_bench_distributed_mechanism(benchmark, isp16, mode):
    result = benchmark(distributed_mechanism, isp16, mode)
    assert verify_against_centralized(result).ok


def test_bench_distributed_mechanism_async(benchmark, isp16):
    def run():
        return distributed_mechanism(isp16, asynchronous=True, seed=0)

    result = benchmark(run)
    assert verify_against_centralized(result).ok
