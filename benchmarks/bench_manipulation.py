"""E17: the cost-deflation manipulation, end to end with audit."""

from repro.graphs.generators import integer_costs, random_biconnected_graph
from repro.strategic.manipulation import manipulation_outcome
from repro.traffic.generators import uniform_traffic


def test_bench_manipulation_outcome(benchmark):
    graph = random_biconnected_graph(12, 0.25, seed=1, cost_sampler=integer_costs(1, 5))
    traffic = dict(uniform_traffic(graph).items())
    candidates = [
        node for node in graph.nodes if graph.degree(node) < graph.num_nodes - 1
    ]
    manipulator = max(candidates, key=graph.degree)

    outcome = benchmark(manipulation_outcome, graph, manipulator, traffic, 1.0)
    assert outcome.caught
