"""E11: engine scaling -- reference vs scipy vs parallel, same answers.

The price-table benchmarks run every registered engine on the same
n = 100 ISP-like instance and assert the results agree with the
reference engine (bit-for-bit for path engines, ``costs_close`` for the
vectorized cost-only engine), so the benchmark doubles as the
differential harness at benchmark scale.  On multi-core hosts the
parallel engine's wall clock beats the reference engine here; the
assertion layer guarantees the speed never buys different answers.
"""

import numpy as np

from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.engines import get_engine
from repro.routing.engines.vectorized import all_pairs_costs
from repro.types import costs_close


def _assert_tables_agree(reference, candidate, exact):
    assert set(candidate.rows) == set(reference.rows)
    for pair in reference.rows:
        ref_row = reference.rows[pair]
        cand_row = candidate.rows[pair]
        assert set(cand_row) == set(ref_row)
        for k, price in ref_row.items():
            if exact:
                assert cand_row[k] == price
            else:
                assert costs_close(cand_row[k], price)


def test_bench_python_all_pairs(benchmark, isp32):
    routes = benchmark(all_pairs_lcp, isp32)
    assert len(routes.paths) == isp32.num_nodes * (isp32.num_nodes - 1)


def test_bench_scipy_all_pairs(benchmark, isp32):
    matrix, index = benchmark(all_pairs_costs, isp32)
    routes = all_pairs_lcp(isp32)
    reference = np.zeros_like(matrix)
    for (i, j), _path in routes.paths.items():
        reference[index[i], index[j]] = routes.cost(i, j)
    assert np.abs(matrix - reference).max() <= 1e-9


def test_bench_parallel_all_pairs(benchmark, isp32):
    engine = get_engine("parallel", workers=2)
    routes = benchmark(engine.all_pairs, isp32)
    assert routes.paths == all_pairs_lcp(isp32).paths


def test_bench_prices_reference_n100(benchmark, isp100, isp100_reference_prices):
    table = benchmark.pedantic(compute_price_table, args=(isp100,), rounds=1, iterations=1)
    _assert_tables_agree(isp100_reference_prices, table, exact=True)


def test_bench_prices_parallel_n100(benchmark, isp100, isp100_reference_prices):
    engine = get_engine("parallel", workers=2)
    table = benchmark.pedantic(engine.price_table, args=(isp100,), rounds=1, iterations=1)
    assert engine.workers >= 2
    _assert_tables_agree(isp100_reference_prices, table, exact=True)


def test_bench_prices_scipy_n100(benchmark, isp100, isp100_reference_prices):
    engine = get_engine("scipy")
    table = benchmark.pedantic(engine.price_table, args=(isp100,), rounds=1, iterations=1)
    _assert_tables_agree(isp100_reference_prices, table, exact=False)
