"""E11: engine scaling -- pure Python vs vectorized scipy, same answers."""

import numpy as np
import pytest

from repro.routing.allpairs import all_pairs_lcp
from repro.routing.scipy_engine import all_pairs_costs


def test_bench_python_all_pairs(benchmark, isp32):
    routes = benchmark(all_pairs_lcp, isp32)
    assert len(routes.paths) == isp32.num_nodes * (isp32.num_nodes - 1)


def test_bench_scipy_all_pairs(benchmark, isp32):
    matrix, index = benchmark(all_pairs_costs, isp32)
    routes = all_pairs_lcp(isp32)
    reference = np.zeros_like(matrix)
    for (i, j), _path in routes.paths.items():
        reference[index[i], index[j]] = routes.cost(i, j)
    assert np.abs(matrix - reference).max() <= 1e-9
