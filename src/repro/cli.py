"""Command-line entry point: ``repro-experiments``.

Subcommands::

    repro-experiments list                    # show experiment ids
    repro-experiments run E5 [--scale full]   # run one, print tables
    repro-experiments all [--scale full] [--write-md EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.registry import list_experiments
from repro.experiments.runner import run_all, run_experiment, write_experiments_md


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for 'A BGP-based mechanism for "
            "lowest-cost routing' (PODC 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiment ids and titles")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. E5")
    run_parser.add_argument("--scale", choices=("small", "full"), default="small")
    run_parser.add_argument("--seed", type=int, default=0)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", choices=("small", "full"), default="small")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument(
        "--write-md",
        metavar="PATH",
        default=None,
        help="also write the results as markdown (EXPERIMENTS.md format)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, title in list_experiments():
            print(f"{experiment_id:5s} {title}")
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment_id, scale=args.scale, seed=args.seed)
        print(result.render())
        return 0 if result.passed else 1
    if args.command == "all":
        results = run_all(scale=args.scale, seed=args.seed)
        for result in results:
            print(result.render())
            print()
        passed = sum(1 for result in results if result.passed)
        print(f"summary: {passed}/{len(results)} experiments PASS")
        if args.write_md:
            write_experiments_md(Path(args.write_md), results, scale=args.scale)
            print(f"wrote {args.write_md}")
        return 0 if passed == len(results) else 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
