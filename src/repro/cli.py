"""Command-line entry point: ``repro-experiments``.

Subcommands::

    repro-experiments list                    # show experiment ids
    repro-experiments engines                 # show registered engines
    repro-experiments run E5 [--scale full] [--engine parallel]
    repro-experiments all [--scale full] [--write-md EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.registry import list_experiments
from repro.experiments.runner import run_all, run_experiment, write_experiments_md
from repro.routing.engines import engine_names, get_engine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction harness for 'A BGP-based mechanism for "
            "lowest-cost routing' (PODC 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiment ids and titles")

    subparsers.add_parser(
        "engines", help="list registered route/price engines"
    )

    engine_help = (
        "route/price engine for engine-aware experiments "
        f"({' | '.join(engine_names())}; default: reference)"
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. E5")
    run_parser.add_argument("--scale", choices=("small", "full"), default="small")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--engine", choices=engine_names(), default=None, help=engine_help
    )

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", choices=("small", "full"), default="small")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument(
        "--engine", choices=engine_names(), default=None, help=engine_help
    )
    all_parser.add_argument(
        "--write-md",
        metavar="PATH",
        default=None,
        help="also write the results as markdown (EXPERIMENTS.md format)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, title in list_experiments():
            print(f"{experiment_id:5s} {title}")
        return 0
    if args.command == "engines":
        for name in engine_names():
            engine = get_engine(name)
            paths = "paths" if engine.carries_paths else "cost-only"
            print(f"{name:10s} {paths}")
        return 0
    engine_kwargs: Dict[str, Any] = {}
    if getattr(args, "engine", None) is not None:
        engine_kwargs["engine"] = args.engine
    if args.command == "run":
        result = run_experiment(
            args.experiment_id, scale=args.scale, seed=args.seed, **engine_kwargs
        )
        print(result.render())
        return 0 if result.passed else 1
    if args.command == "all":
        results = run_all(scale=args.scale, seed=args.seed, **engine_kwargs)
        for result in results:
            print(result.render())
            print()
        passed = sum(1 for result in results if result.passed)
        print(f"summary: {passed}/{len(results)} experiments PASS")
        if args.write_md:
            write_experiments_md(Path(args.write_md), results, scale=args.scale)
            print(f"wrote {args.write_md}")
        return 0 if passed == len(results) else 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
