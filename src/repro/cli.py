"""Command-line entry point: ``repro-cli`` (alias ``repro-experiments``).

Subcommands::

    repro-cli list                          # show experiment ids
    repro-cli engines                       # show registered engines
    repro-cli run E5 [--scale full] [--engine parallel] [--protocol full] [--trace out.jsonl]
    repro-cli all [--scale full] [--write-md EXPERIMENTS.md] [--trace out.jsonl]
    repro-cli trace summarize out.jsonl     # paper measures from a trace
    repro-cli trace validate out.jsonl      # schema-check a trace file
    repro-cli analyze [--json]              # interprocedural contract analyzer
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import repro.obs as obs_mod
from repro.exceptions import TraceError
from repro.experiments.registry import list_experiments
from repro.experiments.runner import run_all, run_experiment, write_experiments_md
from repro.obs.trace import summarize_trace, summary_tables, validate_trace
from repro.routing.engines import engine_names, get_engine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description=(
            "Reproduction harness for 'A BGP-based mechanism for "
            "lowest-cost routing' (PODC 2002)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiment ids and titles")

    subparsers.add_parser(
        "engines", help="list registered route/price engines"
    )

    engine_help = (
        "route/price engine for engine-aware experiments "
        f"({' | '.join(engine_names())}; default: reference)"
    )
    protocol_help = (
        "BGP transport for protocol-aware experiments: delta (incremental "
        "row exchanges; default), full (literal Sect. 5 full tables; "
        "bit-identical to delta), or timed (discrete-event simulator with "
        "link jitter; same converged model, virtual time replaces stages)"
    )
    trace_help = (
        "record an observability trace of the run as JSONL "
        "(read it back with `trace summarize`)"
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. E5")
    run_parser.add_argument("--scale", choices=("small", "full"), default="small")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--engine", choices=engine_names(), default=None, help=engine_help
    )
    run_parser.add_argument(
        "--protocol",
        choices=("delta", "full", "timed"),
        default=None,
        help=protocol_help,
    )
    run_parser.add_argument("--trace", metavar="PATH", default=None, help=trace_help)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", choices=("small", "full"), default="small")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument(
        "--engine", choices=engine_names(), default=None, help=engine_help
    )
    all_parser.add_argument(
        "--protocol",
        choices=("delta", "full", "timed"),
        default=None,
        help=protocol_help,
    )
    all_parser.add_argument(
        "--write-md",
        metavar="PATH",
        default=None,
        help="also write the results as markdown (EXPERIMENTS.md format)",
    )
    all_parser.add_argument("--trace", metavar="PATH", default=None, help=trace_help)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a recorded observability trace"
    )
    trace_parser.add_argument(
        "action",
        choices=("summarize", "validate"),
        help="summarize: paper complexity measures; validate: schema check",
    )
    trace_parser.add_argument("path", metavar="TRACE.jsonl", help="trace file to read")

    subparsers.add_parser(
        "analyze",
        help="run the interprocedural determinism/contract analyzer "
        "(repro.devtools.flow, codes RPR007-RPR010); all further "
        "arguments are forwarded (e.g. --json, --check-suppressions)",
        add_help=False,
    )
    return parser


@contextmanager
def _tracing(trace_path: Optional[str]) -> Iterator[None]:
    """Record the enclosed run to ``trace_path`` (no-op when ``None``).

    Swaps in a fresh default observer so the trace holds exactly one
    run, attaches a :class:`~repro.obs.sinks.JSONLSink`, and enables
    global observability for the duration.
    """
    if trace_path is None:
        yield
        return
    observer = obs_mod.reset_default()
    sink = obs_mod.JSONLSink(trace_path)
    observer.add_sink(sink)
    try:
        with obs_mod.observed():
            yield
    finally:
        observer.remove_sink(sink)
        sink.close()
    print(f"wrote trace {trace_path}")


def _trace_command(action: str, path: str) -> int:
    try:
        if action == "validate":
            count = validate_trace(path)
            print(f"{path}: valid trace, {count} events")
            return 0
        for table in summary_tables(summarize_trace(path), title=f"trace: {path}"):
            print(table.render())
            print()
        return 0
    except (OSError, TraceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `analyze` forwards everything verbatim to the flow analyzer's own
    # parser; argparse.REMAINDER cannot capture a leading option (e.g.
    # `analyze --json`), so it is dispatched before parsing.  The
    # subparser above remains registered for `--help` and discovery.
    if argv and argv[0] == "analyze":
        from repro.devtools.flow import main as flow_main

        return flow_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, title in list_experiments():
            print(f"{experiment_id:5s} {title}")
        return 0
    if args.command == "engines":
        for name in engine_names():
            engine = get_engine(name)
            paths = "paths" if engine.carries_paths else "cost-only"
            print(f"{name:10s} {paths}")
        return 0
    if args.command == "trace":
        return _trace_command(args.action, args.path)
    engine_kwargs: Dict[str, Any] = {}
    if getattr(args, "engine", None) is not None:
        engine_kwargs["engine"] = args.engine
    if getattr(args, "protocol", None) is not None:
        engine_kwargs["protocol"] = args.protocol
    if args.command == "run":
        with _tracing(args.trace):
            result = run_experiment(
                args.experiment_id, scale=args.scale, seed=args.seed, **engine_kwargs
            )
        print(result.render())
        return 0 if result.passed else 1
    if args.command == "all":
        with _tracing(args.trace):
            results = run_all(scale=args.scale, seed=args.seed, **engine_kwargs)
        for result in results:
            print(result.render())
            print()
        passed = sum(1 for result in results if result.passed)
        print(f"summary: {passed}/{len(results)} experiments PASS")
        if args.write_md:
            write_experiments_md(Path(args.write_md), results, scale=args.scale)
            print(f"wrote {args.write_md}")
        return 0 if passed == len(results) else 1
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
