"""E2: the route tree T(Z) of Figure 2.

Figure 2 draws the tree of selected lowest-cost paths toward
destination Z for the Figure 1 graph: A and D are children of Z, B and
Y are children of D, and X is a child of B ("D is the parent of B in
T(Z)").  The experiment rebuilds the tree from the routing substrate
and from the running BGP engine and compares the parent relation.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.bgp.engine import SynchronousEngine
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import FIG1_LABELS, fig1_graph
from repro.routing.dijkstra import route_tree

#: Parent relation of Figure 2, by label.
FIG2_PARENTS = {"A": "Z", "D": "Z", "B": "D", "Y": "D", "X": "B"}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    graph = fig1_graph()
    label = FIG1_LABELS
    names = {value: key for key, value in label.items()}
    Z = label["Z"]

    tree = route_tree(graph, Z)

    engine = SynchronousEngine(graph)
    engine.initialize()
    engine.run()

    out = Table(
        title="Route tree T(Z) (paper Fig. 2)",
        headers=["node", "paper parent", "centralized parent", "BGP parent", "match"],
    )
    passed = True
    for name, expected_parent in sorted(FIG2_PARENTS.items()):
        node = label[name]
        central = names[tree.parent(node)]
        entry = engine.node(node).route(Z)
        bgp = names[entry.next_hop] if entry is not None else "-"
        match = central == expected_parent == bgp
        passed = passed and match
        out.add_row(name, expected_parent, central, bgp, match)
    out.add_note("the selected LCPs toward Z form a loop-free tree, as Sect. 6 requires")

    return ExperimentResult(
        experiment_id="E2",
        title="Figure 2 route tree T(Z)",
        paper_artifact="Figure 2",
        expectation="selected routes toward Z form exactly the tree drawn in the paper",
        tables=[out],
        passed=passed,
    )
