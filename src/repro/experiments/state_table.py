"""E6: state and communication -- the constant-factor claim of Theorem 2.

Section 5 puts plain BGP at ``O(nd)`` routing-table entries per node;
Section 6 argues the price extension adds ``O(nd)`` state and a
constant-factor increase in communication ("it does not introduce any
new messages").  The experiment runs plain BGP and FPSS on identical
instances and reports:

* the max per-node Loc-RIB entries against the ``n * (d + 1)`` yardstick,
* the price-array entries (must be <= route-path entries), and
* the *per-message* size ratio FPSS / plain -- the paper's
  constant-factor claim is about message contents ("the costs and
  prices will be included in the routing message exchanges"), not about
  total traffic: the price computation legitimately runs
  ``max(d, d')/d`` times more stages, which dominates total traffic on
  families where ``d' >> d`` (e.g. wheels).  Total traffic is reported
  unasserted alongside the stage ratio that explains it.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.bgp.engine import SynchronousEngine
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.convergence import convergence_bound
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult

#: The price extension must stay within this factor of plain BGP's
#: *per-message* size (the paper claims a constant; 3 is a conservative
#: cap: path + per-node costs + per-node prices).
MESSAGE_FACTOR_CAP = 3.0


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    out = Table(
        title="Routing-table state and communication (Sect. 5 / Theorem 2)",
        headers=[
            "family",
            "n",
            "d",
            "d'",
            "n*(d+1)",
            "BGP rib max",
            "FPSS rib max",
            "price entries max",
            "msg size ratio",
            "total traffic ratio",
        ],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        bound = convergence_bound(graph)
        yardstick = graph.num_nodes * (bound.d + 1)

        plain = SynchronousEngine(graph)
        plain.initialize()
        plain_report = plain.run()
        plain_state = plain.state_report()

        def factory(node_id, cost, policy):
            return PriceComputingNode(node_id, cost, policy, mode=UpdateMode.MONOTONE)

        fpss = SynchronousEngine(graph, node_factory=factory)
        fpss.initialize()
        fpss_report = fpss.run()
        fpss_state = fpss.state_report()

        plain_message_size = (
            plain_report.total_entries_sent / plain_report.total_messages
            if plain_report.total_messages
            else float("inf")
        )
        fpss_message_size = (
            fpss_report.total_entries_sent / fpss_report.total_messages
            if fpss_report.total_messages
            else float("inf")
        )
        message_ratio = fpss_message_size / plain_message_size
        traffic_ratio = (
            fpss_report.total_entries_sent / plain_report.total_entries_sent
            if plain_report.total_entries_sent
            else float("inf")
        )
        # Loc-RIB stores path + per-node costs: <= 2 entries per AS hop,
        # so 2 * n * (d + 1) caps it; price entries are at most one per
        # transit hop, i.e. <= n * d.
        state_ok = (
            plain_state.max_loc_rib <= 2 * yardstick
            and fpss_state.max_loc_rib <= 2 * yardstick
            and fpss_state.max_price_entries <= graph.num_nodes * bound.d
        )
        comm_ok = message_ratio <= MESSAGE_FACTOR_CAP
        passed = passed and state_ok and comm_ok
        out.add_row(
            family,
            graph.num_nodes,
            bound.d,
            bound.d_prime,
            yardstick,
            plain_state.max_loc_rib,
            fpss_state.max_loc_rib,
            fpss_state.max_price_entries,
            message_ratio,
            traffic_ratio,
        )
    out.add_note(
        "entries = AS numbers + cost scalars + price scalars; the asserted "
        f"constant factor is per-message size (< {MESSAGE_FACTOR_CAP}); total "
        "traffic additionally grows with the stage ratio max(d, d')/d and is "
        "reported unasserted"
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Theorem 2 state & communication",
        paper_artifact="Sect. 5 complexity accounting; Theorem 2 constant-factor claim",
        expectation=(
            "tables stay O(nd); price extension costs at most a small constant "
            "factor in communication"
        ),
        tables=[out],
        passed=passed,
    )
