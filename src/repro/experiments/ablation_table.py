"""E15: ablations of the design choices DESIGN.md calls out.

Each ablation disables one load-bearing decision and demonstrates the
resulting failure (or, for the mode comparison, quantifies the trade):

* **A1 -- update mode.**  Monotone (paper-faithful) vs recompute
  (stateless fixpoint): identical results, comparable stages; the
  table reports stages and messages for both.
* **A2 -- restart on change.**  With the Sect. 6 restart disabled, a
  cost increase leaves stale pre-event candidates in the monotone
  minimum and the converged prices are *wrong*; with the restart they
  are exact.
* **A3 -- advert-consistent child formula.**  Evaluating Eq. 3
  literally is correct on synchronized static runs but produces wrong
  prices under asynchrony (a stale child advertisement undercuts the
  true price); the advert-consistent rewriting stays exact.
* **A4 -- FIFO links.**  Without per-link FIFO delivery (which TCP
  provides to real BGP), a newer table can be overwritten by an older
  one in flight and even the *routes* converge wrong.

The experiment PASSES when every disabled configuration exhibits its
failure on at least one seed and every enabled configuration is exact
on all of them.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.analysis.report import Table
from repro.bgp.engine import AsynchronousEngine, SynchronousEngine
from repro.bgp.events import CostChange
from repro.bgp.policy import LowestCostPolicy
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import (
    DistributedPriceResult,
    distributed_mechanism,
    verify_against_centralized,
)
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import (
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
    waxman_graph,
)


def _mode_comparison(seed: int) -> Tuple[Table, bool]:
    table = Table(
        title="A1: monotone vs recompute update mode",
        headers=["family", "mode", "stages", "messages", "entries sent", "exact"],
    )
    ok = True
    for family, graph in (
        ("ring", ring_graph(10, seed=seed, cost_sampler=integer_costs(1, 5))),
        ("isp-like", isp_like_graph(16, seed=seed, cost_sampler=integer_costs(1, 6))),
    ):
        for mode in UpdateMode:
            result = distributed_mechanism(graph, mode=mode)
            exact = verify_against_centralized(result).ok
            ok = ok and exact
            table.add_row(
                family,
                mode.value,
                result.stages,
                result.report.total_messages,
                result.report.total_entries_sent,
                exact,
            )
    table.add_note("both modes must be exact; the trade is purely operational")
    return table, ok


def _restart_ablation(seed: int) -> Tuple[Table, bool]:
    table = Table(
        title="A2: Sect. 6 restart on network change",
        headers=["restart", "event", "mismatches after reconvergence"],
    )

    def run_once(restart: bool) -> int:
        graph = ring_graph(8, seed=seed, cost_sampler=integer_costs(1, 5))

        def factory(node_id, cost, policy):
            return PriceComputingNode(node_id, cost, policy, mode=UpdateMode.MONOTONE)

        engine = SynchronousEngine(
            graph, node_factory=factory, restart_on_events=restart
        )
        engine.initialize()
        engine.run()
        victim = graph.nodes[0]
        event = CostChange(victim, graph.cost(victim) * 3.0 + 1.0)
        event.apply(engine)
        report = engine.run()
        mutated = graph.with_cost(victim, graph.cost(victim) * 3.0 + 1.0)
        result = DistributedPriceResult(
            graph=mutated, engine=engine, report=report, mode=UpdateMode.MONOTONE
        )
        return len(verify_against_centralized(result).mismatches)

    with_restart = run_once(True)
    without_restart = run_once(False)
    table.add_row("on (paper)", "cost increase on a ring", with_restart)
    table.add_row("off (ablated)", "cost increase on a ring", without_restart)
    table.add_note(
        "without the restart, pre-event price candidates undercut the new "
        "true prices and the monotone minimum never recovers"
    )
    return table, with_restart == 0 and without_restart > 0


def _child_formula_ablation(seed: int, seeds_to_try: int) -> Tuple[Table, bool]:
    table = Table(
        title="A3: literal Eq. 3 vs advert-consistent child formula (async)",
        headers=["formula", "seeds", "seeds with wrong prices", "total mismatches"],
    )

    def scan(literal: bool) -> Tuple[int, int]:
        bad_seeds = 0
        mismatches = 0
        for s in range(seeds_to_try):
            graph = waxman_graph(12, seed=s)

            def factory(node_id, cost, policy):
                return PriceComputingNode(
                    node_id,
                    cost,
                    policy,
                    mode=UpdateMode.MONOTONE,
                    literal_child_formula=literal,
                )

            engine = AsynchronousEngine(
                graph, policy=LowestCostPolicy(), node_factory=factory, seed=s
            )
            engine.initialize()
            report = engine.run()
            result = DistributedPriceResult(
                graph=graph, engine=engine, report=report, mode=UpdateMode.MONOTONE
            )
            found = len(verify_against_centralized(result).mismatches)
            if found:
                bad_seeds += 1
                mismatches += found
        return bad_seeds, mismatches

    literal_bad, literal_mismatches = scan(True)
    fixed_bad, fixed_mismatches = scan(False)
    table.add_row("literal Eq. 3 (ablated)", seeds_to_try, literal_bad, literal_mismatches)
    table.add_row("advert-consistent (ours)", seeds_to_try, fixed_bad, fixed_mismatches)
    table.add_note(
        "the literal form assumes the child's advertised cost reflects the "
        "receiver's current cost; stale child adverts break that under asynchrony"
    )
    return table, fixed_bad == 0 and literal_bad > 0


def _fifo_ablation(seed: int, seeds_to_try: int) -> Tuple[Table, bool]:
    table = Table(
        title="A4: per-link FIFO delivery (async engine)",
        headers=["links", "seeds", "seeds with wrong state"],
    )

    def scan(fifo: bool) -> int:
        bad = 0
        for s in range(seeds_to_try):
            graph = random_biconnected_graph(
                9, 0.25, seed=s, cost_sampler=integer_costs(0, 5)
            )

            def factory(node_id, cost, policy):
                return PriceComputingNode(node_id, cost, policy)

            engine = AsynchronousEngine(
                graph,
                policy=LowestCostPolicy(),
                node_factory=factory,
                seed=s,
                fifo_links=fifo,
            )
            engine.initialize()
            report = engine.run()
            result = DistributedPriceResult(
                graph=graph, engine=engine, report=report, mode=UpdateMode.MONOTONE
            )
            if verify_against_centralized(result).mismatches:
                bad += 1
        return bad

    without = scan(False)
    with_fifo = scan(True)
    table.add_row("reordered (ablated)", seeds_to_try, without)
    table.add_row("FIFO (ours / TCP)", seeds_to_try, with_fifo)
    table.add_note(
        "without FIFO a newer routing table can be overtaken and overwritten "
        "by an older one; BGP gets FIFO for free from TCP"
    )
    return table, with_fifo == 0 and without > 0


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    seeds_to_try = 8 if scale == "small" else 16
    tables: List[Table] = []
    passed = True
    for builder in (
        lambda: _mode_comparison(seed),
        lambda: _restart_ablation(seed),
        lambda: _child_formula_ablation(seed, seeds_to_try),
        lambda: _fifo_ablation(seed, seeds_to_try),
    ):
        table, ok = builder()
        tables.append(table)
        passed = passed and ok
    return ExperimentResult(
        experiment_id="E15",
        title="Design-choice ablations",
        paper_artifact="(engineering companion; validates the DESIGN.md choices)",
        expectation="every disabled safeguard exhibits its failure; every "
        "enabled configuration is exact",
        tables=tables,
        passed=passed,
    )
