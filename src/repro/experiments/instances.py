"""Shared topology instance sets for the experiment harness.

Two scales are supported everywhere:

* ``small`` -- seconds-fast instances used by the test suite and the
  default benchmark runs;
* ``full``  -- the larger instances behind the numbers in
  EXPERIMENTS.md.

Instances are deterministic in (scale, seed), so every table in the
repository can be regenerated exactly.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.exceptions import ExperimentError
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import (
    barabasi_albert_graph,
    grid_graph,
    integer_costs,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
    waxman_graph,
    wheel_graph,
)

Instance = Tuple[str, ASGraph]

SCALES = ("small", "full")


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; use one of {SCALES}")


def standard_instances(scale: str = "small", seed: int = 0) -> List[Instance]:
    """The default family sweep used by most experiments."""
    _check_scale(scale)
    if scale == "small":
        return [
            ("ring", ring_graph(8, seed=seed, cost_sampler=integer_costs(1, 5))),
            ("wheel", wheel_graph(9, seed=seed, cost_sampler=integer_costs(0, 4))),
            ("grid", grid_graph(3, 4, seed=seed, cost_sampler=integer_costs(1, 6))),
            ("random", random_biconnected_graph(12, 0.25, seed=seed, cost_sampler=integer_costs(0, 5))),
            ("waxman", waxman_graph(12, seed=seed, cost_sampler=integer_costs(1, 8))),
            ("barabasi-albert", barabasi_albert_graph(14, seed=seed, cost_sampler=integer_costs(0, 5))),
            ("isp-like", isp_like_graph(16, seed=seed, cost_sampler=integer_costs(1, 6))),
        ]
    return [
        ("ring", ring_graph(24, seed=seed, cost_sampler=integer_costs(1, 5))),
        ("wheel", wheel_graph(25, seed=seed, cost_sampler=integer_costs(0, 4))),
        ("grid", grid_graph(5, 6, seed=seed, cost_sampler=integer_costs(1, 6))),
        ("random", random_biconnected_graph(30, 0.15, seed=seed, cost_sampler=integer_costs(0, 5))),
        ("waxman", waxman_graph(28, seed=seed, cost_sampler=integer_costs(1, 8))),
        ("barabasi-albert", barabasi_albert_graph(32, seed=seed, cost_sampler=integer_costs(0, 5))),
        ("isp-like", isp_like_graph(36, seed=seed, cost_sampler=integer_costs(1, 6))),
    ]


def seeded_instances(
    scale: str = "small",
    seeds: Tuple[int, ...] = (0, 1, 2),
) -> Iterator[Instance]:
    """The standard sweep replicated over several seeds, with the seed
    folded into the family label."""
    for seed in seeds:
        for family, graph in standard_instances(scale, seed=seed):
            yield (f"{family}/s{seed}", graph)
