"""E11: engine scaling (engineering, not a paper claim).

Compares the pure-Python reference engine against the vectorized scipy
engine on all-pairs LCP costs, and checks they agree.  This experiment
exists so the repository's performance story is measured rather than
asserted; it reproduces no specific paper artifact.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.analysis.report import Table
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.scipy_engine import all_pairs_costs


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sizes = (10, 20, 30) if scale == "small" else (20, 40, 80, 120)
    out = Table(
        title="All-pairs LCP cost: pure Python vs scipy",
        headers=["n", "m", "python s", "scipy s", "speedup", "max |diff|"],
    )
    passed = True
    for n in sizes:
        graph = isp_like_graph(n, seed=seed, cost_sampler=integer_costs(1, 9))

        start = time.perf_counter()
        routes = all_pairs_lcp(graph)
        python_s = time.perf_counter() - start

        start = time.perf_counter()
        matrix, index = all_pairs_costs(graph)
        scipy_s = time.perf_counter() - start

        reference = np.zeros_like(matrix)
        for (i, j), path in routes.paths.items():
            reference[index[i], index[j]] = routes.cost(i, j)
        max_diff = float(np.abs(matrix - reference).max())
        agree = max_diff <= 1e-9
        passed = passed and agree
        out.add_row(
            n,
            graph.num_edges,
            python_s,
            scipy_s,
            python_s / scipy_s if scipy_s > 0 else math.inf,
            max_diff,
        )
    out.add_note("integer costs keep both engines bit-exact; diffs must be ~0")
    return ExperimentResult(
        experiment_id="E11",
        title="Engine scaling",
        paper_artifact="(engineering companion; no paper table)",
        expectation="engines agree; the vectorized engine wins at scale",
        tables=[out],
        passed=passed,
    )
