"""E11: engine scaling (engineering, not a paper claim).

Compares every engine registered in :mod:`repro.routing.engines` --
serial pure-Python reference, vectorized scipy, multiprocessing
parallel -- on all-pairs LCP costs *and* all-pairs Theorem 1 prices,
and checks they agree with the reference answers.  This experiment
exists so the repository's performance story is measured rather than
asserted; it reproduces no specific paper artifact.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.report import Table
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.mechanism.vcg import PriceTable
from repro.routing.engines import Engine, engine_names, get_engine

#: Agreement tolerance for differently-associated float arithmetic.
_AGREE_EPS = 1e-9


def _price_agreement(reference: PriceTable, candidate: PriceTable) -> float:
    """Max |price difference| over the union of stored entries."""
    worst = 0.0
    pairs = set(reference.rows) | set(candidate.rows)
    for pair in sorted(pairs):
        ref_row = reference.rows.get(pair, {})
        cand_row = candidate.rows.get(pair, {})
        for k in sorted(set(ref_row) | set(cand_row)):
            worst = max(worst, abs(ref_row.get(k, 0.0) - cand_row.get(k, 0.0)))
    return worst


def _engines_under_test(engine: Optional[str]) -> List[Tuple[str, Engine]]:
    """The engines the experiment compares (reference always first)."""
    names = [engine] if engine is not None else list(engine_names())
    if "reference" in names:
        names.remove("reference")
    ordered = ["reference"] + sorted(names)
    instances: List[Tuple[str, Engine]] = []
    for name in ordered:
        # Pin two workers so the parallel path is a real multi-process
        # run regardless of host core count.
        options = {"workers": 2} if name == "parallel" else {}
        instances.append((name, get_engine(name, **options)))
    return instances


def run(scale: str = "small", seed: int = 0, engine: Optional[str] = None) -> ExperimentResult:
    sizes = (10, 20, 30) if scale == "small" else (20, 40, 80, 120)
    engines = _engines_under_test(engine)
    out = Table(
        title="All-pairs LCP costs and VCG prices, per engine",
        headers=["n", "m", "engine", "costs s", "prices s", "speedup", "max |diff|"],
    )
    passed = True
    for n in sizes:
        graph = isp_like_graph(n, seed=seed, cost_sampler=integer_costs(1, 9))
        reference_seconds = 0.0
        reference_matrix: Optional[np.ndarray] = None
        reference_table: Optional[PriceTable] = None
        for name, instance in engines:
            start = time.perf_counter()
            costs = instance.cost_matrix(graph)
            costs_s = time.perf_counter() - start

            start = time.perf_counter()
            table = instance.price_table(graph)
            prices_s = time.perf_counter() - start

            if reference_matrix is None or reference_table is None:
                reference_seconds = costs_s + prices_s
                reference_matrix = costs.matrix
                reference_table = table
                max_diff = 0.0
            else:
                cost_diff = float(np.abs(costs.matrix - reference_matrix).max())
                max_diff = max(cost_diff, _price_agreement(reference_table, table))
            agree = max_diff <= _AGREE_EPS
            passed = passed and agree
            total = costs_s + prices_s
            out.add_row(
                n,
                graph.num_edges,
                name,
                costs_s,
                prices_s,
                reference_seconds / total if total > 0 else math.inf,
                max_diff,
            )
    out.add_note(
        "speedup is vs the reference engine's total (costs + prices) on "
        "the same instance; integer costs keep diffs ~0"
    )
    return ExperimentResult(
        experiment_id="E11",
        title="Engine scaling",
        paper_artifact="(engineering companion; no paper table)",
        expectation="all registered engines agree; accelerated engines win at scale",
        tables=[out],
        passed=passed,
    )
