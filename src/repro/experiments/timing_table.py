"""E18: timing realism -- link delays and MRAI vs the synchronous bound.

Section 5 measures convergence in synchronous stages and Theorem 2
bounds them by ``max(d, d')``.  Real BGP runs on per-link propagation
delays, jitter, and MRAI hold-down timers; this experiment drives the
discrete-event substrate (:mod:`repro.bgp.timed`) across a grid of
delay distributions and MRAI configurations and puts the results next
to the synchronous baseline.  Two claims:

* *correctness is timing-independent*: every configuration converges to
  exactly the centralized LCPs and VCG prices
  (:func:`~repro.core.protocol.verify_against_centralized`);
* *cost is not*: deliveries, transported rows, and virtual convergence
  time move with the timing model -- MRAI trades latency for a large
  reduction in messages (the coalesced-rows column), exactly the
  BGP-literature tradeoff.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.bgp.delays import ConstantDelay, DelayModel, LogNormalDelay, UniformDelay
from repro.bgp.timed import MRAI_PEER, MRAI_PREFIX, MRAIConfig
from repro.core.convergence import convergence_bound
from repro.core.protocol import (
    distributed_mechanism,
    timed_mechanism,
    verify_against_centralized,
)
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult

#: The delay/MRAI grid: a zero-delay determinism anchor, the async
#: engine's uniform jitter, and two MRAI configurations (peer-based
#: with jitter, prefix-based over a heavy-tailed delay).
SETTINGS: List[Tuple[str, DelayModel, Optional[MRAIConfig]]] = [
    ("zero delay, MRAI off", ConstantDelay(0.0), None),
    ("uniform [0.1,1.0], MRAI off", UniformDelay(0.1, 1.0), None),
    (
        "uniform [0.1,1.0], peer MRAI 1s (25% jitter)",
        UniformDelay(0.1, 1.0),
        MRAIConfig(1.0, MRAI_PEER, jitter=0.25),
    ),
    (
        "lognormal(-2,0.8), prefix MRAI 1s",
        LogNormalDelay(-2.0, 0.8),
        MRAIConfig(1.0, MRAI_PREFIX),
    ),
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    baseline = Table(
        title="Synchronous baseline (Sect. 5 stages vs Theorem 2 bound)",
        headers=["family", "n", "max(d,d')", "stages", "within bound", "rows sent"],
    )
    timing = Table(
        title="Timed substrate across delay/MRAI settings",
        headers=[
            "family",
            "setting",
            "deliveries",
            "conv time (s)",
            "rows sent",
            "rows coalesced",
            "prices match",
        ],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        bound = convergence_bound(graph)
        sync = distributed_mechanism(graph)
        sync_ok = verify_against_centralized(sync).ok
        within = sync.stages <= bound.stages
        passed = passed and within and sync_ok
        baseline.add_row(
            family,
            graph.num_nodes,
            bound.stages,
            sync.stages,
            within,
            sync.report.total_rows_sent,
        )
        for label, delay, mrai in SETTINGS:
            result = timed_mechanism(graph, seed=seed, delay=delay, mrai=mrai)
            verification = verify_against_centralized(result)
            report = result.report
            passed = passed and verification.ok and report.converged
            timing.add_row(
                family,
                label,
                report.deliveries,
                round(report.convergence_time, 3),
                report.rows_sent,
                report.mrai_rows_coalesced,
                verification.ok,
            )
    timing.add_note(
        "every setting converges to the centralized LCPs and VCG prices; "
        "MRAI coalesces rows (messages down) at the cost of virtual time"
    )
    return ExperimentResult(
        experiment_id="E18",
        title="Timing realism: delays & MRAI vs the synchronous bound",
        paper_artifact="the Sect. 5 stage model under realistic timing",
        expectation=(
            "routes and prices are timing-independent; communication and "
            "convergence time are not"
        ),
        tables=[baseline, timing],
        passed=passed,
    )
