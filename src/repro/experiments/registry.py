"""Experiment registry and result type."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.analysis.report import Table
from repro.exceptions import ExperimentError


@dataclass
class ExperimentResult:
    """The rendered outcome of one experiment."""

    experiment_id: str
    title: str
    paper_artifact: str
    expectation: str
    tables: List[Table] = field(default_factory=list)
    passed: bool = False

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = [
            f"[{self.experiment_id}] {self.title}  --  {status}",
            f"paper artifact: {self.paper_artifact}",
            f"expectation:    {self.expectation}",
            "",
        ]
        parts.extend(table.render() + "\n" for table in self.tables)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        status = "**PASS**" if self.passed else "**FAIL**"
        parts = [
            f"## {self.experiment_id}: {self.title} — {status}",
            "",
            f"*Paper artifact*: {self.paper_artifact}",
            "",
            f"*Expectation*: {self.expectation}",
            "",
        ]
        parts.extend(table.to_markdown() + "\n" for table in self.tables)
        return "\n".join(parts)


#: experiment id -> (module name, title)
EXPERIMENTS: Dict[str, Tuple[str, str]] = {
    "E1": ("repro.experiments.fig1", "Figure 1 worked example"),
    "E2": ("repro.experiments.fig2", "Figure 2 route tree T(Z)"),
    "E3": ("repro.experiments.price_agreement", "Distributed prices = centralized VCG"),
    "E4": ("repro.experiments.strategyproofness", "Theorem 1 strategyproofness"),
    "E5": ("repro.experiments.convergence_table", "Theorem 2 convergence bound"),
    "E6": ("repro.experiments.state_table", "Theorem 2 state & communication"),
    "E7": ("repro.experiments.overpayment_table", "Section 7 overcharging"),
    "E8": ("repro.experiments.baseline_table", "Nisan-Ronen / Hershberger-Suri baselines"),
    "E9": ("repro.experiments.bgp_table", "BGP substrate & hop-count baseline"),
    "E10": ("repro.experiments.dynamics_table", "Reconvergence under dynamics"),
    "E11": ("repro.experiments.scaling_table", "Engine scaling"),
    "E12": ("repro.experiments.accounting_table", "Section 6.4 accounting"),
    "E13": ("repro.experiments.edgecost_table", "Per-neighbor cost extension"),
    "E14": ("repro.experiments.capacity_table", "Capacities and congestion (open problem probe)"),
    "E15": ("repro.experiments.ablation_table", "Design-choice ablations"),
    "E16": ("repro.experiments.policy_table", "Policy routing (valley-free) vs the paper's LCP model"),
    "E17": ("repro.experiments.manipulation_table", "Protocol manipulation (Sect. 7 closing open problem)"),
    "E18": ("repro.experiments.timing_table", "Timing realism: delays & MRAI vs the synchronous bound"),
}


def list_experiments() -> List[Tuple[str, str]]:
    """``(id, title)`` pairs in definition order."""
    return [(eid, title) for eid, (_module, title) in EXPERIMENTS.items()]


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable for an experiment id."""
    try:
        module_name, _title = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    module = importlib.import_module(module_name)
    return module.run
