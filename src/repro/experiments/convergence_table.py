"""E5: the Theorem 2 convergence table.

Per instance: ``n``, ``d`` (max LCP hops), ``d'`` (max k-avoiding
hops), the bound ``max(d, d')``, the measured stages for plain BGP
(paper: <= d) and for the full price computation (paper: <= max(d, d')).
The isp-like rows also exhibit the Sect. 6.2 remark that ``d'`` stays
close to ``d`` on Internet-like topologies.
"""

from __future__ import annotations

from repro.analysis.convergence_stats import convergence_sweep
from repro.analysis.report import Table
from repro.core.price_node import UpdateMode
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = convergence_sweep(
        standard_instances(scale, seed=seed), mode=UpdateMode.MONOTONE
    )
    out = Table(
        title="Convergence stages vs Theorem 2 bound",
        headers=[
            "family",
            "n",
            "m",
            "d",
            "d'",
            "bound",
            "BGP stages",
            "FPSS stages",
            "within bound",
            "prices ok",
        ],
    )
    passed = True
    for row in rows:
        bgp_ok = row.stages_routes_only <= row.d
        passed = passed and row.within_bound and row.prices_correct and bgp_ok
        out.add_row(
            row.family,
            row.n,
            row.m,
            row.d,
            row.d_prime,
            row.bound,
            row.stages_routes_only,
            row.stages_with_prices,
            row.within_bound,
            row.prices_correct,
        )
    out.add_note("plain BGP must converge within d stages; FPSS within max(d, d')")
    return ExperimentResult(
        experiment_id="E5",
        title="Theorem 2 convergence bound",
        paper_artifact="Lemma 2, Corollary 1, Theorem 2",
        expectation="measured stages never exceed d (routes) / max(d, d') (prices)",
        tables=[out],
        passed=passed,
    )
