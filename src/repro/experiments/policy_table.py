"""E16: policy routing -- quantifying what the paper set aside.

The paper models every AS as a lowest-cost router and admits this
ignores real policies ("most ASs do not accept transit traffic from
peers, only from customers", footnote 2; extending the mechanism to
policies is the Sect. 7 future-work direction).  This experiment runs
Gao-Rexford valley-free routing on the ISP-like family and measures
the gap against the paper's unrestricted LCPs:

* the protocol converges (Gao-Rexford conditions hold by construction);
* every selected route is valley-free;
* some pairs lose reachability and the rest pay a cost stretch -- the
  price of policy compliance the paper's model does not see.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import integer_costs, isp_like_graph
from repro.policy import annotate_isp_hierarchy, is_valley_free, run_policy_routing
from repro.routing.allpairs import all_pairs_lcp


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sizes = (12, 16, 20) if scale == "small" else (16, 24, 32, 40)
    out = Table(
        title="Valley-free policy routing vs unrestricted LCPs",
        headers=[
            "n",
            "stages",
            "hierarchy acyclic",
            "reachable pairs",
            "of",
            "valley violations",
            "mean stretch",
            "max stretch",
        ],
    )
    passed = True
    for n in sizes:
        graph = isp_like_graph(n, seed=seed, cost_sampler=integer_costs(1, 6))
        core = max(3, int(round(n * 0.2)))
        relationships = annotate_isp_hierarchy(graph, core_size=core)
        acyclic = relationships.is_provider_customer_acyclic()

        result = run_policy_routing(graph, relationships)
        routes = result.routes_by_pair()
        total_pairs = n * (n - 1)

        violations = sum(
            1 for path in routes.values() if not is_valley_free(path, relationships)
        )
        lcp = all_pairs_lcp(graph)
        stretches = []
        for (source, destination), path in routes.items():
            policy_cost = graph.path_cost(path) if len(path) >= 2 else 0.0
            lcp_cost = lcp.cost(source, destination)
            if policy_cost + 1e-12 < lcp_cost:
                passed = False  # policy routing cannot beat the LCP
            if lcp_cost > 0:
                stretches.append(policy_cost / lcp_cost)
        mean_stretch = sum(stretches) / len(stretches) if stretches else 1.0
        max_stretch = max(stretches, default=1.0)

        row_ok = acyclic and violations == 0 and len(routes) <= total_pairs
        passed = passed and row_ok
        out.add_row(
            n,
            result.stages,
            acyclic,
            len(routes),
            total_pairs,
            violations,
            mean_stretch,
            max_stretch,
        )
    out.add_note(
        "reachability below n(n-1) and stretch above 1 are the costs of "
        "valley-free export that the paper's all-LCP model abstracts away"
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Policy routing (valley-free) vs the paper's LCP model",
        paper_artifact="footnote 2 and the Sect. 7 policy-routing future work",
        expectation="Gao-Rexford routing converges, stays valley-free, and "
        "never beats the LCP cost; the reachability/stretch gap is measured",
        tables=[out],
        passed=passed,
    )
