"""E9: the BGP substrate itself, and the hop-count baseline.

Two claims from the paper's framing:

* Section 5: plain BGP (lowest-cost policy) converges within ``d``
  stages and matches the centralized LCPs.
* Section 1's caveat: unmodified BGP routes by hop count; the
  experiment measures the transit-cost penalty ("stretch") that the
  paper's trivial lowest-cost modification removes.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.baselines.hopcount_bgp import route_stretch
from repro.bgp.engine import SynchronousEngine
from repro.bgp.timed import TimedEngine
from repro.core.convergence import convergence_bound
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.routing.allpairs import all_pairs_lcp


def run(scale: str = "small", seed: int = 0, protocol: str = "delta") -> ExperimentResult:
    """*protocol* selects the transport: ``delta`` (incremental, the
    default), ``full`` (the literal full-table model), or ``timed``
    (the discrete-event simulator; virtual time replaces stages).  All
    model measures are identical between delta and full; the rows
    columns show what the delta transport saves."""
    if protocol == "timed":
        return _run_timed(scale, seed)
    incremental = protocol != "full"
    substrate = Table(
        title=f"Plain BGP substrate (Sect. 5; {protocol} transport)",
        headers=[
            "family",
            "n",
            "d",
            "stages",
            "within d",
            "routes match",
            "rows sent",
            "rows saved",
        ],
    )
    stretch_table = Table(
        title="Hop-count BGP vs lowest-cost routing (Sect. 1 caveat)",
        headers=[
            "family",
            "n",
            "pairs",
            "suboptimal pairs",
            "mean stretch",
            "max stretch",
            "aggregate stretch",
        ],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        bound = convergence_bound(graph)
        engine = SynchronousEngine(graph, incremental=incremental)
        engine.initialize()
        report = engine.run()
        routes = all_pairs_lcp(graph)
        match = all(
            engine.node(source).route(destination) is not None
            and engine.node(source).route(destination).path
            == routes.path(source, destination)
            for source in graph.nodes
            for destination in graph.nodes
            if source != destination
        )
        within = report.stages <= bound.d
        passed = passed and within and match
        substrate.add_row(
            family,
            graph.num_nodes,
            bound.d,
            report.stages,
            within,
            match,
            report.total_rows_sent,
            report.total_rows_suppressed,
        )

        stretch = route_stretch(graph)
        stretch_table.add_row(
            family,
            graph.num_nodes,
            stretch.pairs,
            stretch.pairs_suboptimal,
            stretch.mean_stretch,
            stretch.max_stretch,
            stretch.aggregate_stretch,
        )
    stretch_table.add_note(
        "stretch = transit cost of the hop-count route / transit cost of the LCP"
    )
    return ExperimentResult(
        experiment_id="E9",
        title="BGP substrate & hop-count baseline",
        paper_artifact="the Sect. 5 computational model and the Sect. 1 hop-count caveat",
        expectation="BGP matches centralized LCPs within d stages; hop-count stretch >= 1",
        tables=[substrate, stretch_table],
        passed=passed,
    )


def _run_timed(scale: str, seed: int) -> ExperimentResult:
    """E9 on the timed substrate: stages give way to virtual time, but
    the converged routes still match the centralized LCPs exactly."""
    substrate = Table(
        title="Plain BGP substrate (timed discrete-event transport)",
        headers=[
            "family",
            "n",
            "deliveries",
            "virtual time (s)",
            "routes match",
            "rows sent",
            "rows saved",
        ],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        engine = TimedEngine(graph, seed=seed)
        engine.initialize()
        report = engine.run()
        routes = all_pairs_lcp(graph)
        match = all(
            engine.node(source).route(destination) is not None
            and engine.node(source).route(destination).path
            == routes.path(source, destination)
            for source in graph.nodes
            for destination in graph.nodes
            if source != destination
        )
        passed = passed and match and report.converged
        substrate.add_row(
            family,
            graph.num_nodes,
            report.deliveries,
            round(report.convergence_time, 3),
            match,
            report.rows_sent,
            report.rows_suppressed,
        )
    substrate.add_note(
        "uniform [0.1, 1.0] s link jitter, MRAI off; seeded and reproducible"
    )
    return ExperimentResult(
        experiment_id="E9",
        title="BGP substrate & hop-count baseline",
        paper_artifact="the Sect. 5 computational model on the timed substrate",
        expectation="timed BGP converges to the centralized LCPs under link jitter",
        tables=[substrate],
        passed=passed,
    )
