"""E7: Section 7 overcharging.

The VCG payments always (weakly) exceed the true cost of the chosen
path; the paper's Y -> Z example pays 9x.  The experiment reproduces
the example exactly and tabulates the overpayment-ratio distribution
per topology family: rings (one long detour per node) overcharge
heavily, dense Internet-like graphs only mildly.
"""

from __future__ import annotations

import math

from repro.analysis.frugality import frugality_sweep
from repro.analysis.report import Table
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import FIG1_LABELS, fig1_graph
from repro.mechanism.overpayment import overpayment_ratio
from repro.mechanism.vcg import compute_price_table


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    label = FIG1_LABELS
    graph = fig1_graph()
    table = compute_price_table(graph)
    yz_ratio = overpayment_ratio(table, label["Y"], label["Z"])
    xz_ratio = overpayment_ratio(table, label["X"], label["Z"])

    example = Table(
        title="Figure 1 overcharging examples (Sect. 4 / Sect. 7)",
        headers=["pair", "LCP cost", "total payment", "ratio", "paper ratio"],
    )
    example.add_row(
        "X->Z", table.routes.cost(label["X"], label["Z"]),
        table.total_price(label["X"], label["Z"]), xz_ratio, 7.0 / 3.0,
    )
    example.add_row(
        "Y->Z", table.routes.cost(label["Y"], label["Z"]),
        table.total_price(label["Y"], label["Z"]), yz_ratio, 9.0,
    )

    rows = frugality_sweep(standard_instances(scale, seed=seed))
    sweep = Table(
        title="Overpayment ratios per family",
        headers=["family", "n", "m", "mean", "median", "max", "aggregate"],
    )
    ratios_sane = True
    for row in rows:
        ratios_sane = ratios_sane and row.mean_ratio >= 1.0 - 1e-9
        sweep.add_row(
            row.family, row.n, row.m,
            row.mean_ratio, row.median_ratio, row.max_ratio, row.aggregate_ratio,
        )
    sweep.add_note(
        "ratio = (sum of per-packet VCG prices) / (transit cost of the LCP); "
        "always >= 1, largest for sparse topologies with long detours (rings)"
    )

    ring_row = next(row for row in rows if row.family == "ring")
    dense_rows = [row for row in rows if row.family in ("isp-like", "wheel")]
    shape_holds = all(ring_row.mean_ratio >= row.mean_ratio for row in dense_rows)

    passed = (
        math.isclose(yz_ratio, 9.0, abs_tol=1e-9)
        and math.isclose(xz_ratio, 7.0 / 3.0, abs_tol=1e-9)
        and ratios_sane
        and shape_holds
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Section 7 overcharging",
        paper_artifact="the overcharging discussion and examples of Sections 4 and 7",
        expectation=(
            "Y->Z pays 9 for cost 1; ratios always >= 1; sparse families "
            "overcharge more than dense ones"
        ),
        tables=[example, sweep],
        passed=passed,
    )
