"""E3: the distributed protocol computes exactly the Theorem 1 prices.

For every topology family, run the FPSS protocol (monotone and
recompute modes, synchronous engine; plus an asynchronous run) and
compare all n(n-1) routes and every per-pair price row against the
centralized mechanism.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.core.price_node import UpdateMode
from repro.core.protocol import distributed_mechanism, verify_against_centralized
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.mechanism.vcg import compute_price_table


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    out = Table(
        title="Distributed vs centralized prices (paper Fig. 3 / Sect. 6.2)",
        headers=[
            "family",
            "n",
            "mode",
            "engine",
            "stages",
            "pairs",
            "prices",
            "mismatches",
        ],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        reference = compute_price_table(graph)
        for mode in (UpdateMode.MONOTONE, UpdateMode.RECOMPUTE):
            result = distributed_mechanism(graph, mode=mode)
            verification = verify_against_centralized(result, table=reference)
            passed = passed and verification.ok
            out.add_row(
                family,
                graph.num_nodes,
                mode.value,
                "sync",
                result.stages,
                verification.pairs_checked,
                verification.prices_checked,
                len(verification.mismatches),
            )
        async_result = distributed_mechanism(
            graph, mode=UpdateMode.MONOTONE, asynchronous=True, seed=seed
        )
        async_verification = verify_against_centralized(async_result, table=reference)
        passed = passed and async_verification.ok
        out.add_row(
            family,
            graph.num_nodes,
            UpdateMode.MONOTONE.value,
            "async",
            "-",
            async_verification.pairs_checked,
            async_verification.prices_checked,
            len(async_verification.mismatches),
        )
    out.add_note(
        "async rows have no stage count: the event-driven engine has no "
        "synchronous stages (correctness only)"
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Distributed prices = centralized VCG",
        paper_artifact="the algorithm of Fig. 3 and its correctness argument (Sect. 6.2)",
        expectation="zero mismatches on every pair, every mode, every engine",
        tables=[out],
        passed=passed,
    )
