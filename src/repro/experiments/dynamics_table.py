"""E10: reconvergence after route changes.

Section 6 states that convergence (routes and prices) restarts whenever
a route changes.  The experiment scripts a failure / recovery / cost
re-declaration sequence on each family, reconverges after every event,
and checks that (a) prices equal the centralized mechanism on the
mutated graph and (b) the reconvergence stages respect the mutated
instance's ``max(d, d')``.

Events are chosen to preserve biconnectivity (otherwise the mechanism
is undefined, and :mod:`repro.core.dynamics` refuses to proceed).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.report import Table
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery, NetworkEvent
from repro.core.dynamics import dynamic_scenario
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.graphs.asgraph import ASGraph
from repro.graphs.biconnectivity import is_biconnected


def _removable_edge(graph: ASGraph) -> Optional[Tuple[int, int]]:
    """An edge whose removal keeps the graph biconnected."""
    for u, v in graph.edges:
        if is_biconnected(graph.without_edge(u, v)):
            return (u, v)
    return None


def _script_for(graph: ASGraph) -> List[NetworkEvent]:
    events: List[NetworkEvent] = []
    edge = _removable_edge(graph)
    if edge is not None:
        events.append(LinkFailure(*edge))
        events.append(LinkRecovery(*edge))
    # Double the cost of the busiest node (ties broken by id).
    busiest = max(graph.nodes, key=lambda node: (graph.degree(node), -node))
    events.append(CostChange(busiest, graph.cost(busiest) * 2.0 + 1.0))
    return events


def run(
    scale: str = "small",
    seed: int = 0,
    engine: Optional[str] = None,
    protocol: str = "delta",
) -> ExperimentResult:
    """*engine* selects the centralized verification backend (e.g.
    ``incremental`` reuses cached route trees across the event script);
    *protocol* selects the BGP transport (``delta`` | ``full``).  Both
    are forwarded from the CLI's ``--engine`` / ``--protocol`` flags and
    never change the verdict -- every backend/transport is held to the
    same bit-identical routes and tolerance-checked prices.
    """
    out = Table(
        title="Reconvergence under dynamics (Sect. 6)",
        headers=[
            "family",
            "event",
            "restart stages",
            "cold stages",
            "bound",
            "within",
            "prices ok",
        ],
    )
    bgp_warm = Table(
        title="Plain-BGP warm reconvergence (routes only, for comparison)",
        headers=["family", "event", "warm stages", "d"],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        events = _script_for(graph)
        run_result = dynamic_scenario(
            graph, events, engine=engine, protocol=protocol
        )
        for epoch in run_result.epochs:
            passed = passed and epoch.ok and epoch.within_bound
            out.add_row(
                family,
                epoch.description,
                epoch.stages,
                epoch.cold_stages,
                epoch.bound.stages,
                epoch.within_bound,
                epoch.ok,
            )
        # Plain BGP is left warm across events (no restart): measure its
        # incremental route reconvergence for comparison.
        from repro.bgp.engine import SynchronousEngine
        from repro.core.convergence import convergence_bound
        from repro.core.dynamics import apply_event_to_graph

        warm_bgp = SynchronousEngine(graph)
        warm_bgp.initialize()
        warm_bgp.run()
        current = graph
        for event in events:
            current = apply_event_to_graph(current, event)
            event.apply(warm_bgp)
            report = warm_bgp.run()
            bgp_warm.add_row(
                family, event.describe(), report.stages, convergence_bound(current).d
            )
    out.add_note(
        "a network event triggers the Sect. 6 restart: the price network "
        "reconverges from scratch on the mutated topology, so restart stages "
        "must respect the new instance's max(d, d'); cold stages cross-check "
        "with a fresh engine"
    )
    bgp_warm.add_note(
        "plain BGP needs no restart; warm incremental reconvergence can be "
        "faster or slower than d (path exploration) and is reported unasserted"
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Reconvergence under dynamics",
        paper_artifact="Sect. 6's restart-on-route-change model",
        expectation="after every event the network reconverges to the mutated "
        "instance's exact prices; from-scratch convergence respects max(d, d')",
        tables=[out, bgp_warm],
        passed=passed,
    )
