"""E4: strategyproofness and the zero-payment property (Theorem 1).

Two empirical checks:

* **No profitable lies.**  For every node, a grid of over- and
  under-declarations plus random lies; the maximum utility gain over
  truth must be <= 0 (up to float noise).
* **No payment without transit.**  Nodes carrying no transit traffic
  under the declared routing receive exactly zero.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.mechanism.strategyproof import most_profitable, sweep_deviations
from repro.mechanism.vcg import compute_price_table, payments
from repro.traffic.generators import gravity_traffic

GAIN_TOLERANCE = 1e-9


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    lies_table = Table(
        title="Unilateral deviations (Theorem 1)",
        headers=["family", "n", "lies tested", "max gain", "profitable lies"],
    )
    zero_table = Table(
        title="No payment without transit (Theorem 1 precondition)",
        headers=["family", "n", "idle nodes", "max idle payment"],
    )
    passed = True
    random_lies = 2 if scale == "small" else 4
    for family, graph in standard_instances(scale, seed=seed):
        traffic = gravity_traffic(graph, seed=seed)
        traffic_map = dict(traffic.items())

        outcomes = sweep_deviations(
            graph, traffic_map, extra_random_lies=random_lies, seed=seed
        )
        worst = most_profitable(outcomes)
        profitable = sum(1 for outcome in outcomes if outcome.profitable)
        passed = passed and profitable == 0
        lies_table.add_row(
            family,
            graph.num_nodes,
            len(outcomes),
            worst.gain if worst else 0.0,
            profitable,
        )

        table = compute_price_table(graph)
        paid = payments(table, traffic_map)
        idle = [
            node
            for node in graph.nodes
            if not any(
                table.routes.indicator(node, i, j) and traffic_map.get((i, j), 0.0)
                for (i, j) in traffic_map
            )
        ]
        max_idle_payment = max((abs(paid[node]) for node in idle), default=0.0)
        passed = passed and max_idle_payment <= GAIN_TOLERANCE
        zero_table.add_row(family, graph.num_nodes, len(idle), max_idle_payment)

    lies_table.add_note(
        "gain = utility(lie) - utility(truth); strategyproofness demands <= 0"
    )
    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 1 strategyproofness",
        paper_artifact="Theorem 1 (uniqueness of the strategyproof pricing scheme)",
        expectation="no lie ever gains utility; idle nodes are paid exactly zero",
        tables=[lies_table, zero_table],
        passed=passed,
    )
