"""E13: the per-neighbor cost extension (Section 3's parenthetical).

Three checks:

* **Degeneration.**  Embedding a base instance with uniform
  per-neighbor costs reproduces the Theorem 1 routes and prices
  exactly.
* **Distributed agreement.**  On genuinely per-neighbor costs, the
  BGP-based computation matches the centralized extension on every
  pair.
* **Strategyproofness.**  Vector-valued lies (per-neighbor
  over/under-declarations and random vectors) never gain utility.
"""

from __future__ import annotations

import random

from repro.analysis.report import Table
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.extensions.edgecost import (
    EdgeCostGraph,
    compute_edgecost_price_table,
    edgecost_utility,
    run_edgecost_mechanism,
    verify_edgecost_result,
)
from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import compute_price_table


def _randomize_forwarding(graph: ASGraph, seed: int) -> EdgeCostGraph:
    rng = random.Random(seed)
    forwarding = {
        node: {
            neighbor: float(rng.randint(0, 6)) for neighbor in graph.neighbors(node)
        }
        for node in graph.nodes
    }
    return EdgeCostGraph(edges=graph.edges, forwarding_costs=forwarding)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    degen = Table(
        title="Uniform embedding degenerates to Theorem 1",
        headers=["family", "n", "pairs", "path mismatches", "max |price diff|"],
    )
    agree = Table(
        title="Distributed vs centralized (per-neighbor costs)",
        headers=["family", "n", "stages", "pairs", "prices", "mismatches"],
    )
    sp = Table(
        title="Vector-lie deviations",
        headers=["family", "n", "lies tested", "max gain"],
    )
    passed = True
    instances = standard_instances(scale, seed=seed)
    if scale == "small":
        instances = instances[:5]
    rng = random.Random(seed)
    for family, graph in instances:
        # --- degeneration ---------------------------------------------
        uniform = EdgeCostGraph.from_uniform(graph)
        base = compute_price_table(graph)
        ext = compute_edgecost_price_table(uniform)
        path_mismatches = 0
        max_diff = 0.0
        pairs = 0
        for pair, row in base.items():
            pairs += 1
            if ext.path(*pair) != base.routes.path(*pair):
                path_mismatches += 1
                continue
            for k, price in row.items():
                max_diff = max(max_diff, abs(ext.price(k, *pair) - price))
        degen_ok = path_mismatches == 0 and max_diff <= 1e-9
        passed = passed and degen_ok
        degen.add_row(family, graph.num_nodes, pairs, path_mismatches, max_diff)

        # --- distributed agreement on random per-neighbor costs --------
        instance = _randomize_forwarding(graph, seed=seed + graph.num_nodes)
        result = run_edgecost_mechanism(instance)
        verification = verify_edgecost_result(result)
        passed = passed and verification.ok
        agree.add_row(
            family,
            graph.num_nodes,
            result.stages,
            verification.pairs_checked,
            verification.prices_checked,
            len(verification.mismatches),
        )

        # --- strategyproofness against vector lies ---------------------
        traffic = {
            (i, j): 1.0
            for i in instance.nodes
            for j in instance.nodes
            if i != j
        }
        lies = 0
        max_gain = 0.0
        probe_nodes = list(instance.nodes)[:: max(1, len(instance.nodes) // 4)]
        for k in probe_nodes:
            truthful = edgecost_utility(instance, k, None, traffic)
            neighbors = instance.neighbors(k)
            vectors = [
                {v: instance.forwarding_cost(k, v) * 2.0 + 1.0 for v in neighbors},
                {v: instance.forwarding_cost(k, v) * 0.5 for v in neighbors},
                {v: float(rng.randint(0, 10)) for v in neighbors},
            ]
            for vector in vectors:
                lies += 1
                gain = edgecost_utility(instance, k, vector, traffic) - truthful
                max_gain = max(max_gain, gain)
        passed = passed and max_gain <= 1e-9
        sp.add_row(family, graph.num_nodes, lies, max_gain)

    degen.add_note("c_k(v) = c_k for all v must reproduce the base mechanism bit for bit")
    sp.add_note("a node's type is its whole per-neighbor cost vector; gains must be <= 0")
    return ExperimentResult(
        experiment_id="E13",
        title="Per-neighbor cost extension",
        paper_artifact="Section 3's parenthetical generalization to per-edge costs "
        "with node agents",
        expectation="degenerates to Theorem 1; distributed matches centralized; "
        "no vector lie profits",
        tables=[degen, agree, sp],
        passed=passed,
    )
