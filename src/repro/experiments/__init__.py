"""The experiment harness: one module per reproduced figure/table/claim.

Every experiment implements ``run(scale, seed) -> ExperimentResult`` and
is registered in :mod:`repro.experiments.registry` under its DESIGN.md
id (E1..E12).  The benchmarks in ``benchmarks/`` and the CLI both drive
these entry points, so the artifact printed by
``repro-experiments all`` is the reproduction.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    list_experiments,
)
from repro.experiments.runner import run_all, run_experiment, write_experiments_md

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_all",
    "run_experiment",
    "write_experiments_md",
]
