"""E12: using the prices (Section 6.4).

Drive a traffic matrix through per-source packet tallies, settle, and
compare node revenues against the Theorem 1 payments
``p_k = sum_ij T_ij p^k_ij``.  Also checks the paper's storage remark:
a source's tally needs at most one counter per other node (O(n)).
"""

from __future__ import annotations

from repro.accounting.settlement import run_accounting
from repro.analysis.report import Table
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.mechanism.vcg import compute_price_table
from repro.traffic.generators import gravity_traffic, sparse_traffic


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    out = Table(
        title="Tallies + settlement vs Theorem 1 payments (Sect. 6.4)",
        headers=[
            "family",
            "n",
            "traffic",
            "packets",
            "settled total",
            "reference total",
            "max node diff",
        ],
    )
    passed = True
    for family, graph in standard_instances(scale, seed=seed):
        table = compute_price_table(graph)
        for traffic_name, traffic in (
            ("gravity", gravity_traffic(graph, seed=seed)),
            ("sparse", sparse_traffic(graph, density=0.3, seed=seed)),
        ):
            report, reference = run_accounting(table, traffic)
            max_diff = max(
                (
                    abs(report.revenue.get(node, 0.0) - reference.get(node, 0.0))
                    for node in graph.nodes
                ),
                default=0.0,
            )
            scale_ref = max(1.0, sum(abs(v) for v in reference.values()))
            ok = max_diff <= 1e-9 * scale_ref + 1e-9
            passed = passed and ok
            out.add_row(
                family,
                graph.num_nodes,
                traffic_name,
                traffic.total_packets,
                report.total(),
                float(sum(reference.values())),
                max_diff,
            )
    out.add_note("per-source tallies drained into one settlement must equal "
                 "p_k = sum_ij T_ij p^k_ij for every node")
    return ExperimentResult(
        experiment_id="E12",
        title="Section 6.4 accounting",
        paper_artifact="the tally-and-settle scheme of Section 6.4",
        expectation="settled revenue equals the Theorem 1 payments exactly",
        tables=[out],
        passed=passed,
    )
