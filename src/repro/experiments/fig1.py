"""E1: the Figure 1 worked example, digit for digit.

Section 4 of the paper works through two packets on the six-AS example
graph:

* X -> Z: the LCP is X-B-D-Z with transit cost 3; the lowest-cost
  D-avoiding path is X-A-Z with cost 5, so D is paid ``1 + (5 - 3) = 3``
  and B is paid ``2 + (5 - 3) = 4``.
* Y -> Z: the LCP is Y-D-Z with transit cost 1; the next-best path is
  Y-B-X-A-Z with cost 9, so D is paid ``1 + (9 - 1) = 9`` although its
  cost is 1 (the overcharging example).

The experiment recomputes every one of those numbers with both the
centralized mechanism and the distributed protocol.
"""

from __future__ import annotations

import math

from repro.analysis.report import Table
from repro.core.price_node import UpdateMode
from repro.core.protocol import distributed_mechanism
from repro.experiments.registry import ExperimentResult
from repro.graphs.generators import FIG1_LABELS, fig1_graph
from repro.mechanism.vcg import compute_price_table
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import avoiding_cost


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    graph = fig1_graph()
    label = FIG1_LABELS
    names = {value: key for key, value in label.items()}
    X, A, B, D, Y, Z = (label[name] for name in "XABDYZ")

    routes = all_pairs_lcp(graph)
    table = compute_price_table(graph, routes=routes)
    distributed = distributed_mechanism(graph, mode=UpdateMode.MONOTONE)

    def path_name(path):
        return "-".join(names[node] for node in path)

    expected = [
        # (description, measured, paper value)
        ("LCP X->Z", path_name(routes.path(X, Z)), "X-B-D-Z"),
        ("cost(X->Z)", routes.cost(X, Z), 3.0),
        ("D-avoiding cost X->Z", avoiding_cost(graph, X, Z, D), 5.0),
        ("p^D_XZ (centralized)", table.price(D, X, Z), 3.0),
        ("p^B_XZ (centralized)", table.price(B, X, Z), 4.0),
        ("p^D_XZ (distributed)", distributed.price(D, X, Z), 3.0),
        ("p^B_XZ (distributed)", distributed.price(B, X, Z), 4.0),
        ("LCP Y->Z", path_name(routes.path(Y, Z)), "Y-D-Z"),
        ("cost(Y->Z)", routes.cost(Y, Z), 1.0),
        ("D-avoiding cost Y->Z", avoiding_cost(graph, Y, Z, D), 9.0),
        ("p^D_YZ (centralized)", table.price(D, Y, Z), 9.0),
        ("p^D_YZ (distributed)", distributed.price(D, Y, Z), 9.0),
    ]

    out = Table(
        title="Figure 1 worked example (paper Sect. 4)",
        headers=["quantity", "measured", "paper", "match"],
    )
    passed = True
    for description, measured, paper in expected:
        if isinstance(paper, float):
            match = math.isclose(float(measured), paper, rel_tol=0, abs_tol=1e-12)
        else:
            match = measured == paper
        passed = passed and match
        out.add_row(description, measured, paper, match)
    out.add_note(
        "total payment on X->Z is 3 + 4 = 7 for a path that costs 3; "
        "Y->Z pays 9 for a path that costs 1 (Sect. 7 overcharging)."
    )

    return ExperimentResult(
        experiment_id="E1",
        title="Figure 1 worked example",
        paper_artifact="Figure 1 and the payment examples of Section 4",
        expectation="every worked number matches the paper exactly",
        tables=[out],
        passed=passed,
    )
