"""E17: the computational-vs-strategic gap (Section 7's closing problem).

Theorem 1 removes the incentive to lie about *inputs*; the paper's last
open question is that the very ASs that supply the inputs also run the
*algorithm*.  This experiment exhibits a concrete attack -- a node that
declares its cost truthfully but advertises deflated path costs -- and
shows:

* the attack is strictly profitable (traffic attraction plus inflated
  per-packet prices on its paths), so the open problem is real;
* the obvious integrity audit (advertised cost must equal the sum of
  the advertised per-node costs) catches this particular attack at
  every honest neighbor, delimiting how far simple checks go.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.strategic.manipulation import manipulation_outcome
from repro.traffic.generators import uniform_traffic


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    out = Table(
        title="Cost-deflation manipulation: honest vs manipulated runs",
        headers=[
            "family",
            "n",
            "manipulator",
            "deflation",
            "honest utility",
            "manipulated utility",
            "gain",
            "carried before",
            "carried after",
            "audited",
        ],
    )
    passed = True
    any_profit = False
    instances = standard_instances(scale, seed=seed)
    if scale == "small":
        instances = instances[:5]
    for family, graph in instances:
        traffic = dict(uniform_traffic(graph).items())
        # The attack needs a multi-hop route to deflate: pick the
        # highest-degree node that is *not* adjacent to everyone (a
        # universal hub advertises only direct routes -- no surface).
        candidates = [
            node
            for node in graph.nodes
            if graph.degree(node) < graph.num_nodes - 1
        ] or list(graph.nodes)
        manipulator = max(candidates, key=graph.degree)
        outcome = manipulation_outcome(graph, manipulator, traffic, deflate_by=1.0)
        any_profit = any_profit or outcome.profitable
        # the audit must always flag the deflation
        passed = passed and outcome.caught
        out.add_row(
            family,
            graph.num_nodes,
            manipulator,
            outcome.deflate_by,
            outcome.honest_utility,
            outcome.manipulated_utility,
            outcome.gain,
            outcome.packets_carried_honest,
            outcome.packets_carried_manipulated,
            outcome.caught,
        )
    passed = passed and any_profit
    out.add_note(
        "gain > 0 on some instance demonstrates the Sect. 7 open problem; "
        "'audited' means the cost-consistency check flagged the manipulator "
        "at an honest neighbor"
    )
    return ExperimentResult(
        experiment_id="E17",
        title="Protocol manipulation (Sect. 7 closing open problem)",
        paper_artifact="the Sect. 7 discussion of strategic agents running the "
        "algorithm themselves",
        expectation="deflating advertised path costs is profitable despite "
        "truthful inputs, and the basic integrity audit catches it",
        tables=[out],
        passed=passed,
    )
