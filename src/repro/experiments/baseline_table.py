"""E8: the prior mechanisms the paper builds on.

* **Nisan-Ronen** (edges as agents, single pair, centralized): verify
  that the original payment formula ``d_{e=inf} - d_{e=0}`` coincides
  with the marginal form ``c_e + d_{G-e} - d_G`` on every edge of every
  tested LCP.
* **Hershberger-Suri style batching**: the two-tree cut scan must
  reproduce the per-edge-removal Dijkstra replacement costs exactly.
"""

from __future__ import annotations

import math
import random

from repro.analysis.report import Table
from repro.baselines.hershberger_suri import (
    replacement_path_costs,
    replacement_path_costs_naive,
)
from repro.baselines.nisan_ronen import EdgeWeightedGraph, nisan_ronen_mechanism
from repro.experiments.registry import ExperimentResult


def _random_edge_graph(n: int, extra_edges: int, seed: int) -> EdgeWeightedGraph:
    """A biconnected random edge-weighted graph: Hamiltonian cycle plus
    random chords, continuous weights (unique shortest paths a.s.)."""
    rng = random.Random(seed)
    costs = {}
    for i in range(n):
        u, v = i, (i + 1) % n
        costs[(min(u, v), max(u, v))] = rng.uniform(1.0, 10.0)
    added = 0
    while added < extra_edges:
        u, v = rng.sample(range(n), 2)
        key = (min(u, v), max(u, v))
        if key in costs:
            continue
        costs[key] = rng.uniform(1.0, 10.0)
        added += 1
    return EdgeWeightedGraph(costs)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    sizes = [(8, 6), (10, 8), (12, 10)] if scale == "small" else [(16, 14), (24, 20), (32, 28)]

    nr_table = Table(
        title="Nisan-Ronen edge mechanism: formula equivalence",
        headers=["n", "m", "pairs", "edges priced", "max |d_inf-d_0 - marginal|", "total payment >= path cost"],
    )
    hs_table = Table(
        title="Hershberger-Suri cut scan vs per-edge Dijkstra",
        headers=["n", "m", "pairs", "edges", "max |cut-scan - naive|"],
    )
    passed = True
    rng = random.Random(seed)
    for n, extra in sizes:
        graph = _random_edge_graph(n, extra, seed=seed + n)
        pairs = [tuple(rng.sample(range(n), 2)) for _ in range(5)]

        max_residual = 0.0
        edges_priced = 0
        payments_cover = True
        for source, target in pairs:
            result = nisan_ronen_mechanism(graph, source, target)
            base = result.path_cost
            for (u, v), payment in result.payments.items():
                marginal = (
                    graph.cost(u, v)
                    + graph.without_edge(u, v).distance(source, target)
                    - base
                )
                max_residual = max(max_residual, abs(payment - marginal))
                edges_priced += 1
            payments_cover = payments_cover and (
                result.total_payment >= result.path_cost - 1e-9
            )
        formula_ok = max_residual <= 1e-9
        passed = passed and formula_ok and payments_cover
        nr_table.add_row(n, len(graph.edges), len(pairs), edges_priced, max_residual, payments_cover)

        max_hs = 0.0
        edge_count = 0
        for source, target in pairs:
            fast = replacement_path_costs(graph, source, target)
            naive = replacement_path_costs_naive(graph, source, target)
            for edge in naive:
                edge_count += 1
                fast_value = fast.get(edge, math.inf)
                if math.isinf(naive[edge]) and math.isinf(fast_value):
                    continue
                max_hs = max(max_hs, abs(fast_value - naive[edge]))
        hs_ok = max_hs <= 1e-9
        passed = passed and hs_ok
        hs_table.add_row(n, len(graph.edges), len(pairs), edge_count, max_hs)

    nr_table.add_note(
        "payment(e) = d_{e=inf} - d_{e=0} must equal c_e + d_{G-e} - d_G on the LCP"
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Nisan-Ronen / Hershberger-Suri baselines",
        paper_artifact="the [16] mechanism of Sect. 2 and the [12] fast computation",
        expectation="both baseline implementations agree with their defining formulas",
        tables=[nr_table, hs_table],
        passed=passed,
    )
