"""E14: capacities and congestion (the Section 7 open problem, probed).

Measures what the paper conjectures makes the capacitated problem hard:

* LCP routing concentrates load; with capacities set at a fraction of
  the observed maximum, some nodes overload.
* The VCG prices are *load-independent*: recomputing them on the same
  instance with any capacity annotation changes nothing (asserted).
* A greedy feasibility repair (move flows to avoiding paths) restores
  feasibility at a measurable social-cost premium -- the quantity a
  capacity-aware mechanism would need to price, which no strategyproof
  pricing within the paper's framework currently does.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.instances import standard_instances
from repro.experiments.registry import ExperimentResult
from repro.extensions.capacity import congestion_report, greedy_decongest
from repro.mechanism.vcg import compute_price_table
from repro.traffic.generators import gravity_traffic


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    out = Table(
        title="Congestion under LCP routing, and the greedy repair",
        headers=[
            "family",
            "n",
            "max util before",
            "overloaded",
            "moves",
            "feasible after",
            "cost before",
            "cost after",
            "premium %",
        ],
    )
    passed = True
    instances = standard_instances(scale, seed=seed)
    for family, graph in instances:
        traffic = dict(gravity_traffic(graph, seed=seed, total=1000.0).items())
        # Capacities at 70% of each node's observed LCP load (floor 1):
        # guarantees pressure without making the instance hopeless.
        baseline = congestion_report(
            graph, {node: float("inf") for node in graph.nodes}, traffic
        )
        capacities = {
            node: max(1.0, 0.7 * baseline.loads.get(node, 0.0))
            for node in graph.nodes
        }
        before = congestion_report(graph, capacities, traffic)
        repair = greedy_decongest(graph, capacities, traffic)
        after = repair.after
        premium = (
            100.0 * repair.cost_premium / before.total_cost
            if before.total_cost > 0
            else 0.0
        )
        # The repair must never *reduce* cost (LCPs were optimal) and
        # must strictly reduce the worst overload when it moved flows.
        monotone_ok = repair.cost_premium >= -1e-9
        pressure_ok = (not before.overloaded) or repair.moved_pairs
        passed = passed and monotone_ok and pressure_ok
        out.add_row(
            family,
            graph.num_nodes,
            before.max_utilization,
            len(before.overloaded),
            len(repair.moved_pairs),
            after.feasible,
            before.total_cost,
            after.total_cost,
            premium,
        )

    # Load-independence of the prices: same instance, prices unchanged
    # whatever the capacities say (they are not an input to Theorem 1).
    family, graph = instances[0]
    table_a = compute_price_table(graph)
    table_b = compute_price_table(graph)  # capacities simply cannot enter
    independence = Table(
        title="VCG prices are load-independent",
        headers=["check", "result"],
    )
    same = all(
        table_a.row(*pair) == table_b.row(*pair) for pair in table_a.pairs()
    )
    independence.add_row(
        "prices identical with/without capacity annotations", same
    )
    independence.add_note(
        "capacities are not an input to the Theorem 1 mechanism at all: a "
        "congested node is paid exactly as if idle -- the reason Sect. 7 "
        "leaves capacitated routing open"
    )
    passed = passed and same

    out.add_note(
        "capacities set to 70% of each node's uncapacitated LCP load; the "
        "greedy repair reroutes whole flows along avoiding paths, largest "
        "first, and pays the reported social-cost premium for feasibility"
    )
    return ExperimentResult(
        experiment_id="E14",
        title="Capacities and congestion (open problem probe)",
        paper_artifact="the Section 7 capacitated-routing open problem",
        expectation="LCP routing overloads; repair restores feasibility at a "
        "cost premium; VCG prices ignore load entirely",
        tables=[out, independence],
        passed=passed,
    )
