"""Biconnectivity analysis and augmentation.

Theorem 1 requires the AS graph to be biconnected: if removing a node
disconnects some source from some destination, the k-avoiding path used in
the VCG payment is undefined and the cut node could charge a monopoly
price.  This module provides

* :func:`articulation_points` -- Tarjan's linear-time cut-vertex search,
* :func:`is_biconnected` / :func:`ensure_biconnected` -- predicates used as
  preconditions by the mechanism code, and
* :func:`make_biconnected` -- a greedy augmentation used by the topology
  generators to repair randomly drawn graphs.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import GraphError, NotBiconnectedError
from repro.graphs.asgraph import ASGraph
from repro.types import Edge, NodeId


def articulation_points(graph: ASGraph) -> Set[NodeId]:
    """Return the set of articulation points (cut vertices) of *graph*.

    Implemented with Tarjan's low-link algorithm, iteratively to avoid
    recursion limits on long path-like graphs.
    """
    nodes = graph.nodes
    discovery: Dict[NodeId, int] = {}
    low: Dict[NodeId, int] = {}
    parent: Dict[NodeId, Optional[NodeId]] = {}
    points: Set[NodeId] = set()
    counter = 0

    for root in nodes:
        if root in discovery:
            continue
        parent[root] = None
        root_children = 0
        # Each stack frame is (node, iterator over remaining neighbors).
        stack: List[Tuple[NodeId, List[NodeId]]] = [(root, list(graph.neighbors(root)))]
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, neighbors = stack[-1]
            if neighbors:
                neighbor = neighbors.pop()
                if neighbor not in discovery:
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, list(graph.neighbors(neighbor))))
                elif neighbor != parent[node]:
                    low[node] = min(low[node], discovery[neighbor])
            else:
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
                    if above != root and low[node] >= discovery[above]:
                        points.add(above)
        if root_children > 1:
            points.add(root)
    return points


def biconnected_components(graph: ASGraph) -> List[FrozenSet[Edge]]:
    """Return the biconnected components of *graph* as edge sets.

    A bridge forms its own single-edge component.  Uses the classic
    edge-stack variant of Tarjan's algorithm, iteratively.
    """
    discovery: Dict[NodeId, int] = {}
    low: Dict[NodeId, int] = {}
    parent: Dict[NodeId, Optional[NodeId]] = {}
    components: List[FrozenSet[Edge]] = []
    edge_stack: List[Edge] = []
    counter = 0

    def normalize(u: NodeId, v: NodeId) -> Edge:
        return (min(u, v), max(u, v))

    for root in graph.nodes:
        if root in discovery:
            continue
        parent[root] = None
        stack: List[Tuple[NodeId, List[NodeId]]] = [(root, list(graph.neighbors(root)))]
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, neighbors = stack[-1]
            if neighbors:
                neighbor = neighbors.pop()
                if neighbor not in discovery:
                    parent[neighbor] = node
                    edge_stack.append(normalize(node, neighbor))
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, list(graph.neighbors(neighbor))))
                elif neighbor != parent[node] and discovery[neighbor] < discovery[node]:
                    edge_stack.append(normalize(node, neighbor))
                    low[node] = min(low[node], discovery[neighbor])
            else:
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
                    if low[node] >= discovery[above]:
                        # 'above' separates; pop the component rooted here.
                        component: Set[Edge] = set()
                        marker = normalize(above, node)
                        while edge_stack:
                            edge = edge_stack.pop()
                            component.add(edge)
                            if edge == marker:
                                break
                        if component:
                            components.append(frozenset(component))
        if edge_stack:  # pragma: no cover - defensive; loop drains the stack
            components.append(frozenset(edge_stack))
            edge_stack.clear()
    return components


def is_biconnected(graph: ASGraph) -> bool:
    """Whether *graph* is biconnected (connected, >= 3 nodes, no cut vertex).

    A single edge (two nodes) is *not* biconnected for our purposes:
    neither endpoint has an alternative route, so every transit payment on
    it would be a monopoly price.
    """
    if graph.num_nodes < 3:
        return False
    if not graph.is_connected():
        return False
    return not articulation_points(graph)


def ensure_biconnected(graph: ASGraph) -> None:
    """Raise :class:`NotBiconnectedError` unless *graph* is biconnected."""
    if graph.num_nodes < 3:
        raise NotBiconnectedError(message="graph has fewer than 3 nodes")
    if not graph.is_connected():
        raise NotBiconnectedError(message="graph is disconnected")
    points = articulation_points(graph)
    if points:
        raise NotBiconnectedError(articulation_points=points)


def make_biconnected(graph: ASGraph, rng: Optional[random.Random] = None) -> ASGraph:
    """Return a biconnected supergraph of *graph* obtained by adding links.

    The augmentation is greedy: while the graph has articulation points
    (or is disconnected), add a link between two non-adjacent nodes drawn
    from different leaf blocks of the block-cut tree.  This is not a
    minimum augmentation -- minimality is irrelevant for generating test
    topologies -- but it terminates quickly and perturbs the original
    topology as little as a random repair can.
    """
    if graph.num_nodes < 3:
        raise GraphError("cannot biconnect a graph with fewer than 3 nodes")
    rng = rng or random.Random(0)
    current = graph

    # First make it connected by linking components together.
    while not current.is_connected():
        components = _connected_components(current)
        first, second = components[0], components[1]
        u = rng.choice(sorted(first))
        v = rng.choice(sorted(second))
        current = current.with_edge(u, v)

    guard = 0
    while True:
        points = articulation_points(current)
        if not points:
            return current
        guard += 1
        if guard > current.num_nodes * current.num_nodes:  # pragma: no cover
            raise GraphError("biconnectivity augmentation failed to terminate")
        cut = sorted(points)[0]
        # Link two neighbors of the cut vertex that live in different
        # components of (graph - cut); this removes it as a cut vertex.
        sides = _connected_components(current.without_node(cut))
        candidates_a = sorted(sides[0])
        candidates_b = sorted(sides[1])
        added = False
        for u in rng.sample(candidates_a, len(candidates_a)):
            for v in rng.sample(candidates_b, len(candidates_b)):
                if not current.has_edge(u, v):
                    current = current.with_edge(u, v)
                    added = True
                    break
            if added:
                break
        if not added:  # pragma: no cover - only on pathological density
            raise GraphError("no augmenting link available")


def _connected_components(graph: ASGraph) -> List[Set[NodeId]]:
    """Connected components as node sets, largest-first ordering not
    guaranteed; deterministic given the node ordering."""
    remaining = set(graph.nodes)
    components: List[Set[NodeId]] = []
    while remaining:
        root = min(remaining)
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(seen)
        remaining -= seen
    return components
