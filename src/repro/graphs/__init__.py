"""AS-graph substrate: the network model of Section 3 of the paper.

The central class is :class:`~repro.graphs.asgraph.ASGraph`, an undirected
graph whose nodes are Autonomous Systems carrying per-packet transit costs.
Companion modules provide biconnectivity analysis (the precondition of
Theorem 1), topology generators for the experiment harness, serialization,
and topology metrics (the ``d`` and ``d'`` quantities of Theorem 2).
"""

from repro.graphs.asgraph import ASGraph
from repro.graphs.biconnectivity import (
    articulation_points,
    biconnected_components,
    ensure_biconnected,
    is_biconnected,
    make_biconnected,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    clique_graph,
    fig1_graph,
    grid_graph,
    isp_like_graph,
    random_biconnected_graph,
    ring_graph,
    waxman_graph,
    wheel_graph,
)
from repro.graphs.io import graph_from_dict, graph_from_json, graph_to_dict, graph_to_json
from repro.graphs.metrics import (
    avoiding_hop_diameter,
    hop_diameter,
    lcp_hop_diameter,
    topology_summary,
)

__all__ = [
    "ASGraph",
    "articulation_points",
    "biconnected_components",
    "ensure_biconnected",
    "is_biconnected",
    "make_biconnected",
    "barabasi_albert_graph",
    "clique_graph",
    "fig1_graph",
    "grid_graph",
    "isp_like_graph",
    "random_biconnected_graph",
    "ring_graph",
    "waxman_graph",
    "wheel_graph",
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "avoiding_hop_diameter",
    "hop_diameter",
    "lcp_hop_diameter",
    "topology_summary",
]
