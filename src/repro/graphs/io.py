"""Serialization of AS graphs to and from JSON-compatible dicts.

The format is deliberately plain so that experiment outputs can be
archived and topologies shared::

    {
      "nodes": [{"id": 0, "cost": 2.0}, ...],
      "edges": [[0, 1], ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.exceptions import GraphError
from repro.graphs.asgraph import ASGraph

FORMAT_VERSION = 1


def graph_to_dict(graph: ASGraph) -> Dict[str, Any]:
    """Serialize *graph* to a JSON-compatible dict."""
    return {
        "version": FORMAT_VERSION,
        "nodes": [{"id": node, "cost": graph.cost(node)} for node in graph.nodes],
        "edges": [[u, v] for u, v in sorted(graph.edges)],
    }


def graph_from_dict(payload: Dict[str, Any]) -> ASGraph:
    """Deserialize a graph from the dict format of :func:`graph_to_dict`."""
    try:
        version = payload.get("version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version!r}")
        nodes = [(entry["id"], entry["cost"]) for entry in payload["nodes"]]
        edges = [(u, v) for u, v in payload["edges"]]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph payload: {exc!r}") from exc
    return ASGraph(nodes=nodes, edges=edges)


def graph_to_json(graph: ASGraph, *, indent: int = 2) -> str:
    """Serialize *graph* to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> ASGraph:
    """Deserialize a graph from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise GraphError("graph JSON must be an object")
    return graph_from_dict(payload)
