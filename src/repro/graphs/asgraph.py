"""The AS graph: an undirected graph of ASes with per-node transit costs.

This is the network model of Section 3: a set of nodes ``N`` (each an AS),
a set ``L`` of bidirectional links, and for each node ``k`` a per-packet
transit cost ``c_k``.  Following the Griffin-Wilfong abstraction adopted in
Section 5, there is at most one link between any two ASes, links are
bidirectional, and each AS is atomic.

The class is deliberately small and explicit: adjacency is a dict of
sorted neighbor tuples, costs are a dict, and all mutation goes through
methods that re-validate the model invariants.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import GraphError
from repro.types import Cost, CostVector, Edge, NodeId, validate_cost


class MaskedGraphView:
    """A copy-free read view of an :class:`ASGraph` with one node hidden.

    Behaves like the graph ``G - k`` for every read the routing kernels
    perform (``neighbors`` / ``cost`` / ``nodes`` / containment) without
    materializing new adjacency or cost dicts -- the k-avoiding price
    sweep builds n of these per destination, so the copies that
    :meth:`ASGraph.without_node` allocates dominate its running time.
    The view is a snapshot-of-reference: it stays valid exactly as long
    as the underlying graph is unmutated, which the graph guarantees
    (all ASGraph "mutation" derives new instances).
    """

    __slots__ = ("_graph", "_masked")

    def __init__(self, graph: "ASGraph", masked: NodeId) -> None:
        if masked not in graph:
            raise GraphError(f"unknown node {masked}")
        self._graph = graph
        self._masked = masked

    @property
    def masked(self) -> NodeId:
        """The hidden node ``k``."""
        return self._masked

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All visible node ids in ascending order."""
        return tuple(n for n in self._graph.nodes if n != self._masked)

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes - 1

    def __len__(self) -> int:
        return self.num_nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    def __contains__(self, node: object) -> bool:
        return node != self._masked and node in self._graph

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        if self._masked in (u, v):
            return False
        return self._graph.has_edge(u, v)

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Visible neighbors of *node* in ascending order."""
        if node == self._masked:
            raise GraphError(f"unknown node {node}")
        masked = self._masked
        return tuple(n for n in self._graph.neighbors(node) if n != masked)

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    def cost(self, node: NodeId) -> Cost:
        if node == self._masked:
            raise GraphError(f"unknown node {node}")
        return self._graph.cost(node)

    def __repr__(self) -> str:
        return f"MaskedGraphView({self._graph!r} - node {self._masked})"


class ASGraph:
    """An undirected AS graph with per-node transit costs.

    Parameters
    ----------
    nodes:
        Iterable of ``(node_id, cost)`` pairs.  Node ids must be unique
        non-negative integers; costs must be finite and non-negative.
    edges:
        Iterable of ``(u, v)`` pairs over declared nodes.  Self-loops and
        duplicate links are rejected (one link per AS pair, Sect. 5).

    Examples
    --------
    >>> graph = ASGraph(nodes=[(0, 1.0), (1, 2.0), (2, 0.5)],
    ...                 edges=[(0, 1), (1, 2), (0, 2)])
    >>> graph.cost(1)
    2.0
    >>> sorted(graph.neighbors(0))
    [1, 2]
    """

    __slots__ = ("_adjacency", "_costs", "_edges")

    def __init__(
        self,
        nodes: Iterable[Tuple[NodeId, Cost]],
        edges: Iterable[Edge] = (),
    ) -> None:
        self._costs: Dict[NodeId, Cost] = {}
        self._adjacency: Dict[NodeId, List[NodeId]] = {}
        self._edges: List[Edge] = []
        for node, cost in nodes:
            self._add_node(node, cost)
        for u, v in edges:
            self._add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _add_node(self, node: NodeId, cost: Cost) -> None:
        node = int(node)
        if node < 0:
            raise GraphError(f"node ids must be non-negative, got {node}")
        if node in self._costs:
            raise GraphError(f"duplicate node {node}")
        self._costs[node] = validate_cost(cost, what=f"cost of node {node}")
        self._adjacency[node] = []

    def _add_edge(self, u: NodeId, v: NodeId) -> None:
        u, v = int(u), int(v)
        if u == v:
            raise GraphError(f"self-loop on node {u}")
        for endpoint in (u, v):
            if endpoint not in self._costs:
                raise GraphError(f"edge ({u}, {v}) references unknown node {endpoint}")
        if v in self._adjacency[u]:
            raise GraphError(f"duplicate link between {u} and {v}")
        self._adjacency[u].append(v)
        self._adjacency[v].append(u)
        self._adjacency[u].sort()
        self._adjacency[v].sort()
        self._edges.append((min(u, v), max(u, v)))

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        costs: Optional[CostVector] = None,
        default_cost: Cost = 1.0,
    ) -> "ASGraph":
        """Build a graph from an edge list, inferring the node set.

        Nodes not mentioned in *costs* receive *default_cost*.
        """
        edge_list = [(int(u), int(v)) for u, v in edges]
        node_ids = sorted({endpoint for edge in edge_list for endpoint in edge})
        cost_map = dict(costs or {})
        nodes = [(node, cost_map.get(node, default_cost)) for node in node_ids]
        return cls(nodes=nodes, edges=edge_list)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All node ids in ascending order."""
        return tuple(sorted(self._costs))

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All links as ``(min, max)`` pairs, in insertion order."""
        return tuple(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._costs)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._costs)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._costs

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        neighbors = self._adjacency.get(u)
        return neighbors is not None and v in neighbors

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Neighbors of *node* in ascending order."""
        try:
            return tuple(self._adjacency[node])
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    def cost(self, node: NodeId) -> Cost:
        """The declared transit cost ``c_k`` of *node*."""
        try:
            return self._costs[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def costs(self) -> Dict[NodeId, Cost]:
        """A copy of the full declared-cost vector ``c``."""
        return dict(self._costs)

    def path_cost(self, path: Sequence[NodeId]) -> Cost:
        """Transit cost of *path*: the sum of intermediate node costs.

        Endpoints contribute nothing (``I_i = I_j = 0`` in the paper).
        Raises :class:`GraphError` if the path is not a real walk in the
        graph or revisits a node.
        """
        if len(path) < 2:
            raise GraphError(f"path must have at least two nodes, got {list(path)}")
        if len(set(path)) != len(path):
            raise GraphError(f"path revisits a node: {list(path)}")
        for u, v in zip(path, path[1:]):
            if not self.has_edge(u, v):
                raise GraphError(f"path uses missing link ({u}, {v})")
        return float(sum(self._costs[node] for node in path[1:-1]))

    # ------------------------------------------------------------------
    # Derivation of modified instances
    # ------------------------------------------------------------------
    def with_cost(self, node: NodeId, cost: Cost) -> "ASGraph":
        """A copy with node *node* declaring *cost* (the ``c^{-k}x``
        construction used throughout the strategyproofness analysis)."""
        if node not in self._costs:
            raise GraphError(f"unknown node {node}")
        new_costs = dict(self._costs)
        new_costs[node] = validate_cost(cost, what=f"cost of node {node}")
        return ASGraph(nodes=new_costs.items(), edges=self._edges)

    def with_costs(self, costs: CostVector) -> "ASGraph":
        """A copy with the cost vector replaced wholesale."""
        unknown = set(costs) - set(self._costs)
        if unknown:
            raise GraphError(f"unknown nodes in cost vector: {sorted(unknown)}")
        new_costs = dict(self._costs)
        for node, cost in costs.items():
            new_costs[node] = validate_cost(cost, what=f"cost of node {node}")
        return ASGraph(nodes=new_costs.items(), edges=self._edges)

    def without_node(self, node: NodeId) -> "ASGraph":
        """A copy with *node* and its links removed (for k-avoiding paths).

        This is the mutation-shaped API: it materializes a real
        :class:`ASGraph` that can itself be mutated further.  Read-only
        sweeps (the per-(destination, k) avoiding Dijkstras) should use
        :meth:`masked_without_node`, which answers the same reads
        without copying the adjacency and cost dicts.
        """
        if node not in self._costs:
            raise GraphError(f"unknown node {node}")
        nodes = [(n, c) for n, c in self._costs.items() if n != node]
        edges = [(u, v) for u, v in self._edges if node not in (u, v)]
        return ASGraph(nodes=nodes, edges=edges)

    def masked_without_node(self, node: NodeId) -> MaskedGraphView:
        """A copy-free read view of ``G - node`` (for k-avoiding sweeps).

        Equivalent to :meth:`without_node` for every read the routing
        kernels perform, but O(1) to construct; the hot avoiding sweep
        builds one per (destination, k) pair.
        """
        return MaskedGraphView(self, node)

    def without_edge(self, u: NodeId, v: NodeId) -> "ASGraph":
        """A copy with the link ``(u, v)`` removed (for failure dynamics)."""
        if not self.has_edge(u, v):
            raise GraphError(f"no link between {u} and {v}")
        key = (min(u, v), max(u, v))
        edges = [edge for edge in self._edges if edge != key]
        return ASGraph(nodes=self._costs.items(), edges=edges)

    def with_edge(self, u: NodeId, v: NodeId) -> "ASGraph":
        """A copy with a new link ``(u, v)`` added."""
        return ASGraph(nodes=self._costs.items(), edges=list(self._edges) + [(u, v)])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether every node can reach every other node."""
        nodes = self.nodes
        if not nodes:
            return True
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            current = stack.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(nodes)

    def index_of(self) -> Dict[NodeId, int]:
        """A dense ``node -> index`` mapping (for array-based engines)."""
        return {node: index for index, node in enumerate(self.nodes)}

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASGraph):
            return NotImplemented
        return (
            # Graph identity is exact by definition: declared costs are
            # raw inputs, not derived arithmetic.
            self._costs == other._costs  # repro-lint: ok(RPR001)
            and sorted(self._edges) == sorted(other._edges)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"ASGraph(n={self.num_nodes}, m={self.num_edges})"


#: Anything the routing kernels can run a destination-rooted Dijkstra
#: over: a real graph or a copy-free masked view of one.
GraphLike = Union[ASGraph, MaskedGraphView]
