"""Topology metrics, including the ``d`` and ``d'`` of Theorem 2.

* ``d`` (:func:`lcp_hop_diameter`) -- the maximum number of AS *hops* on
  any selected lowest-cost path; plain BGP converges within ``d`` stages.
* ``d'`` (:func:`avoiding_hop_diameter`) -- the maximum hops over all
  lowest-cost k-avoiding paths ``P_{-k}(c; i, j)``; the price computation
  converges within ``max(d, d')`` stages (Lemma 2 / Theorem 2).

Hop counts follow the paper's stage accounting: a path with ``h`` edges
has ``h`` hops, and information crosses one hop per synchronous stage.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graphs.asgraph import ASGraph
from repro.types import NodeId


def hop_diameter(graph: ASGraph) -> int:
    """The plain (unweighted) hop diameter of *graph*."""
    best = 0
    for source in graph.nodes:
        depths = _bfs_depths(graph, source)
        if len(depths) != graph.num_nodes:
            from repro.exceptions import DisconnectedGraphError

            raise DisconnectedGraphError(f"node {source} cannot reach all nodes")
        best = max(best, max(depths.values()))
    return best


def _bfs_depths(graph: ASGraph, source: NodeId) -> Dict[NodeId, int]:
    depths = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in depths:
                    depths[neighbor] = depths[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return depths


def lcp_hop_diameter(graph: ASGraph) -> int:
    """``d``: the maximum hop count over all

    selected lowest-cost paths (with the library's canonical
    tie-breaking).  Imported lazily from the routing package to keep the
    graph substrate dependency-free.
    """
    from repro.routing.allpairs import all_pairs_lcp

    routes = all_pairs_lcp(graph)
    return max(
        (len(path) - 1 for path in routes.paths.values()),
        default=0,
    )


def avoiding_hop_diameter(graph: ASGraph) -> int:
    """``d'``: the maximum hop count over all lowest-cost k-avoiding paths
    ``P_{-k}(c; i, j)`` for transit nodes ``k`` on selected LCPs.

    This is the other argument to the ``max(d, d')`` convergence bound of
    Theorem 2.  Uses the batched per-(destination, k) computation from
    :mod:`repro.routing.avoiding`.
    """
    from repro.routing.avoiding import max_avoiding_hops

    return max_avoiding_hops(graph)


def topology_summary(graph: ASGraph, name: Optional[str] = None) -> Dict[str, object]:
    """A metrics bundle used by the experiment tables."""
    summary: Dict[str, object] = {
        "name": name or "graph",
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "hop_diameter": hop_diameter(graph),
        "d": lcp_hop_diameter(graph),
        "d_prime": avoiding_hop_diameter(graph),
        "mean_degree": 2.0 * graph.num_edges / max(graph.num_nodes, 1),
    }
    summary["stage_bound"] = max(summary["d"], summary["d_prime"])
    return summary
