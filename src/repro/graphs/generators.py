"""Topology generators for experiments and tests.

Every generator returns a **biconnected** :class:`~repro.graphs.asgraph.ASGraph`
(the precondition of Theorem 1), with node transit costs drawn from a
configurable distribution.  Randomized families are repaired with
:func:`~repro.graphs.biconnectivity.make_biconnected` when a draw happens
to contain cut vertices.

The :func:`fig1_graph` generator reproduces the worked example of
Section 4 (Figure 1) exactly, including its node labels and costs.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.asgraph import ASGraph
from repro.graphs.biconnectivity import is_biconnected, make_biconnected
from repro.types import Cost, Edge, NodeId

CostSampler = Callable[[random.Random], Cost]

#: Human labels for the Figure 1 example graph.
FIG1_LABELS: Dict[str, NodeId] = {"X": 0, "A": 1, "B": 2, "D": 3, "Y": 4, "Z": 5}

#: Transit costs from Figure 1 of the paper.
FIG1_COSTS: Dict[str, Cost] = {"X": 2, "A": 5, "B": 2, "D": 1, "Y": 3, "Z": 4}


def uniform_costs(low: Cost = 1.0, high: Cost = 10.0) -> CostSampler:
    """A cost sampler drawing uniformly from ``[low, high]``."""
    if low < 0 or high < low:
        raise GraphError(f"invalid cost range [{low}, {high}]")

    def sample(rng: random.Random) -> Cost:
        return rng.uniform(low, high)

    return sample


def integer_costs(low: int = 1, high: int = 10) -> CostSampler:
    """A cost sampler drawing integers from ``[low, high]``.

    Integer costs make ties common, which stresses the tie-breaking and
    loop-freedom machinery; experiments use them deliberately.
    """
    if low < 0 or high < low:
        raise GraphError(f"invalid cost range [{low}, {high}]")

    def sample(rng: random.Random) -> Cost:
        return float(rng.randint(low, high))

    return sample


def _draw_costs(
    node_ids: Sequence[NodeId],
    rng: random.Random,
    cost_sampler: Optional[CostSampler],
) -> List[Tuple[NodeId, Cost]]:
    sampler = cost_sampler or uniform_costs()
    return [(node, sampler(rng)) for node in node_ids]


def fig1_graph() -> ASGraph:
    """The six-AS example graph of Figure 1.

    Nodes are numbered via :data:`FIG1_LABELS` (X=0, A=1, B=2, D=3, Y=4,
    Z=5) and carry the costs of :data:`FIG1_COSTS`.  The worked example of
    Section 4 holds on it: the LCP from X to Z is X-B-D-Z with transit
    cost 3, node D is paid 3 and node B is paid 4 per packet; the LCP
    from Y to Z is Y-D-Z with transit cost 1 and D is paid 9 per packet.
    """
    label = FIG1_LABELS
    nodes = [(label[name], float(FIG1_COSTS[name])) for name in sorted(label, key=label.get)]
    edges = [
        (label["X"], label["A"]),
        (label["A"], label["Z"]),
        (label["X"], label["B"]),
        (label["B"], label["D"]),
        (label["D"], label["Z"]),
        (label["Y"], label["D"]),
        (label["Y"], label["B"]),
    ]
    return ASGraph(nodes=nodes, edges=edges)


def ring_graph(
    n: int,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """A cycle on *n* >= 3 nodes: the minimal biconnected family.

    Rings maximize the gap between hop diameter and node count and give
    every transit node exactly one avoiding path (the other way around),
    making them the worst case for overpayment.
    """
    if n < 3:
        raise GraphError("ring requires n >= 3")
    rng = random.Random(seed)
    nodes = _draw_costs(range(n), rng, cost_sampler)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return ASGraph(nodes=nodes, edges=edges)


def wheel_graph(
    n: int,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """A wheel: a ring of ``n - 1`` nodes plus a hub adjacent to all.

    The hub sits on many LCPs, so wheels exercise the pricing of a
    near-monopoly (but not monopoly) transit node.
    """
    if n < 4:
        raise GraphError("wheel requires n >= 4")
    rng = random.Random(seed)
    nodes = _draw_costs(range(n), rng, cost_sampler)
    hub = n - 1
    rim = list(range(n - 1))
    edges = [(i, (i + 1) % (n - 1)) for i in rim]
    edges += [(i, hub) for i in rim]
    return ASGraph(nodes=nodes, edges=edges)


def clique_graph(
    n: int,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """The complete graph on *n* >= 3 nodes; diameter-1 best case."""
    if n < 3:
        raise GraphError("clique requires n >= 3")
    rng = random.Random(seed)
    nodes = _draw_costs(range(n), rng, cost_sampler)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return ASGraph(nodes=nodes, edges=edges)


def grid_graph(
    rows: int,
    cols: int,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """A ``rows x cols`` torus-free grid, wrapped at the border rows and
    columns only as needed for biconnectivity.

    A plain grid with ``rows, cols >= 2`` is already biconnected; it
    models sparse, high-diameter topologies with many near-tied routes.
    """
    if rows < 2 or cols < 2:
        raise GraphError("grid requires rows >= 2 and cols >= 2")
    rng = random.Random(seed)
    n = rows * cols
    nodes = _draw_costs(range(n), rng, cost_sampler)

    def node_at(r: int, c: int) -> NodeId:
        return r * cols + c

    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node_at(r, c), node_at(r, c + 1)))
            if r + 1 < rows:
                edges.append((node_at(r, c), node_at(r + 1, c)))
    return ASGraph(nodes=nodes, edges=edges)


def random_biconnected_graph(
    n: int,
    edge_probability: float = 0.2,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """An Erdős–Rényi ``G(n, p)`` draw repaired to biconnectivity.

    Starts from a Hamiltonian cycle (guaranteeing biconnectivity without
    repair in the common case) and adds each chord independently with
    probability *edge_probability*.
    """
    if n < 3:
        raise GraphError("random graph requires n >= 3")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {edge_probability}")
    rng = random.Random(seed)
    nodes = _draw_costs(range(n), rng, cost_sampler)
    edges = [(i, (i + 1) % n) for i in range(n)]
    present = set(edges) | {(v, u) for u, v in edges}
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) in present:
                continue
            if rng.random() < edge_probability:
                edges.append((i, j))
                present.add((i, j))
    return ASGraph(nodes=nodes, edges=edges)


def waxman_graph(
    n: int,
    alpha: float = 0.6,
    beta: float = 0.3,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """A Waxman random geometric graph, the classic Internet-topology
    strawman, repaired to biconnectivity.

    Nodes are placed uniformly in the unit square and linked with
    probability ``alpha * exp(-dist / (beta * sqrt(2)))``.
    """
    if n < 3:
        raise GraphError("waxman requires n >= 3")
    rng = random.Random(seed)
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    scale = beta * math.sqrt(2.0)
    edges: List[Edge] = []
    for i in range(n):
        for j in range(i + 1, n):
            dx = positions[i][0] - positions[j][0]
            dy = positions[i][1] - positions[j][1]
            dist = math.hypot(dx, dy)
            if rng.random() < alpha * math.exp(-dist / scale):
                edges.append((i, j))
    nodes = _draw_costs(range(n), rng, cost_sampler)
    graph = ASGraph(nodes=nodes, edges=edges)
    if not is_biconnected(graph):
        graph = make_biconnected(graph, rng=rng)
    return graph


def barabasi_albert_graph(
    n: int,
    attachment: int = 2,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """A Barabási–Albert preferential-attachment graph (power-law degrees,
    like the AS graph), repaired to biconnectivity.

    Each new node attaches to *attachment* >= 2 distinct existing nodes
    chosen proportionally to degree.
    """
    if n < 3:
        raise GraphError("barabasi-albert requires n >= 3")
    if attachment < 2:
        raise GraphError("attachment must be >= 2 for biconnectivity")
    if attachment >= n:
        raise GraphError("attachment must be < n")
    rng = random.Random(seed)
    edges: List[Edge] = []
    # Seed clique of (attachment + 1) nodes.
    seed_size = attachment + 1
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            edges.append((i, j))
    # Repeated-endpoint list implements preferential attachment.
    endpoint_pool: List[NodeId] = [endpoint for edge in edges for endpoint in edge]
    for new_node in range(seed_size, n):
        targets: set = set()
        while len(targets) < attachment:
            targets.add(rng.choice(endpoint_pool))
        for target in sorted(targets):
            edges.append((target, new_node))
            endpoint_pool.extend((target, new_node))
    nodes = _draw_costs(range(n), rng, cost_sampler)
    graph = ASGraph(nodes=nodes, edges=edges)
    if not is_biconnected(graph):
        graph = make_biconnected(graph, rng=rng)
    return graph


def isp_like_graph(
    n: int,
    core_fraction: float = 0.2,
    seed: int = 0,
    cost_sampler: Optional[CostSampler] = None,
) -> ASGraph:
    """A two-tier ISP-like AS topology.

    A densely meshed *core* (tier-1 providers) plus *stub* ASes, each
    multihomed to at least two providers chosen preferentially toward the
    core.  This mimics the real AS graph's low effective diameter, the
    regime the paper appeals to in Section 6.2 when arguing that ``d'``
    stays close to ``d`` in practice.
    """
    if n < 5:
        raise GraphError("isp-like graph requires n >= 5")
    if not 0.0 < core_fraction < 1.0:
        raise GraphError(f"core fraction must be in (0, 1), got {core_fraction}")
    rng = random.Random(seed)
    core_size = max(3, int(round(n * core_fraction)))
    core = list(range(core_size))
    edges: List[Edge] = []
    # Dense core: ring plus random chords with probability 0.5.
    for index, node in enumerate(core):
        edges.append((node, core[(index + 1) % core_size]))
    present = {tuple(sorted(edge)) for edge in edges}
    for i in core:
        for j in core:
            if i < j and (i, j) not in present and rng.random() < 0.5:
                edges.append((i, j))
                present.add((i, j))
    # Stubs: multihome each to two distinct providers (core-biased).
    providers_pool = list(core)
    for stub in range(core_size, n):
        first, second = rng.sample(providers_pool, 2)
        edges.append((first, stub))
        edges.append((second, stub))
        # Grown stubs can themselves become providers, with low weight.
        if rng.random() < 0.3:
            providers_pool.append(stub)
    nodes = _draw_costs(range(n), rng, cost_sampler)
    graph = ASGraph(nodes=nodes, edges=edges)
    if not is_biconnected(graph):
        graph = make_biconnected(graph, rng=rng)
    return graph


#: Registry of generator families used by the experiment harness.
FAMILIES: Dict[str, Callable[..., ASGraph]] = {
    "ring": ring_graph,
    "wheel": wheel_graph,
    "clique": clique_graph,
    "random": random_biconnected_graph,
    "waxman": waxman_graph,
    "barabasi-albert": barabasi_albert_graph,
    "isp-like": isp_like_graph,
}

#: Node counts of the shared large-instance presets.  The n = 10000
#: entries are the internet-scale floor of the ROADMAP's policy-topology
#: item; the flat-parallel sweep is the only engine expected to price
#: them end-to-end.
SCALING_SIZES: Tuple[int, ...] = (1000, 2000, 5000, 10000)

#: Seeded large-instance presets shared by the flat-sweep scaling
#: benchmark and the upcoming internet-scale policy-topology work, so
#: both measure the same graphs instead of growing private generator
#: paths.  ISP-like presets model the low-diameter multihomed regime of
#: Sect. 6.2; preferential-attachment presets model the AS graph's
#: power-law degrees.  Costs are continuous (uniform) on purpose:
#: integer costs make canonical tie-breaking the dominant work at these
#: sizes, which would measure tie handling rather than the price sweep.
SCALING_PRESETS: Dict[str, Tuple[str, int, int]] = {
    f"{family}-{n}": (family, n, n)
    for family in ("isp-like", "barabasi-albert")
    for n in SCALING_SIZES
}


def scaling_graph(preset: str) -> ASGraph:
    """Build one of the named large-instance presets (seeded).

    *preset* is a :data:`SCALING_PRESETS` key such as ``"isp-like-1000"``
    or ``"barabasi-albert-5000"``; the node count doubles as the seed so
    every preset is a distinct, reproducible draw.
    """
    try:
        family, n, seed = SCALING_PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(SCALING_PRESETS))
        raise GraphError(f"unknown scaling preset {preset!r}; known: {known}") from None
    generator = FAMILIES[family]
    return generator(n, seed=seed, cost_sampler=uniform_costs(1.0, 6.0))
