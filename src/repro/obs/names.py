"""Canonical metric names: the paper's complexity measures, spelled out.

Section 5 of the paper measures BGP-based computation in three
currencies; every instrumented hot path emits them under the stable
names below so that a recorded trace -- not bespoke per-experiment code
-- reproduces the complexity claims:

=========================  =======  =============================================
metric                     kind     paper measure
=========================  =======  =============================================
``bgp.stages``             counter  stages to convergence (Theorem 2 ``max(d, d')``)
``bgp.stage.nodes_changed`` gauge   per-stage change accounting (label ``stage``)
``bgp.messages``           counter  total communication, by ``type`` label
``bgp.messages.received``  counter  receiver-side message accounting
``bgp.entries_sent``       counter  communication volume in table entries
``bgp.rows_sent``          counter  rows actually transmitted (transport level)
``bgp.rows_suppressed``    counter  rows the delta transport avoided resending
``bgp.deliveries``         counter  asynchronous-engine deliveries
``bgp.node.loc_rib_entries``    gauge  per-node routing-table state (``O(nd)``)
``bgp.node.adj_rib_in_entries`` gauge  per-node Adj-RIB-In state
``bgp.node.price_entries``      gauge  per-node price-array state
=========================  =======  =============================================

Engine-level metrics (the ROADMAP's production-scaling story):

``engine.workers`` / ``engine.shards`` / ``engine.shard.size`` gauge the
parallel engine's sharding (shard-size balance is the worker-utilization
proxy: round-robin shards of near-equal size keep every worker busy),
and ``mechanism.price_rows`` counts price-row throughput per engine.
The flat engine's demand-restricted sweep is accounted by
``routing.flat.{solves,rows,masked}`` (masked Dijkstra calls, distance
rows computed, stored CSR entries masked in place) plus
``routing.flat.{workers,shards}`` (the sweep's process/shard layout;
1/1 for the inline ``flat`` engine, the pool geometry for
``flat-parallel``).

Span names (``obs.span``) cover the end-to-end pipeline:
``bgp.stage``, ``bgp.sync.run``, ``bgp.async.run``, ``bgp.timed.run``,
``routing.all_pairs``, ``mechanism.price_table``,
``engine.all_pairs``, ``engine.price_table``, ``experiment.run``.
"""

from __future__ import annotations

# -- paper complexity measures (Sect. 5) -------------------------------
STAGES = "bgp.stages"
STAGE_NODES_CHANGED = "bgp.stage.nodes_changed"
MESSAGES = "bgp.messages"
MESSAGES_RECEIVED = "bgp.messages.received"
ENTRIES_SENT = "bgp.entries_sent"
ROWS_SENT = "bgp.rows_sent"
ROWS_SUPPRESSED = "bgp.rows_suppressed"
DELIVERIES = "bgp.deliveries"
LOC_RIB_ENTRIES = "bgp.node.loc_rib_entries"
ADJ_RIB_IN_ENTRIES = "bgp.node.adj_rib_in_entries"
PRICE_ENTRIES = "bgp.node.price_entries"

# -- timed substrate (discrete-event simulator) ------------------------
# Virtual-clock gauges and MRAI/loss accounting of repro.bgp.timed.
TIMED_CLOCK = "bgp.timed.clock"
TIMED_CONVERGENCE_TIME = "bgp.timed.convergence_time"
TIMED_MESSAGES_LOST = "bgp.timed.messages_lost"
TIMED_NETWORK_EVENTS = "bgp.timed.network_events"
TIMED_MRAI_DEFERRALS = "bgp.timed.mrai.deferrals"
TIMED_MRAI_FLUSHES = "bgp.timed.mrai.flushes"
TIMED_MRAI_COALESCED = "bgp.timed.mrai.rows_coalesced"

# -- engine-level metrics ----------------------------------------------
ENGINE_WORKERS = "engine.workers"
ENGINE_SHARDS = "engine.shards"
ENGINE_SHARD_SIZE = "engine.shard.size"
PRICE_ROWS = "mechanism.price_rows"
ROUTE_TREES = "routing.route_trees"

# -- flat-engine sweep accounting --------------------------------------
# solves: masked Dijkstra calls (one per distinct transit node k);
# rows: distance rows computed across them -- the demand-restriction
# win is rows << solves * n; masked: stored CSR entries masked in
# place (sum of deg(k) over solves) instead of rebuilt.
FLAT_SOLVES = "routing.flat.solves"
FLAT_ROWS = "routing.flat.rows"
FLAT_MASKED = "routing.flat.masked"
# workers/shards: the sweep's process/shard layout (1/1 inline; the
# shared-memory pool geometry under the flat-parallel engine).
FLAT_WORKERS = "routing.flat.workers"
FLAT_SHARDS = "routing.flat.shards"

# -- incremental-engine cache accounting -------------------------------
# hits: trees served from cache; misses: trees computed from scratch;
# invalidations: cached trees an event touched (repaired in place).
CACHE_HITS = "routing.cache.hits"
CACHE_MISSES = "routing.cache.misses"
CACHE_INVALIDATIONS = "routing.cache.invalidations"
# In-place repair work (dynamic SSSP): labels settled by improve
# waves / dropped from orphaned cones / re-established by re-anchor
# waves.  relaxed + reanchored over the average tree size is the
# "Dijkstra-equivalent" cost of the repair path.
REPAIR_RELAXED = "routing.repair.relaxed"
REPAIR_DETACHED = "routing.repair.detached"
REPAIR_REANCHORED = "routing.repair.reanchored"

# -- span names --------------------------------------------------------
SPAN_STAGE = "bgp.stage"
SPAN_SYNC_RUN = "bgp.sync.run"
SPAN_ASYNC_RUN = "bgp.async.run"
SPAN_TIMED_RUN = "bgp.timed.run"
SPAN_ALL_PAIRS = "routing.all_pairs"
SPAN_PRICE_TABLE = "mechanism.price_table"
SPAN_ENGINE_ALL_PAIRS = "engine.all_pairs"
SPAN_ENGINE_PRICE_TABLE = "engine.price_table"
SPAN_EXPERIMENT = "experiment.run"
