"""``repro.obs`` -- zero-dependency observability for the BGP/VCG core.

The paper's Section 5 measures a BGP-based computation in three
currencies -- stages to convergence, messages sent, and per-node
routing-table state.  This package records all three (plus engine-level
metrics) from the instrumented hot paths, so a recorded trace of a run
reproduces the complexity claims without bespoke per-experiment code.

Like :mod:`repro.devtools.sanitize`, observability is **off by default
with true zero overhead**: every instrumented hot path asks
:func:`active` for an observer and receives ``None`` unless (a) the
caller passed an explicit :class:`Obs` instance, or (b) the global
toggle is on.  While off, no event is constructed and no sink is called.

Enable globally with :func:`enable` / the ``REPRO_OBS=1`` environment
variable / the :func:`observed` context manager, or pass an explicit
``obs=Obs(...)`` to any instrumented entry point::

    from repro import obs

    observer = obs.Obs(sinks=[obs.MemorySink()])
    table = compute_price_table(graph, obs=observer)
    observer.counter_total(obs.names.MESSAGES)   # paper measure 2

    with obs.observed():                          # global, default Obs
        distributed_mechanism(graph)
    obs.default().counter_total(obs.names.STAGES)

Traces (``JSONLSink``) are summarized by :func:`repro.obs.trace.summarize_trace`
and the ``trace summarize`` CLI subcommand.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs import names
from repro.obs.core import NULL_SPAN, Obs, Span, _NullSpan
from repro.obs.sinks import (
    TRACE_VERSION,
    JSONLSink,
    MemorySink,
    Sink,
    SummarySink,
)

__all__ = [
    "Obs",
    "Span",
    "Sink",
    "MemorySink",
    "JSONLSink",
    "SummarySink",
    "TRACE_VERSION",
    "names",
    "enabled",
    "enable",
    "disable",
    "observed",
    "active",
    "default",
    "reset_default",
    "span",
    "count",
    "gauge",
]

_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY

_default: Obs = Obs()


def enabled() -> bool:
    """Is global observability currently on?"""
    return _enabled


def enable() -> None:
    """Turn global observability on (hot paths report to :func:`default`)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn global observability off (zero overhead restored)."""
    global _enabled
    _enabled = False


@contextmanager
def observed(on: bool = True) -> Iterator[Obs]:
    """Temporarily enable (or disable) global observability.

    Yields the default :class:`Obs` instance so callers can attach a
    sink and read aggregates afterwards.
    """
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield _default
    finally:
        _enabled = previous


def default() -> Obs:
    """The process-wide default observer used when globally enabled."""
    return _default


def reset_default() -> Obs:
    """Replace the default observer with a fresh one (tests/CLI runs)."""
    global _default
    _default = Obs()
    return _default


def active(obs: Optional[Obs] = None) -> Optional[Obs]:
    """Resolve the observer a hot path should report to, or ``None``.

    This is the single predicate every instrumented hot path calls:
    an explicitly passed observer always wins; otherwise the default
    observer is returned only while globally enabled.  A ``None`` return
    is the zero-overhead fast path -- the caller must emit nothing.
    """
    if obs is not None:
        return obs
    if _enabled:
        return _default
    return None


# ----------------------------------------------------------------------
# Module-level conveniences delegating to the default observer.  These
# are for scripts and the CLI; hot paths use ``active()`` + instance
# methods so an explicit ``obs=`` argument is honored.
# ----------------------------------------------------------------------
def span(name: str, **labels: object) -> "Span | _NullSpan":
    """A span on the default observer; no-op while disabled."""
    if not _enabled:
        return NULL_SPAN
    return _default.span(name, **labels)


def count(name: str, value: float = 1, **labels: object) -> None:
    """Increment a counter on the default observer; no-op while disabled."""
    if _enabled:
        _default.count(name, value, **labels)


def gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge on the default observer; no-op while disabled."""
    if _enabled:
        _default.gauge(name, value, **labels)
