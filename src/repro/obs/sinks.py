"""Pluggable event sinks for the observability layer.

A sink receives every emitted event as a plain dict (see
:mod:`repro.obs.core` for the event schema).  Three sinks ship with the
library:

* :class:`MemorySink` -- append-only in-memory list, for tests;
* :class:`JSONLSink` -- one JSON object per line in a trace file, the
  format ``repro-experiments trace summarize`` consumes;
* :class:`SummarySink` -- aggregate-only (no per-event storage), whose
  :meth:`SummarySink.render` prints a human-readable counter/span table.

Sinks must never raise from :meth:`Sink.emit`: observability failures
must not alter protocol outcomes.  The dispatcher in
:class:`repro.obs.core.Obs` does not guard against sink exceptions, so
sinks are expected to be total.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

#: The JSONL trace format version written by :class:`JSONLSink` and
#: checked by :func:`repro.obs.trace.validate_trace`.
TRACE_VERSION = 1

Event = Dict[str, Any]


class Sink:
    """Base class for event sinks; subclasses override :meth:`emit`."""

    def emit(self, event: Mapping[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; default: nothing to release."""


class MemorySink(Sink):
    """Records every event in order; the test-suite sink."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Mapping[str, Any]) -> None:
        self.events.append(dict(event))

    def named(self, name: str) -> List[Event]:
        """All recorded events carrying metric/span name *name*."""
        return [event for event in self.events if event.get("name") == name]

    def of_kind(self, kind: str) -> List[Event]:
        """All recorded events of one kind (``span``/``counter``/``gauge``)."""
        return [event for event in self.events if event.get("event") == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JSONLSink(Sink):
    """Streams events to a JSON-Lines trace file.

    The first line is a ``meta`` record identifying the trace version
    and clock; every subsequent line is one event.  Timestamps are
    seconds on the emitting :class:`~repro.obs.core.Obs` instance's
    monotonic clock, relative to that instance's creation -- wall-clock
    time never enters the trace, so traces are diffable across runs.
    """

    def __init__(self, path_or_file: Union[str, "io.TextIOBase", Any]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self._write(
            {"event": "meta", "version": TRACE_VERSION, "clock": "monotonic"}
        )

    def _write(self, event: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(event, separators=(",", ":"), sort_keys=True))
        self._fh.write("\n")

    def emit(self, event: Mapping[str, Any]) -> None:
        self._write(event)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SummarySink(Sink):
    """Aggregates counters, gauges, and span timings without storing
    individual events; :meth:`render` prints the human-readable table."""

    def __init__(self) -> None:
        #: (name, labels) -> accumulated counter value
        self.counters: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], float] = {}
        #: (name, labels) -> last gauge value
        self.gauges: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], float] = {}
        #: span name -> [count, total seconds]
        self.spans: Dict[str, List[float]] = {}

    @staticmethod
    def _key(event: Mapping[str, Any]) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
        labels = event.get("labels") or {}
        return str(event["name"]), tuple(sorted(labels.items()))

    def emit(self, event: Mapping[str, Any]) -> None:
        kind = event.get("event")
        if kind == "counter":
            key = self._key(event)
            self.counters[key] = self.counters.get(key, 0.0) + float(event["value"])
        elif kind == "gauge":
            self.gauges[self._key(event)] = float(event["value"])
        elif kind == "span":
            stats = self.spans.setdefault(str(event["name"]), [0, 0.0])
            stats[0] += 1
            stats[1] += float(event["dur"])

    def counter_total(self, name: str, **labels: Any) -> float:
        """Aggregate of one counter across emitted events."""
        wanted = tuple(sorted(labels.items()))
        total = 0.0
        for (event_name, event_labels), value in sorted(self.counters.items()):
            if event_name != name:
                continue
            if labels and event_labels != wanted:
                continue
            total += value
        return total

    def render(self, title: Optional[str] = None) -> str:
        """The human-readable summary table (counters, gauges, spans)."""
        lines = [title or "observability summary", "-" * (len(title or "observability summary"))]
        if self.counters:
            lines.append("counters:")
            for (name, labels), value in sorted(self.counters.items()):
                suffix = _render_labels(labels)
                lines.append(f"  {name}{suffix} = {_render_value(value)}")
        if self.gauges:
            lines.append("gauges:")
            for (name, labels), value in sorted(self.gauges.items()):
                suffix = _render_labels(labels)
                lines.append(f"  {name}{suffix} = {_render_value(value)}")
        if self.spans:
            lines.append("spans:")
            for name, (count, total) in sorted(self.spans.items()):
                lines.append(f"  {name}: n={int(count)} total={total:.6f}s")
        if len(lines) == 2:
            lines.append("(no events)")
        return "\n".join(lines)


def _render_labels(labels: Tuple[Tuple[str, Any], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.6g}"
