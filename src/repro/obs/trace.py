"""Reading, validating, and summarizing recorded JSONL traces.

A trace file (written by :class:`repro.obs.sinks.JSONLSink`) begins with
one ``meta`` line and then carries one event per line.  This module
turns such a file back into the paper's complexity measures:

* ``bgp.stages`` counter -> stages to convergence,
* ``bgp.messages`` counter (by ``type`` label) -> total communication,
* ``bgp.node.*_entries`` gauges -> per-node routing-table state,

so ``repro-cli trace summarize out.jsonl`` reproduces the
:class:`~repro.bgp.metrics.ConvergenceReport` /
:class:`~repro.bgp.metrics.StateReport` numbers of the recorded run
bit-for-bit, from the trace alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import TraceError
from repro.obs import names
from repro.obs.sinks import TRACE_VERSION

LabelsKey = Tuple[Tuple[str, Any], ...]

#: Required fields per event kind (beyond the common ``event``/``name``).
_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "meta": ("version", "clock"),
    "span": ("name", "dur", "t", "depth"),
    "counter": ("name", "value", "total", "t"),
    "gauge": ("name", "value", "t"),
}


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse and validate a trace file; returns the events (meta first).

    Raises :class:`~repro.exceptions.TraceError` on any malformation:
    empty file, invalid JSON, bad meta line, unknown event kind, or a
    missing required field.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            if not isinstance(event, dict):
                raise TraceError(f"{path}:{lineno}: event is not an object")
            _validate_event(event, where=f"{path}:{lineno}")
            events.append(event)
    if not events:
        raise TraceError(f"{path}: empty trace (no meta line)")
    meta = events[0]
    if meta.get("event") != "meta":
        raise TraceError(f"{path}:1: first line must be the meta record")
    if meta.get("version") != TRACE_VERSION:
        raise TraceError(
            f"{path}: unsupported trace version {meta.get('version')!r} "
            f"(this library reads version {TRACE_VERSION})"
        )
    for index, event in enumerate(events[1:], start=2):
        if event.get("event") == "meta":
            raise TraceError(f"{path}:{index}: duplicate meta record")
    return events


def _validate_event(event: Mapping[str, Any], where: str) -> None:
    kind = event.get("event")
    if kind not in _REQUIRED_FIELDS:
        raise TraceError(f"{where}: unknown event kind {kind!r}")
    for field_name in _REQUIRED_FIELDS[kind]:
        if field_name not in event:
            raise TraceError(
                f"{where}: {kind} event missing required field {field_name!r}"
            )


def validate_trace(path: str) -> int:
    """Validate a trace file; returns the number of events (meta excluded)."""
    return len(read_events(path)) - 1


@dataclass
class TraceSummary:
    """Aggregates of one trace, in the paper's three currencies."""

    #: ``bgp.stages`` counter total: stages to convergence.
    stages: int = 0
    #: ``bgp.messages`` totals keyed by the ``type`` label.
    messages_by_type: Dict[str, int] = field(default_factory=dict)
    #: ``bgp.entries_sent`` counter total (communication volume).
    entries_sent: int = 0
    #: ``bgp.rows_sent`` counter total (rows actually transmitted).
    rows_sent: int = 0
    #: ``bgp.rows_suppressed`` counter total (delta-transport savings).
    rows_suppressed: int = 0
    #: ``bgp.deliveries`` counter total (asynchronous engine).
    deliveries: int = 0
    #: ``routing.cache.*`` totals (incremental engine): trees served
    #: from cache / computed from scratch / repaired in place.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    #: ``routing.repair.*`` totals (incremental engine): labels settled
    #: by improve waves / dropped from orphaned cones / re-anchored.
    repair_relaxed: int = 0
    repair_detached: int = 0
    repair_reanchored: int = 0
    #: whether the trace recorded any ``routing.cache.*`` counter at
    #: all (an all-miss cold run still reports zeros in the summary).
    cache_seen: bool = False
    #: ``routing.flat.*`` totals (flat / flat-parallel engines): masked
    #: Dijkstra solves, distance rows computed, stored entries masked,
    #: and the sweep's worker/shard layout.
    flat_solves: int = 0
    flat_rows: int = 0
    flat_masked: int = 0
    flat_workers: int = 0
    flat_shards: int = 0
    #: whether the trace recorded the flat sweep at all.
    flat_seen: bool = False
    #: ``bgp.timed.*`` aggregates (discrete-event substrate): final
    #: virtual clock / convergence-time gauges, loss and MRAI counters.
    timed_clock: float = 0.0
    timed_convergence_time: float = 0.0
    timed_messages_lost: int = 0
    timed_network_events: int = 0
    timed_mrai_deferrals: int = 0
    timed_mrai_flushes: int = 0
    timed_mrai_coalesced: int = 0
    #: whether the trace recorded the timed substrate at all.
    timed_seen: bool = False
    #: last per-node gauge values, keyed by node label.
    loc_rib_entries: Dict[Any, int] = field(default_factory=dict)
    adj_rib_in_entries: Dict[Any, int] = field(default_factory=dict)
    price_entries: Dict[Any, int] = field(default_factory=dict)
    #: every counter's final total, keyed by (name, labels).
    counters: Dict[Tuple[str, LabelsKey], float] = field(default_factory=dict)
    #: every gauge's last value, keyed by (name, labels).
    gauges: Dict[Tuple[str, LabelsKey], float] = field(default_factory=dict)
    #: span name -> (count, total seconds).
    spans: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def max_loc_rib(self) -> int:
        return max(self.loc_rib_entries.values(), default=0)

    @property
    def max_adj_rib_in(self) -> int:
        return max(self.adj_rib_in_entries.values(), default=0)

    @property
    def max_price_entries(self) -> int:
        return max(self.price_entries.values(), default=0)

    def counter_total(self, name: str, **labels: Any) -> float:
        """Final total of one counter (summed over labels if omitted)."""
        if labels:
            return self.counters.get((name, tuple(sorted(labels.items()))), 0.0)
        return sum(
            value
            for (counter_name, _labels), value in sorted(self.counters.items())
            if counter_name == name
        )


def summarize_events(events: Iterable[Mapping[str, Any]]) -> TraceSummary:
    """Fold a validated event stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    span_acc: Dict[str, List[float]] = {}
    for event in events:
        kind = event.get("event")
        labels = event.get("labels") or {}
        labels_key: LabelsKey = tuple(sorted(labels.items()))
        if kind == "counter":
            name = str(event["name"])
            summary.counters[(name, labels_key)] = float(event["total"])
            if name == names.MESSAGES:
                message_type = str(labels.get("type", ""))
                summary.messages_by_type[message_type] = int(
                    summary.messages_by_type.get(message_type, 0)
                    + float(event["value"])
                )
        elif kind == "gauge":
            name = str(event["name"])
            summary.gauges[(name, labels_key)] = float(event["value"])
            per_node = {
                names.LOC_RIB_ENTRIES: summary.loc_rib_entries,
                names.ADJ_RIB_IN_ENTRIES: summary.adj_rib_in_entries,
                names.PRICE_ENTRIES: summary.price_entries,
            }.get(name)
            if per_node is not None and "node" in labels:
                per_node[labels["node"]] = int(float(event["value"]))
        elif kind == "span":
            stats = span_acc.setdefault(str(event["name"]), [0, 0.0])
            stats[0] += 1
            stats[1] += float(event["dur"])
    summary.stages = int(summary.counter_total(names.STAGES))
    summary.entries_sent = int(summary.counter_total(names.ENTRIES_SENT))
    summary.rows_sent = int(summary.counter_total(names.ROWS_SENT))
    summary.rows_suppressed = int(summary.counter_total(names.ROWS_SUPPRESSED))
    summary.deliveries = int(summary.counter_total(names.DELIVERIES))
    summary.cache_hits = int(summary.counter_total(names.CACHE_HITS))
    summary.cache_misses = int(summary.counter_total(names.CACHE_MISSES))
    summary.cache_invalidations = int(
        summary.counter_total(names.CACHE_INVALIDATIONS)
    )
    summary.repair_relaxed = int(summary.counter_total(names.REPAIR_RELAXED))
    summary.repair_detached = int(summary.counter_total(names.REPAIR_DETACHED))
    summary.repair_reanchored = int(
        summary.counter_total(names.REPAIR_REANCHORED)
    )
    summary.cache_seen = any(
        name
        in (names.CACHE_HITS, names.CACHE_MISSES, names.CACHE_INVALIDATIONS)
        for name, _labels in summary.counters
    )
    summary.flat_solves = int(summary.counter_total(names.FLAT_SOLVES))
    summary.flat_rows = int(summary.counter_total(names.FLAT_ROWS))
    summary.flat_masked = int(summary.counter_total(names.FLAT_MASKED))
    summary.flat_workers = int(summary.counter_total(names.FLAT_WORKERS))
    summary.flat_shards = int(summary.counter_total(names.FLAT_SHARDS))
    summary.flat_seen = any(
        name.startswith("routing.flat.") for name, _labels in summary.counters
    )
    summary.timed_clock = float(
        summary.gauges.get((names.TIMED_CLOCK, ()), 0.0)
    )
    summary.timed_convergence_time = float(
        summary.gauges.get((names.TIMED_CONVERGENCE_TIME, ()), 0.0)
    )
    summary.timed_messages_lost = int(
        summary.counter_total(names.TIMED_MESSAGES_LOST)
    )
    summary.timed_network_events = int(
        summary.counter_total(names.TIMED_NETWORK_EVENTS)
    )
    summary.timed_mrai_deferrals = int(
        summary.counter_total(names.TIMED_MRAI_DEFERRALS)
    )
    summary.timed_mrai_flushes = int(
        summary.counter_total(names.TIMED_MRAI_FLUSHES)
    )
    summary.timed_mrai_coalesced = int(
        summary.counter_total(names.TIMED_MRAI_COALESCED)
    )
    summary.timed_seen = any(
        name.startswith("bgp.timed.") for name, _labels in summary.counters
    ) or any(name.startswith("bgp.timed.") for name, _labels in summary.gauges)
    summary.spans = {
        name: (int(count), total) for name, (count, total) in span_acc.items()
    }
    return summary


def summarize_trace(path: str) -> TraceSummary:
    """Read, validate, and summarize one trace file."""
    return summarize_events(read_events(path))


def summary_tables(summary: TraceSummary, title: Optional[str] = None) -> List[Any]:
    """Render a summary as :class:`repro.analysis.report.Table` objects.

    Imported lazily so the obs package stays importable without the
    analysis layer.
    """
    from repro.analysis.report import Table

    measures = Table(
        title=title or "trace summary: paper complexity measures",
        headers=["measure", "value"],
    )
    measures.add_row("stages to convergence", summary.stages)
    measures.add_row("total messages", summary.total_messages)
    for message_type, count in sorted(summary.messages_by_type.items()):
        measures.add_row(f"  messages[type={message_type or '-'}]", count)
    measures.add_row("entries sent", summary.entries_sent)
    if summary.rows_sent or summary.rows_suppressed:
        measures.add_row("rows transmitted (transport)", summary.rows_sent)
        measures.add_row("rows suppressed by delta transport", summary.rows_suppressed)
    if summary.deliveries:
        measures.add_row("async deliveries", summary.deliveries)
    if summary.cache_seen:
        measures.add_row("route-tree cache hits", summary.cache_hits)
        measures.add_row("route-tree cache misses", summary.cache_misses)
        measures.add_row("route-tree cache invalidations", summary.cache_invalidations)
        measures.add_row("repair labels relaxed", summary.repair_relaxed)
        measures.add_row("repair labels detached", summary.repair_detached)
        measures.add_row("repair labels re-anchored", summary.repair_reanchored)
    if summary.flat_seen:
        measures.add_row("flat sweep Dijkstra solves", summary.flat_solves)
        measures.add_row("flat sweep distance rows", summary.flat_rows)
        measures.add_row("flat sweep entries masked", summary.flat_masked)
        measures.add_row("flat sweep workers", summary.flat_workers)
        measures.add_row("flat sweep shards", summary.flat_shards)
    if summary.timed_seen:
        measures.add_row("virtual clock at drain (s)", summary.timed_clock)
        measures.add_row("virtual convergence time (s)", summary.timed_convergence_time)
        measures.add_row("messages lost to link/session loss", summary.timed_messages_lost)
        measures.add_row("timed network events", summary.timed_network_events)
        measures.add_row("MRAI deferrals", summary.timed_mrai_deferrals)
        measures.add_row("MRAI flushes", summary.timed_mrai_flushes)
        measures.add_row("MRAI rows coalesced", summary.timed_mrai_coalesced)
    measures.add_row("max Loc-RIB entries (per node)", summary.max_loc_rib)
    measures.add_row("max Adj-RIB-In entries (per node)", summary.max_adj_rib_in)
    measures.add_row("max price entries (per node)", summary.max_price_entries)
    measures.add_note(
        "stages/messages/table-state are the Sect. 5 complexity currencies"
    )
    tables = [measures]

    if summary.spans:
        spans = Table(title="trace summary: spans", headers=["span", "n", "total_s"])
        for name, (count, total) in sorted(summary.spans.items()):
            spans.add_row(name, count, round(total, 6))
        tables.append(spans)
    return tables
