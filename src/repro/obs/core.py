"""The observer: spans, counters, gauges, and event dispatch.

One :class:`Obs` instance owns a monotonic clock origin, aggregate
counter/gauge/span state, and a list of sinks.  Every emission produces
one event dict and hands it to every sink:

``{"event": "counter", "name": str, "value": num, "total": num,
   "t": seconds, "labels": {...}}``

``{"event": "gauge", "name": str, "value": num, "t": seconds,
   "labels": {...}}``

``{"event": "span", "name": str, "dur": seconds, "t": start-seconds,
   "depth": int, "labels": {...}}``

``t`` is seconds since the instance was created, read from
``time.perf_counter`` -- the monotonic timer protocol/engine code must
use instead of wall-clock ``time.time()`` (lint rule ``RPR005``).
Spans nest: ``depth`` is 1 for a top-level span, 2 for a span opened
inside it, and so on; the span event is emitted when the span *closes*,
so a trace lists children before their parents.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.sinks import Sink

LabelsKey = Tuple[Tuple[str, Any], ...]
MetricKey = Tuple[str, LabelsKey]


class _NullSpan:
    """Shared no-op span used whenever observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One timed, nestable region; use via ``with obs.span(name):``."""

    __slots__ = ("_obs", "name", "labels", "_start", "_depth")

    def __init__(self, obs: "Obs", name: str, labels: Dict[str, Any]) -> None:
        self._obs = obs
        self.name = name
        self.labels = labels
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        self._obs._depth += 1
        self._depth = self._obs._depth
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        self._obs._depth -= 1
        self._obs._record_span(
            self.name, self.labels, start=self._start, end=end, depth=self._depth
        )
        return False


class Obs:
    """An observer: typed counters, gauges, spans, and sink dispatch.

    Instances are cheap and independent -- tests construct their own
    with a :class:`~repro.obs.sinks.MemorySink`; the module-level
    default instance (see :mod:`repro.obs`) is what the hot paths use
    when observability is enabled globally.
    """

    def __init__(self, sinks: Optional[Iterable[Sink]] = None) -> None:
        self._sinks: List[Sink] = list(sinks or ())
        self._origin = time.perf_counter()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._span_stats: Dict[str, List[float]] = {}
        self._depth = 0
        self._events_emitted = 0

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def clear_sinks(self) -> None:
        self._sinks.clear()

    @property
    def sinks(self) -> Tuple[Sink, ...]:
        return tuple(self._sinks)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def _dispatch(self, event: Dict[str, Any]) -> None:
        self._events_emitted += 1
        for sink in self._sinks:
            sink.emit(event)

    def span(self, name: str, **labels: Any) -> Span:
        """A nestable monotonic-clock timer; use as a context manager."""
        return Span(self, name, labels)

    def _record_span(
        self,
        name: str,
        labels: Dict[str, Any],
        *,
        start: float,
        end: float,
        depth: int,
    ) -> None:
        duration = end - start
        stats = self._span_stats.setdefault(name, [0, 0.0])
        stats[0] += 1
        stats[1] += duration
        self._dispatch(
            {
                "event": "span",
                "name": name,
                "dur": duration,
                "t": start - self._origin,
                "depth": depth,
                "labels": labels,
            }
        )

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        """Increment a typed counter and emit one counter event."""
        key: MetricKey = (name, tuple(sorted(labels.items())))
        total = self._counters.get(key, 0.0) + value
        self._counters[key] = total
        self._dispatch(
            {
                "event": "counter",
                "name": name,
                "value": value,
                "total": total,
                "t": self._now(),
                "labels": labels,
            }
        )

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge (last-write-wins) and emit one gauge event."""
        key: MetricKey = (name, tuple(sorted(labels.items())))
        self._gauges[key] = value
        self._dispatch(
            {
                "event": "gauge",
                "name": name,
                "value": value,
                "t": self._now(),
                "labels": labels,
            }
        )

    # ------------------------------------------------------------------
    # Aggregate inspection
    # ------------------------------------------------------------------
    def counter_total(self, name: str, **labels: Any) -> float:
        """Current value of one counter.

        With *labels* given, the exact labelled series; without, the sum
        across every labelled series of that name.
        """
        if labels:
            return self._counters.get((name, tuple(sorted(labels.items()))), 0.0)
        return sum(
            value
            for (counter_name, _labels), value in sorted(self._counters.items())
            if counter_name == name
        )

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        """Last value of one gauge series, or ``None`` if never set."""
        return self._gauges.get((name, tuple(sorted(labels.items()))))

    def gauge_series(self, name: str) -> Dict[LabelsKey, float]:
        """All labelled series of one gauge, keyed by sorted label tuple."""
        return {
            labels: value
            for (gauge_name, labels), value in sorted(self._gauges.items())
            if gauge_name == name
        }

    def span_stats(self, name: str) -> Tuple[int, float]:
        """``(count, total seconds)`` accumulated for one span name."""
        stats = self._span_stats.get(name, [0, 0.0])
        return int(stats[0]), float(stats[1])

    def events_emitted(self) -> int:
        """Total events dispatched to sinks since creation (the
        zero-overhead contract: must stay 0 while disabled)."""
        return self._events_emitted

    def reset(self) -> None:
        """Forget all aggregate state (sinks are kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._span_stats.clear()
        self._depth = 0
        self._events_emitted = 0
