"""Theorem 1: the unique strategyproof pricing scheme.

For a biconnected graph with selected LCPs, the per-packet price paid to
transit node ``k`` for a packet from ``i`` to ``j`` is

    ``p^k_ij = c_k + Cost(P_{-k}(c; i, j)) - Cost(P(c; i, j))``

when ``k`` is a transit node on the selected LCP, and ``0`` otherwise
(Eq. 1 of the paper).  :func:`compute_price_table` evaluates this for
every ordered pair, batching the k-avoiding Dijkstras per destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, ItemsView, Iterator, Mapping, Optional, Tuple

import repro.obs as obs_mod
from repro.devtools import sanitize as sanitize_checks
from repro.exceptions import MechanismError, NotBiconnectedError
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.routing.allpairs import AllPairsRoutes, all_pairs_lcp
from repro.routing.avoiding import avoiding_costs_for_destination, avoiding_tree
from repro.types import Cost, NodeId, is_zero_cost

if TYPE_CHECKING:  # pragma: no cover - import-light at runtime
    from repro.routing.engines import EngineSpec

PriceRow = Dict[NodeId, Cost]
PairKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class PriceTable:
    """All per-packet VCG prices for one routing instance.

    ``rows[(i, j)]`` maps each *transit node on the selected LCP from i
    to j* to its price ``p^k_ij``.  Prices for nodes off the LCP are
    zero by Theorem 1 and are not stored.
    """

    routes: AllPairsRoutes
    rows: Dict[PairKey, PriceRow] = field(repr=False)

    def price(self, k: NodeId, source: NodeId, destination: NodeId) -> Cost:
        """``p^k_{source,destination}`` (zero when off the LCP)."""
        return self.rows.get((source, destination), {}).get(k, 0.0)

    def row(self, source: NodeId, destination: NodeId) -> PriceRow:
        """All non-zero prices for one pair, keyed by transit node."""
        return dict(self.rows.get((source, destination), {}))

    def pairs(self) -> Tuple[PairKey, ...]:
        return tuple(sorted(self.rows))

    def items(self) -> ItemsView[PairKey, PriceRow]:
        return self.rows.items()

    def __iter__(self) -> Iterator[PairKey]:
        return iter(self.pairs())

    def total_price(self, source: NodeId, destination: NodeId) -> Cost:
        """Sum of per-packet prices paid for one packet on this pair --
        what the *endpoints' side* of the economy pays per packet."""
        return float(sum(self.rows.get((source, destination), {}).values()))

    def node_prices(self, k: NodeId) -> Dict[PairKey, Cost]:
        """Every pair for which node *k* earns a non-zero price."""
        result: Dict[PairKey, Cost] = {}
        for pair, row in self.rows.items():
            if k in row:
                result[pair] = row[k]
        return result


def vcg_price(
    graph: ASGraph,
    source: NodeId,
    destination: NodeId,
    k: NodeId,
    routes: Optional[AllPairsRoutes] = None,
) -> Cost:
    """Single price ``p^k_ij`` straight from the Theorem 1 formula.

    Reference implementation used by the tests to cross-check the
    batched table; computes one k-avoiding Dijkstra.
    """
    routes = routes or all_pairs_lcp(graph)
    tree = routes.tree(destination)
    if not tree.on_path(k, source):
        return 0.0
    detour = avoiding_tree(graph, destination, k)
    if not detour.has_route(source):
        raise NotBiconnectedError(
            message=(
                f"price p^{k}_{{{source},{destination}}} undefined: no "
                f"{k}-avoiding path (graph not biconnected)"
            )
        )
    return graph.cost(k) + detour.cost(source) - tree.cost(source)


def compute_price_table(
    graph: ASGraph,
    routes: Optional[AllPairsRoutes] = None,
    *,
    engine: Optional["EngineSpec"] = None,
    sanitize: Optional[bool] = None,
    obs: Optional[obs_mod.Obs] = None,
) -> PriceTable:
    """All-pairs VCG prices, batched per (destination, k).

    For each destination ``j`` and each node ``k`` that is transit on
    *some* selected path toward ``j``, a single Dijkstra on ``G - k``
    rooted at ``j`` provides ``Cost(P_{-k}(c; i, j))`` for every source
    ``i`` simultaneously.

    Keyword-only knobs (same names, order, and defaults as
    :func:`repro.routing.allpairs.all_pairs_lcp`):

    *engine* selects a registered backend by name or instance from
    :mod:`repro.routing.engines` -- ``"scipy"`` vectorizes the avoiding
    sweep, ``"parallel"`` shards destinations over worker processes.
    The default (``None`` or ``"reference"``) is the serial reference
    loop below; every engine returns identical tables per the
    differential test harness.

    *sanitize* overrides the global sanitizer toggle for this call:
    ``True`` forces :func:`repro.devtools.sanitize.check_price_table`
    on the result, ``False`` skips it, ``None`` (default) follows the
    global toggle.

    *obs* names an explicit :class:`repro.obs.Obs` observer; ``None``
    reports to the global default observer iff observability is
    enabled.  Observed runs execute under a ``mechanism.price_table``
    span and count ``mechanism.price_rows`` throughput.
    """
    check = sanitize_checks.enabled() if sanitize is None else bool(sanitize)
    observer = obs_mod.active(obs)
    if engine is not None and engine != "reference":
        from repro.routing.engines import resolve_engine

        resolved = resolve_engine(engine)
        if observer is None:
            table = resolved.price_table(graph, routes=routes, obs=obs)
        else:
            with observer.span(
                metric_names.SPAN_PRICE_TABLE, engine=resolved.name
            ):
                table = resolved.price_table(graph, routes=routes, obs=obs)
        # Engines self-check under the global toggle; honor a forced
        # sanitize=True without double-checking the common case.
        if check and not sanitize_checks.enabled():
            sanitize_checks.check_price_table(graph, table)
        return table
    if observer is None:
        table = _price_table_reference(graph, routes, obs=obs)
    else:
        with observer.span(metric_names.SPAN_PRICE_TABLE, engine="reference"):
            table = _price_table_reference(graph, routes, obs=obs)
        observer.count(
            metric_names.PRICE_ROWS, len(table.rows), engine="reference"
        )
    if check:
        sanitize_checks.check_price_table(graph, table)
    return table


def _price_table_reference(
    graph: ASGraph,
    routes: Optional[AllPairsRoutes],
    obs: Optional[obs_mod.Obs] = None,
) -> PriceTable:
    """The serial semantics-defining Theorem 1 sweep."""
    if routes is None:
        routes = all_pairs_lcp(graph, obs=obs)
    rows: Dict[PairKey, PriceRow] = {}
    for destination in graph.nodes:
        tree = routes.tree(destination)
        # One materialization of the per-destination structure: sources
        # and their paths are walked once for the transit set and reused
        # for the row sweep (transit_nodes() would re-sort and re-walk).
        source_paths = [(source, tree.path(source)) for source in tree.sources()]
        transit_set = set()
        for _source, path in source_paths:
            transit_set.update(path[1:-1])
        transit = tuple(sorted(transit_set))
        detours = avoiding_costs_for_destination(graph, destination, transit)
        for source, path in source_paths:
            if len(path) == 2:
                continue  # direct link: no transit nodes, no prices
            row: PriceRow = {}
            for k in path[1:-1]:
                detour = detours[k]
                if not detour.has_route(source):
                    raise NotBiconnectedError(
                        message=(
                            f"price p^{k}_{{{source},{destination}}} undefined: "
                            f"no {k}-avoiding path (graph not biconnected)"
                        )
                    )
                price = graph.cost(k) + detour.cost(source) - tree.cost(source)
                if price < -1e-9:
                    raise MechanismError(
                        f"negative VCG price {price} for k={k}, pair "
                        f"({source}, {destination}); avoiding cost below LCP cost"
                    )
                row[k] = price
            rows[(source, destination)] = row
    return PriceTable(routes=routes, rows=rows)


def payments(
    table: PriceTable,
    traffic: Mapping[PairKey, float],
) -> Dict[NodeId, Cost]:
    """Total payment ``p_k = sum_ij T_ij p^k_ij`` per node.

    *traffic* maps ordered pairs to packet intensities ``T_ij``; missing
    pairs carry zero traffic.  Nodes earning nothing are present with
    payment ``0.0`` so that the no-transit-no-payment property is
    directly observable.
    """
    totals: Dict[NodeId, Cost] = {node: 0.0 for node in table.routes.graph.nodes}
    for (source, destination), intensity in traffic.items():
        if is_zero_cost(intensity):
            continue
        if intensity < 0:
            raise MechanismError(
                f"negative traffic intensity {intensity} for pair "
                f"({source}, {destination})"
            )
        for k, price in table.rows.get((source, destination), {}).items():
            totals[k] += intensity * price
    return totals
