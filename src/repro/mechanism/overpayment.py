"""Section 7 overcharging metrics.

The VCG payments exceed the true cost of the chosen path; the paper's
Y -> Z example pays node D nine units per packet although D's cost is
one.  This module quantifies the effect:

* per-pair overpayment ratio: ``sum_k p^k_ij / Cost(P(c; i, j))``;
* per-node markup: ``p^k_ij / c_k``;
* aggregate, traffic-weighted totals.

The follow-on literature calls this the *frugality* question; experiment
E7 tabulates the distributions per topology family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.mechanism.vcg import PriceTable
from repro.types import Cost, NodeId, is_zero_cost

PairKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class OverpaymentStats:
    """Distribution summary of per-pair overpayment ratios."""

    pairs: int
    mean_ratio: float
    median_ratio: float
    max_ratio: float
    max_pair: Optional[PairKey]
    total_payment: float
    total_cost: float

    @property
    def aggregate_ratio(self) -> float:
        """Traffic-weighted overall payment / cost ratio."""
        if is_zero_cost(self.total_cost):
            return math.inf if self.total_payment > 0 else 1.0
        return self.total_payment / self.total_cost


def overpayment_ratio(table: PriceTable, source: NodeId, destination: NodeId) -> float:
    """Payment/cost ratio for one pair.

    Pairs whose LCP has no transit nodes (direct links) have both sides
    zero and report ratio ``1.0``; pairs with zero-cost transit but
    positive payment report ``inf``.
    """
    payment = table.total_price(source, destination)
    cost = table.routes.cost(source, destination)
    if is_zero_cost(cost):
        return 1.0 if is_zero_cost(payment) else math.inf
    return payment / cost


def node_markups(table: PriceTable, source: NodeId, destination: NodeId) -> Dict[NodeId, float]:
    """Per-transit-node markup ``p^k_ij / c_k`` for one pair (``inf`` for
    zero-cost nodes that are nevertheless paid)."""
    markups: Dict[NodeId, float] = {}
    for k, price in table.row(source, destination).items():
        cost = table.routes.graph.cost(k)
        if is_zero_cost(cost):
            markups[k] = math.inf if price > 0 else 1.0
        else:
            markups[k] = price / cost
    return markups


def overpayment_stats(
    table: PriceTable,
    traffic: Optional[Mapping[PairKey, float]] = None,
) -> OverpaymentStats:
    """Distribution of overpayment ratios across all pairs.

    With *traffic* given, total payment and total cost are traffic
    weighted; otherwise every pair counts once.  Pairs with infinite
    ratios (zero-cost LCP, positive payment) are excluded from mean and
    median but still counted in the totals.
    """
    ratios: List[float] = []
    max_ratio = 0.0
    max_pair: Optional[PairKey] = None
    total_payment = 0.0
    total_cost = 0.0
    routes = table.routes
    pairs = sorted(routes.paths)
    for pair in pairs:
        source, destination = pair
        weight = 1.0 if traffic is None else float(traffic.get(pair, 0.0))
        if traffic is not None and is_zero_cost(weight):
            continue
        payment = table.total_price(source, destination)
        cost = routes.cost(source, destination)
        total_payment += weight * payment
        total_cost += weight * cost
        ratio = overpayment_ratio(table, source, destination)
        if math.isinf(ratio):
            continue
        ratios.append(ratio)
        if ratio > max_ratio:
            max_ratio = ratio
            max_pair = pair
    ratios.sort()
    count = len(ratios)
    mean = sum(ratios) / count if count else 0.0
    if count:
        middle = count // 2
        median = ratios[middle] if count % 2 else 0.5 * (ratios[middle - 1] + ratios[middle])
    else:
        median = 0.0
    return OverpaymentStats(
        pairs=count,
        mean_ratio=mean,
        median_ratio=median,
        max_ratio=max_ratio,
        max_pair=max_pair,
        total_payment=total_payment,
        total_cost=total_cost,
    )
