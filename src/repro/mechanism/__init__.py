"""The VCG pricing mechanism of Section 4 (centralized reference).

* :mod:`repro.mechanism.vcg` -- Theorem 1 prices and the all-pairs
  :class:`~repro.mechanism.vcg.PriceTable`.
* :mod:`repro.mechanism.welfare` -- the objective ``V(c)``, per-node
  incurred costs ``u_k`` and utilities ``tau_k``.
* :mod:`repro.mechanism.strategyproof` -- the deviation-testing harness
  behind the strategyproofness experiments (E4).
* :mod:`repro.mechanism.uniqueness` -- empirical probes of the
  Green-Laffont pinning argument (payments must be ``V(c^{-k inf})``
  -offset VCG).
* :mod:`repro.mechanism.overpayment` -- the Section 7 overcharging
  metrics.
"""

from repro.mechanism.vcg import PriceTable, compute_price_table, vcg_price
from repro.mechanism.welfare import (
    node_incurred_cost,
    node_utility,
    total_cost,
    total_payment,
)
from repro.mechanism.strategyproof import (
    DeviationOutcome,
    deviation_outcome,
    utility_under_declaration,
)
from repro.mechanism.overpayment import (
    OverpaymentStats,
    overpayment_ratio,
    overpayment_stats,
)

__all__ = [
    "PriceTable",
    "compute_price_table",
    "vcg_price",
    "node_incurred_cost",
    "node_utility",
    "total_cost",
    "total_payment",
    "DeviationOutcome",
    "deviation_outcome",
    "utility_under_declaration",
    "OverpaymentStats",
    "overpayment_ratio",
    "overpayment_stats",
]
