"""Deviation testing: the empirical half of Theorem 1.

A mechanism is strategyproof when no agent can raise its utility by
misdeclaring its type, whatever the others declare:

    ``tau_k(c) >= tau_k(c^{-k} x)``  for all lies ``x``.

:func:`deviation_outcome` evaluates both sides of that inequality for a
concrete lie: it recomputes routes and prices under the lie (the
mechanism only sees declarations) and evaluates the agent's utility with
its *true* cost.  The experiment harness sweeps lies over a grid and
random draws; any positive gain would falsify the implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import PriceTable, compute_price_table
from repro.mechanism.welfare import node_utility
from repro.types import Cost, NodeId

PairKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class DeviationOutcome:
    """The result of one unilateral deviation experiment."""

    node: NodeId
    true_cost: Cost
    declared_cost: Cost
    truthful_utility: Cost
    deviant_utility: Cost

    @property
    def gain(self) -> Cost:
        """Utility gained by lying; strategyproofness demands <= 0
        (up to floating-point noise)."""
        return self.deviant_utility - self.truthful_utility

    @property
    def profitable(self) -> bool:
        return self.gain > 1e-9


def utility_under_declaration(
    graph: ASGraph,
    k: NodeId,
    declared_cost: Cost,
    traffic: Mapping[PairKey, float],
    true_cost: Optional[Cost] = None,
) -> Cost:
    """``tau_k`` when *k* declares *declared_cost* while its true cost is
    *true_cost* (defaulting to the cost in *graph*).

    The whole pipeline -- routing, k-avoiding paths, prices -- is re-run
    on the declared instance, exactly as the real mechanism would.
    """
    true = graph.cost(k) if true_cost is None else float(true_cost)
    declared_graph = graph.with_cost(k, declared_cost)
    table = compute_price_table(declared_graph)
    return node_utility(table, traffic, k, true_cost=true)


def deviation_outcome(
    graph: ASGraph,
    k: NodeId,
    declared_cost: Cost,
    traffic: Mapping[PairKey, float],
    truthful_table: Optional[PriceTable] = None,
) -> DeviationOutcome:
    """Evaluate one lie.  *truthful_table* may be precomputed and shared
    across many lies for the same instance."""
    true_cost = graph.cost(k)
    if truthful_table is None:
        truthful_table = compute_price_table(graph)
    truthful_utility = node_utility(truthful_table, traffic, k, true_cost=true_cost)
    deviant_utility = utility_under_declaration(
        graph, k, declared_cost, traffic, true_cost=true_cost
    )
    return DeviationOutcome(
        node=k,
        true_cost=true_cost,
        declared_cost=float(declared_cost),
        truthful_utility=truthful_utility,
        deviant_utility=deviant_utility,
    )


def lie_grid(true_cost: Cost, *, factors: Iterable[float] = (0.0, 0.25, 0.5, 0.9, 1.1, 1.5, 2.0, 4.0), offsets: Iterable[float] = (0.5, 1.0, 5.0)) -> List[Cost]:
    """A deterministic grid of lies around *true_cost*: multiplicative
    over- and under-declarations plus additive offsets (so a zero true
    cost still gets meaningful lies)."""
    lies = {round(true_cost * factor, 12) for factor in factors}
    lies.update(round(true_cost + offset, 12) for offset in offsets)
    lies.discard(round(true_cost, 12))
    return [lie for lie in sorted(lies) if lie >= 0.0]


def sweep_deviations(
    graph: ASGraph,
    traffic: Mapping[PairKey, float],
    nodes: Optional[Iterable[NodeId]] = None,
    extra_random_lies: int = 0,
    seed: int = 0,
) -> List[DeviationOutcome]:
    """Run the full deviation sweep used by experiment E4.

    For every node (or the given subset), tries the deterministic lie
    grid plus *extra_random_lies* uniform draws in ``[0, 3 * true + 5]``.
    Returns every outcome; callers assert ``not outcome.profitable``.
    """
    rng = random.Random(seed)
    truthful_table = compute_price_table(graph)
    outcomes: List[DeviationOutcome] = []
    for k in nodes if nodes is not None else graph.nodes:
        true_cost = graph.cost(k)
        lies = lie_grid(true_cost)
        for _ in range(extra_random_lies):
            lies.append(rng.uniform(0.0, 3.0 * true_cost + 5.0))
        for lie in lies:
            outcomes.append(
                deviation_outcome(graph, k, lie, traffic, truthful_table=truthful_table)
            )
    return outcomes


def most_profitable(outcomes: Iterable[DeviationOutcome]) -> Optional[DeviationOutcome]:
    """The outcome with the largest gain (None when *outcomes* empty)."""
    best: Optional[DeviationOutcome] = None
    for outcome in outcomes:
        if best is None or outcome.gain > best.gain:
            best = outcome
    return best
