"""Empirical probes of the uniqueness argument behind Theorem 1.

The proof pins the mechanism in two steps (via Green & Laffont):

1. Any strategyproof mechanism minimizing ``V(c) = sum_k u_k(c)`` is a
   Groves mechanism: ``p_k = u_k(c) - V(c) + h_k(c^{-k})``.
2. Requiring zero payment for nodes carrying no transit traffic forces
   ``h_k(c^{-k}) = V(c^{-k})`` (the total cost when ``k``'s transit is
   priced out, i.e. ``c_k = infinity``).

Code cannot prove a theorem, but it can check the identities the proof
asserts and exhibit counterexamples for mechanisms outside the pinned
family.  :func:`groves_identity_gap` checks step 2's identity for our
implementation; :func:`perturbed_mechanism_witness` shows that adding an
own-cost-dependent term to ``h_k`` (the only freedom left) creates a
profitable lie, so no other choice survives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Tuple

from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import PriceTable, compute_price_table, payments
from repro.mechanism.welfare import node_incurred_cost, total_cost
from repro.routing.allpairs import all_pairs_lcp
from repro.routing.avoiding import avoiding_tree
from repro.types import Cost, NodeId

PairKey = Tuple[NodeId, NodeId]


def removed_total_cost(
    graph: ASGraph,
    k: NodeId,
    traffic: Mapping[PairKey, float],
) -> Cost:
    """``V(c^{-k})``: total routing cost when ``c_k = infinity``.

    With ``k`` priced out, pairs not involving ``k`` route along their
    lowest-cost k-avoiding paths; pairs with ``k`` as an endpoint are
    unaffected (endpoints never pay their own cost).  Biconnectivity
    guarantees all terms are finite.
    """
    routes = all_pairs_lcp(graph)
    detour_cache = {}
    total = 0.0
    for (source, destination), intensity in traffic.items():
        if not intensity:
            continue
        if k in (source, destination):
            total += intensity * routes.cost(source, destination)
            continue
        if destination not in detour_cache:
            detour_cache[destination] = avoiding_tree(graph, destination, k)
        total += intensity * detour_cache[destination].cost(source)
    return total


def groves_identity_gap(
    graph: ASGraph,
    k: NodeId,
    traffic: Mapping[PairKey, float],
    table: Optional[PriceTable] = None,
) -> Cost:
    """The residual of ``p_k = V(c^{-k}) + u_k(c) - V(c)`` for node *k*.

    Zero (up to floating point) for a correct Theorem 1 implementation;
    the tests assert this on many random instances.
    """
    table = table or compute_price_table(graph)
    paid = payments(table, traffic)[k]
    groves = (
        removed_total_cost(graph, k, traffic)
        + node_incurred_cost(table.routes, traffic, k)
        - total_cost(table.routes, traffic)
    )
    return paid - groves


@dataclass(frozen=True)
class PerturbationWitness:
    """A concrete violation produced by a non-VCG ``h_k`` choice."""

    node: NodeId
    true_cost: Cost
    declared_cost: Cost
    truthful_utility: Cost
    deviant_utility: Cost
    violates_zero_payment: bool

    @property
    def violates_strategyproofness(self) -> bool:
        return self.deviant_utility > self.truthful_utility + 1e-9

    @property
    def violated(self) -> bool:
        return self.violates_strategyproofness or self.violates_zero_payment


def perturbed_mechanism_witness(
    graph: ASGraph,
    k: NodeId,
    traffic: Mapping[PairKey, float],
    perturbation: Callable[[Cost], Cost],
    lies: Tuple[Cost, ...] = (),
    seed: int = 0,
) -> PerturbationWitness:
    """Probe the mechanism ``p'_k = p_k + perturbation(c_k_declared)``.

    Any perturbation that actually depends on ``k``'s own declaration
    breaks strategyproofness (the Groves characterization), and any
    constant non-zero perturbation breaks the zero-payment condition.
    Returns the most incriminating lie found.
    """
    rng = random.Random(seed)
    true_cost = graph.cost(k)
    if not lies:
        lies = tuple(
            sorted(
                {0.0, true_cost * 0.5, true_cost * 2.0 + 1.0}
                | {rng.uniform(0.0, 2.0 * true_cost + 5.0) for _ in range(4)}
            )
        )

    def perturbed_utility(declared: Cost) -> Cost:
        declared_graph = graph.with_cost(k, declared)
        table = compute_price_table(declared_graph)
        base = payments(table, traffic)[k] + perturbation(declared)
        incurred = node_incurred_cost(table.routes, traffic, k, true_cost=true_cost)
        return base - incurred

    truthful = perturbed_utility(true_cost)
    best_lie = true_cost
    best_utility = truthful
    for lie in lies:
        utility = perturbed_utility(lie)
        if utility > best_utility:
            best_utility = utility
            best_lie = lie

    # Zero-payment check: a node carrying no transit traffic must be
    # paid exactly zero; with the perturbation it is paid
    # `perturbation(declared)` instead.
    violates_zero = abs(perturbation(true_cost)) > 1e-12

    return PerturbationWitness(
        node=k,
        true_cost=true_cost,
        declared_cost=best_lie,
        truthful_utility=truthful,
        deviant_utility=best_utility,
        violates_zero_payment=violates_zero,
    )
