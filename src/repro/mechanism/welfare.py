"""Welfare accounting: the objective ``V(c)``, costs ``u_k``, utilities.

Section 3 of the paper defines, for routes chosen by the indicator
functions ``I_k(c; i, j)`` and a traffic matrix ``T``:

* ``u_k(c) = c_k * sum_ij T_ij I_k(c; i, j)`` -- cost incurred by ``k``,
* ``V(c) = sum_k u_k(c)``               -- total cost to society,
* ``tau_k = p_k - u_k``                 -- utility of agent ``k``.

These functions evaluate those quantities for *any* combination of
declared routing (which fixes the indicators) and true costs (which fix
the incurred cost), which is exactly the decoupling needed to test
strategyproofness: routes and payments respond to declarations, utility
responds to the truth.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import PriceTable, payments
from repro.routing.allpairs import AllPairsRoutes
from repro.types import Cost, NodeId

PairKey = Tuple[NodeId, NodeId]


def node_incurred_cost(
    routes: AllPairsRoutes,
    traffic: Mapping[PairKey, float],
    k: NodeId,
    true_cost: Optional[Cost] = None,
) -> Cost:
    """``u_k``: the transit cost *k* truly incurs under these routes.

    *true_cost* defaults to the cost declared in the routing instance;
    pass the true value explicitly when evaluating a lie.
    """
    cost_k = routes.graph.cost(k) if true_cost is None else float(true_cost)
    carried = 0.0
    for (source, destination), intensity in traffic.items():
        if intensity and routes.indicator(k, source, destination):
            carried += intensity
    return cost_k * carried


def total_cost(
    routes: AllPairsRoutes,
    traffic: Mapping[PairKey, float],
    true_costs: Optional[Mapping[NodeId, Cost]] = None,
) -> Cost:
    """``V(c)``: total cost to society of routing all packets.

    With *true_costs* given, the routes (indicators) come from the
    declared instance while the per-packet costs come from the truth --
    the quantity the mechanism is trying to minimize but can only
    observe through declarations.
    """
    total = 0.0
    for k in routes.graph.nodes:
        true = None if true_costs is None else true_costs.get(k)
        total += node_incurred_cost(routes, traffic, k, true_cost=true)
    return total


def node_utility(
    table: PriceTable,
    traffic: Mapping[PairKey, float],
    k: NodeId,
    true_cost: Optional[Cost] = None,
) -> Cost:
    """``tau_k = p_k - u_k`` for node *k*.

    Payments follow the declared instance embedded in *table*; the
    incurred cost uses *true_cost* when supplied (deviation analysis).
    """
    paid = payments(table, traffic)[k]
    incurred = node_incurred_cost(table.routes, traffic, k, true_cost=true_cost)
    return paid - incurred


def total_payment(
    table: PriceTable,
    traffic: Mapping[PairKey, float],
) -> Cost:
    """Total money injected by the mechanism: ``sum_k p_k``."""
    return float(sum(payments(table, traffic).values()))


def welfare_summary(
    table: PriceTable,
    traffic: Mapping[PairKey, float],
) -> Dict[str, Cost]:
    """A bundle of the headline welfare quantities for reports."""
    cost = total_cost(table.routes, traffic)
    paid = total_payment(table, traffic)
    return {
        "total_cost": cost,
        "total_payment": paid,
        "overpayment": paid - cost,
        "overpayment_ratio": (paid / cost) if cost > 0 else float("inf"),
    }
