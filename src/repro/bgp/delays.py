"""Seeded per-link propagation-delay models for the timed substrate.

The timed engine (:mod:`repro.bgp.timed`) samples one delay per
(transmission, neighbor) from a :class:`DelayModel`.  Three shapes cover
the timing-realism experiments:

* :class:`ConstantDelay` -- every transmission takes exactly ``delay``
  seconds of virtual time (``0.0`` gives the degenerate instant-delivery
  schedule used by the determinism tests);
* :class:`UniformDelay` -- i.i.d. uniform jitter in
  ``[min_delay, max_delay]``.  This is *exactly* the draw the
  :class:`~repro.bgp.engine.AsynchronousEngine` makes, one
  ``rng.uniform`` call per scheduled transmission, which is what makes
  the timed engine bit-identical to the asynchronous engine in the
  async-equivalent configuration (same seed, MRAI off);
* :class:`LogNormalDelay` -- heavy-tailed propagation times
  (``rng.lognormvariate``), the classic model for wide-area RTTs.

Models are stateless: all randomness flows through the engine's single
seeded :class:`random.Random`, so a run is a pure function of
``(graph, seed, configuration)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class DelayModel:
    """Base class: a distribution of per-transmission link delays."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def mean(self) -> float:  # pragma: no cover - abstract
        """Expected delay (used by experiments to normalize virtual time)."""
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every transmission takes exactly ``delay`` (no RNG draw)."""

    delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.delay >= 0.0:
            raise ProtocolError(f"constant delay must be >= 0, got {self.delay}")

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def describe(self) -> str:
        return f"constant:{self.delay:g}"


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """I.i.d. uniform delay in ``[min_delay, max_delay]``.

    One ``rng.uniform(min_delay, max_delay)`` draw per scheduled
    transmission -- the identical RNG consumption pattern of the
    asynchronous engine, by contract (see the async-equivalence tests).
    """

    min_delay: float = 0.1
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_delay <= self.max_delay:
            raise ProtocolError(
                f"invalid delay range [{self.min_delay}, {self.max_delay}]"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.min_delay, self.max_delay)

    def mean(self) -> float:
        return (self.min_delay + self.max_delay) / 2.0

    def describe(self) -> str:
        return f"uniform:{self.min_delay:g},{self.max_delay:g}"


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Heavy-tailed delay: ``exp(N(mu, sigma))`` seconds."""

    mu: float = -2.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if not self.sigma >= 0.0:
            raise ProtocolError(f"lognormal sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        import math

        return math.exp(self.mu + self.sigma**2 / 2.0)

    def describe(self) -> str:
        return f"lognormal:{self.mu:g},{self.sigma:g}"


def parse_delay(spec: str) -> DelayModel:
    """Parse a CLI/benchmark delay spec: ``constant:0.1``,
    ``uniform:0.05,0.5``, or ``lognormal:-2.0,0.5``."""
    kind, _, rest = spec.partition(":")
    try:
        params = [float(part) for part in rest.split(",")] if rest else []
    except ValueError:
        raise ProtocolError(f"malformed delay spec {spec!r}") from None
    if kind == "constant" and len(params) <= 1:
        return ConstantDelay(*params)
    if kind == "uniform" and len(params) == 2:
        return UniformDelay(*params)
    if kind == "lognormal" and len(params) == 2:
        return LogNormalDelay(*params)
    raise ProtocolError(
        f"unknown delay spec {spec!r}; expected constant:D, "
        "uniform:MIN,MAX, or lognormal:MU,SIGMA"
    )


def resolve_delay(spec: "str | DelayModel | None") -> "DelayModel | None":
    """Coerce any accepted delay spelling to a :class:`DelayModel`.

    Every surface that takes a delay -- ``api.run``, the timed runners,
    the CLI, the benchmarks -- accepts either a model instance or a
    :func:`parse_delay` spec string; this is the one coercion point.
    ``None`` passes through (the engine applies its own default).
    """
    if spec is None or isinstance(spec, DelayModel):
        return spec
    if isinstance(spec, str):
        return parse_delay(spec)
    raise ProtocolError(
        f"delay must be a DelayModel, a spec string, or None; "
        f"got {type(spec).__name__}"
    )
