"""Protocol engines: synchronous stages and an asynchronous relaxation.

:class:`SynchronousEngine` is the paper's model (Sect. 5): in each stage
every node receives the tables its neighbors sent at the end of the
previous stage, recomputes locally, and sends its own table to all
neighbors iff it changed.  The engine is generic over the node class, so
plain BGP and the FPSS price-computing extension run on identical
machinery and identical messages.

:class:`AsynchronousEngine` drops the synchrony assumption: messages
carry independent random delays and are processed one at a time.  The
paper analyses only the synchronous case; the asynchronous engine
demonstrates (and the tests assert) that the computation is
self-stabilizing under reordering as well.

Both engines support two transports:

* ``incremental=False`` -- the literal Sect. 5 model: full routing
  tables on every transmission.
* ``incremental=True`` (the default) -- the delta substrate: each
  transmission is a :class:`~repro.bgp.messages.RouteDelta` carrying
  only the rows that changed since the previous transmission, and only
  nodes whose inbound state changed recompute (dirty-set scheduling).
  Every model-level quantity -- stage counts, message counts,
  ``entries_sent`` (accounted as whole tables, per the model), the
  converged tables, prices, and reports -- is bit-identical to the
  full-table transport; only the transport-level ``rows_sent`` /
  ``rows_suppressed`` counters see the savings.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

import repro.obs as obs_mod
from repro.bgp.messages import (
    NOISE_REL_TOL,
    RouteAdvertisement,
    RouteDelta,
    row_materially_different,
)
from repro.bgp.metrics import ConvergenceReport, StageStats, StateReport
from repro.bgp.node import BGPNode
from repro.devtools import sanitize
from repro.obs import names as metric_names
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.exceptions import ConvergenceError, ProtocolError
from repro.graphs.asgraph import ASGraph
from repro.types import Cost, NodeId

NodeFactory = Callable[[NodeId, Cost, SelectionPolicy], BGPNode]

#: Back-compat alias; the tolerance now lives with the message-level
#: comparison in :mod:`repro.bgp.messages`.
_NOISE_REL_TOL = NOISE_REL_TOL

#: What a transmission carries on the wire: a full table or a delta.
_Payload = Union[Tuple[RouteAdvertisement, ...], RouteDelta]


def _default_factory(node_id: NodeId, cost: Cost, policy: SelectionPolicy) -> BGPNode:
    return BGPNode(node_id, cost, policy)


def _materially_different(
    old_table: Tuple[RouteAdvertisement, ...],
    new_table: Tuple[RouteAdvertisement, ...],
) -> bool:
    """Whether two published tables differ beyond float reassociation.

    Routes (paths and exact costs) must match; price entries may differ
    within :data:`~repro.bgp.messages.NOISE_REL_TOL`.  Exact equality is
    still what drives retransmission -- this predicate only affects the
    *stage counting* reported to the convergence experiments.  Interned
    rows make the common unchanged-row case a pointer check.
    """
    if len(old_table) != len(new_table):
        return True
    old_by_dest = {advert.destination: advert for advert in old_table}
    for advert in new_table:
        old = old_by_dest.get(advert.destination)
        if old is None:
            return True
        if old is not advert and row_materially_different(old, advert):
            return True
    return False


class SynchronousEngine:
    """The staged computational model of Section 5.

    Stage discipline: a node's outgoing table at the end of stage ``s``
    is a function of the tables its neighbors had sent by the end of
    stage ``s - 1``.  Stage 0 is initialization: every node publishes
    its own self-route.  ``stages`` in the report counts the stages in
    which at least one node's table changed -- the quantity Theorem 2
    bounds by ``max(d, d')``.
    """

    def __init__(
        self,
        graph: ASGraph,
        policy: Optional[SelectionPolicy] = None,
        node_factory: NodeFactory = _default_factory,
        restart_on_events: bool = True,
        incremental: bool = True,
        obs: Optional[obs_mod.Obs] = None,
    ) -> None:
        self.graph = graph
        self.policy = policy or LowestCostPolicy()
        # Ablation knob (E15): disable the Sect. 6 restart-on-change
        # semantics to demonstrate why they are necessary.
        self.restart_on_events = restart_on_events
        # Delta transport + dirty-set scheduling (bit-identical results;
        # False reverts to the literal full-table model).
        self.incremental = incremental
        # Explicit observer (None: report to the global default iff
        # observability is enabled -- see repro.obs.active()).
        self._obs = obs
        self.nodes: Dict[NodeId, BGPNode] = {
            node_id: node_factory(node_id, graph.cost(node_id), self.policy)
            for node_id in graph.nodes
        }
        if obs is not None:
            for node in self.nodes.values():
                node.obs = obs
        # The engine owns a mutable adjacency so that link dynamics do
        # not require rebuilding node state.
        self.adjacency: Dict[NodeId, Set[NodeId]] = {
            node: set(graph.neighbors(node)) for node in graph.nodes
        }
        # What each node most recently sent (per the "send only when
        # changed" rule we must remember the last transmission).  The
        # incremental transport does not maintain this map: the per-node
        # publication baseline plays that role at O(changed rows).
        self._published: Dict[NodeId, Tuple[RouteAdvertisement, ...]] = {}
        # Nodes whose table changed in the previous stage and therefore
        # transmit at the start of the next one.
        self._pending: Set[NodeId] = set()
        # Incremental transport: the delta each pending node transmits
        # next stage, and the (sender, receiver) links that still need
        # an initial full-table sync (freshly restored links).
        self._outbox: Dict[NodeId, RouteDelta] = {}
        self._unsynced: Set[Tuple[NodeId, NodeId]] = set()
        self._initialized = False
        self.stage_count = 0
        # Per-node route-key snapshots for the sanitizer's monotone
        # convergence check.  Monotonicity holds only from a cold start:
        # warm reconvergence after an event (e.g. a cost increase under
        # restart_on_events=False) legitimately worsens routes, so the
        # check is disarmed then and re-armed by a full restart.
        self._sanitize_baseline: Dict[NodeId, sanitize.RouteKeySnapshot] = {}
        self._sanitize_monotone_armed = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Stage 0: every node publishes its self-route."""
        for node_id, node in self.nodes.items():
            if self.incremental:
                # The first publication delta *is* the full table (one
                # self-route row), so no separate initial sync is needed.
                delta = node.publication_delta()
                self._outbox[node_id] = RouteDelta(
                    node_id, delta.updates, delta.withdrawals
                )
            else:
                self._published[node_id] = node.advertisements()
            self._pending.add(node_id)
        self._initialized = True
        self.stage_count = 0

    def step(self) -> StageStats:
        """Run one synchronous stage; returns its accounting.

        When an observer is active the stage runs under a
        ``bgp.stage`` span and its accounting is emitted as the
        Sect. 5 counters (``bgp.messages``, ``bgp.entries_sent``), the
        transport counters (``bgp.rows_sent``, ``bgp.rows_suppressed``)
        and the per-stage ``bgp.stage.nodes_changed`` gauge.
        """
        observer = obs_mod.active(self._obs)
        if observer is None:
            return self._step()
        with observer.span(metric_names.SPAN_STAGE, stage=self.stage_count + 1):
            stats = self._step()
        observer.count(metric_names.MESSAGES, stats.messages, type="table")
        observer.count(metric_names.ENTRIES_SENT, stats.entries_sent)
        observer.count(metric_names.ROWS_SENT, stats.rows_sent)
        observer.count(metric_names.ROWS_SUPPRESSED, stats.rows_suppressed)
        observer.gauge(
            metric_names.STAGE_NODES_CHANGED, stats.nodes_changed, stage=stats.stage
        )
        return stats

    def _step(self) -> StageStats:
        if not self._initialized:
            raise ProtocolError("engine not initialized; call initialize() first")
        if self.incremental:
            return self._step_incremental()
        self.stage_count += 1
        senders = set(self._pending)
        messages = 0
        entries = 0
        rows = 0
        # Deliveries: every pending sender transmits its full table to
        # each current neighbor.
        for sender in sorted(senders):
            table = self._published[sender]
            table_entries = sum(advert.size_entries() for advert in table)
            for neighbor in sorted(self.adjacency[sender]):
                self.nodes[neighbor].receive_table(sender, table)
                messages += 1
                entries += table_entries
                rows += len(table)
        # Local computation + publication of changed tables.
        changed: Set[NodeId] = set()
        materially_changed: Set[NodeId] = set()
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            node.decide()
            adverts = node.advertisements()
            previous = self._published.get(node_id)
            if adverts != previous:
                if previous is None or _materially_different(previous, adverts):
                    materially_changed.add(node_id)
                self._published[node_id] = adverts
                changed.add(node_id)
        self._pending = changed
        if sanitize.enabled():
            self._sanitize_stage()
        return StageStats(
            stage=self.stage_count,
            nodes_changed=len(materially_changed),
            messages=messages,
            entries_sent=entries,
            rows_sent=rows,
        )

    def _step_incremental(self) -> StageStats:
        """One stage under the delta transport.

        Bit-identity with :meth:`_step`: the same senders transmit to
        the same neighbors in the same order (so message counts and obs
        event sequences match); ``entries_sent`` still accounts whole
        published tables (the model's measure -- maintained
        incrementally via the nodes' publication baselines); and a node
        is pending/materially-changed under exactly the condition the
        full-table comparison would produce (see
        :meth:`BGPNode.publication_delta`).  Only nodes with a nonempty
        dirty set recompute: route selection and the derived price
        state are pure per-destination functions of the Adj-RIB-In, so
        skipping a node with untouched inputs leaves identical state.
        """
        self.stage_count += 1
        senders = set(self._pending)
        messages = 0
        entries = 0
        rows_sent = 0
        rows_suppressed = 0
        dirty: Dict[NodeId, Set[NodeId]] = {}
        for sender in sorted(senders):
            node = self.nodes[sender]
            delta = self._outbox.pop(sender, None)
            if delta is None:
                delta = RouteDelta(sender)
            table: Optional[Tuple[RouteAdvertisement, ...]] = None
            table_entries = node.published_entries
            for neighbor in sorted(self.adjacency[sender]):
                receiver = self.nodes[neighbor]
                if (sender, neighbor) in self._unsynced:
                    # First transmission over a (re)established link:
                    # the receiver holds no baseline, so sync the full
                    # published table once; deltas apply from then on.
                    self._unsynced.discard((sender, neighbor))
                    if table is None:
                        table = node.published_table()
                    changed_dests = receiver.receive_table(sender, table)
                    rows_sent += len(table)
                else:
                    changed_dests = receiver.receive_delta(sender, delta)
                    rows_sent += delta.size_rows()
                    rows_suppressed += node.published_rows - len(delta.updates)
                messages += 1
                entries += table_entries
                if changed_dests:
                    dirty.setdefault(neighbor, set()).update(changed_dests)
        # Local computation + publication, restricted to dirty nodes.
        # Under the sanitizer every node re-decides (idempotent, so the
        # results are unchanged) so that invariant checks keep seeing
        # the full decision process.
        decide_all = sanitize.enabled()
        changed: Set[NodeId] = set()
        materially_changed: Set[NodeId] = set()
        for node_id in sorted(self.nodes):
            node_dirty = dirty.get(node_id)
            if not node_dirty and not decide_all:
                continue
            node = self.nodes[node_id]
            if decide_all:
                node.decide()
            else:
                node.decide(node_dirty)
            delta = node.publication_delta()
            if not delta.is_empty:
                self._outbox[node_id] = RouteDelta(
                    node_id, delta.updates, delta.withdrawals
                )
                changed.add(node_id)
                if delta.material:
                    materially_changed.add(node_id)
        self._pending = changed
        if sanitize.enabled():
            self._sanitize_stage()
        return StageStats(
            stage=self.stage_count,
            nodes_changed=len(materially_changed),
            messages=messages,
            entries_sent=entries,
            rows_sent=rows_sent,
            rows_suppressed=rows_suppressed,
        )

    def run(self, max_stages: Optional[int] = None) -> ConvergenceReport:
        """Run stages until quiescence (no table changed).

        The default stage budget is generous (``4n + 16``); exceeding it
        raises :class:`ConvergenceError`, which for this protocol would
        indicate an implementation bug, not a protocol property.

        When an observer is active the run executes under a
        ``bgp.sync.run`` span and finishes by emitting the report's
        stage count (``bgp.stages``) and the per-node table-state
        gauges -- exactly the :class:`ConvergenceReport` /
        :class:`StateReport` numbers, so a recorded trace reproduces
        them bit-for-bit.
        """
        observer = obs_mod.active(self._obs)
        if observer is None:
            return self._run(max_stages)
        with observer.span(metric_names.SPAN_SYNC_RUN):
            report = self._run(max_stages)
        observer.count(metric_names.STAGES, report.stages)
        state = self.state_report()
        for node_id in sorted(state.loc_rib_entries):
            observer.gauge(
                metric_names.LOC_RIB_ENTRIES,
                state.loc_rib_entries[node_id],
                node=node_id,
            )
            observer.gauge(
                metric_names.ADJ_RIB_IN_ENTRIES,
                state.adj_rib_in_entries[node_id],
                node=node_id,
            )
            observer.gauge(
                metric_names.PRICE_ENTRIES,
                state.price_entries[node_id],
                node=node_id,
            )
        return report

    def _run(self, max_stages: Optional[int] = None) -> ConvergenceReport:
        if not self._initialized:
            self.initialize()
        limit = max_stages if max_stages is not None else 4 * self.graph.num_nodes + 16
        report = ConvergenceReport(converged=False, stages=0)
        base_stage = self.stage_count
        stages_run = 0
        while self._pending:
            if stages_run >= limit:
                raise ConvergenceError(stages=stages_run, limit=limit)
            stats = self.step()
            stages_run += 1
            if stats.nodes_changed or stats.messages:
                report.record_stage(stats)
            if stats.nodes_changed:
                # Stage counts are relative to this run(), so that
                # reconvergence epochs after dynamic events are measured
                # from the event, not from engine creation.
                report.stages = stats.stage - base_stage
        report.converged = True
        return report

    @property
    def quiescent(self) -> bool:
        return self._initialized and not self._pending

    # ------------------------------------------------------------------
    # Sanitizer hooks
    # ------------------------------------------------------------------
    def _has_live_link(self, u: NodeId, v: NodeId) -> bool:
        return v in self.adjacency.get(u, ())

    def _sanitize_stage(self) -> None:
        """Per-stage invariant checks (only when the sanitizer is on):
        every selected path is a simple, endpoint-correct walk, and no
        node's selected route key worsened within the current epoch.
        The live-link part of the path check (like monotonicity) is only
        sound in a cold epoch: during warm reconvergence, path-vector
        routing legitimately holds routes through a failed link until
        the withdrawal propagates."""
        if self._sanitize_monotone_armed:
            has_edge = self._has_live_link
        else:
            has_edge = lambda u, v: True  # noqa: E731 - stale links allowed warm
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            for destination in sorted(node.routes):
                entry = node.routes[destination]
                sanitize.check_path(
                    entry.path,
                    has_edge=has_edge,
                    source=node_id,
                    destination=destination,
                )
            if self._sanitize_monotone_armed:
                current = sanitize.snapshot_routes(node.routes)
                previous = self._sanitize_baseline.get(node_id)
                if previous is not None:
                    sanitize.check_routes_monotone(node_id, previous, current)
                self._sanitize_baseline[node_id] = current

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def _publish_event_state(self, node_id: NodeId) -> None:
        """Publish a node's table after an event (mode-appropriate)."""
        node = self.nodes[node_id]
        if self.incremental:
            self._outbox[node_id] = self._merged_outbox_delta(
                node_id, node.publication_delta()
            )
        else:
            self._published[node_id] = node.advertisements()
        self._pending.add(node_id)

    def _merged_outbox_delta(self, node_id: NodeId, delta) -> RouteDelta:
        """Fold a fresh publication delta into the node's pending
        outbox entry (events can fire between stages, before the
        previous delta was transmitted).  Receivers hold the table as
        of the *oldest* untransmitted publication, so the merged delta
        is "later rows win": an update overrides a pending withdrawal
        of the same destination and vice versa.
        """
        pending = self._outbox.get(node_id)
        if pending is None or pending.is_empty:
            return RouteDelta(node_id, delta.updates, delta.withdrawals)
        updates = {advert.destination: advert for advert in pending.updates}
        withdrawn = set(pending.withdrawals)
        for advert in delta.updates:
            updates[advert.destination] = advert
            withdrawn.discard(advert.destination)
        for destination in delta.withdrawals:
            updates.pop(destination, None)
            withdrawn.add(destination)
        return RouteDelta(
            node_id,
            tuple(updates[d] for d in sorted(updates)),
            tuple(sorted(withdrawn)),
        )

    def fail_link(self, u: NodeId, v: NodeId) -> None:
        """Remove the link ``(u, v)``; both ends drop the adjacency and
        everything learned over it, then reconverge on subsequent runs."""
        if v not in self.adjacency.get(u, ()):  # pragma: no cover - guard
            raise ProtocolError(f"no live link between {u} and {v}")
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        # A dead link needs no initial sync anymore.
        self._unsynced.discard((u, v))
        self._unsynced.discard((v, u))
        for end, other in ((u, v), (v, u)):
            node = self.nodes[end]
            node.drop_neighbor(other)
            node.decide()
            self._publish_event_state(end)
        self._restart_derived_state()

    def restore_link(self, u: NodeId, v: NodeId) -> None:
        """Re-add a previously failed link."""
        if u not in self.nodes or v not in self.nodes:
            raise ProtocolError(f"unknown endpoint on link ({u}, {v})")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        # Both endpoints must (re)transmit their tables over the new link;
        # marking them pending re-sends to all neighbors, which is the
        # worst-case behavior the model accounts anyway.  Under the delta
        # transport the new link's first exchange is a full-table sync
        # (the far end holds no baseline); the other neighbors get the
        # pending delta, empty if nothing changed.
        if self.incremental:
            self._unsynced.update(((u, v), (v, u)))
        self._pending.update((u, v))
        self._restart_derived_state()

    def change_cost(self, node_id: NodeId, cost: Cost) -> None:
        """Node *node_id* re-declares its per-packet cost."""
        node = self.nodes[node_id]
        node.set_declared_cost(cost)
        node.decide()
        self._publish_event_state(node_id)
        self._restart_derived_state()

    def _restart_derived_state(self) -> None:
        """Apply Sect. 6's restart semantics after a network change.

        "The process of converging begins again each time a route is
        changed."  For price-computing networks this must be a *full*
        protocol restart: price state derived from any pre-event
        advertisement is unusable (a stale route cost can make a price
        candidate undercut the new true price, and the monotone minimum
        never recovers), and a node cannot locally tell pre-event
        information from post-event information.  Plain BGP networks
        are left warm -- path-vector routing is self-correcting and its
        incremental reconvergence is itself worth measuring.
        """
        # A warm reconvergence epoch is not monotone (stale low-cost
        # routes persist until the news propagates); disarm the check.
        self._sanitize_baseline.clear()
        self._sanitize_monotone_armed = False
        needs_restart = self.restart_on_events and any(
            node.RESTART_ON_EVENT for node in self.nodes.values()
        )
        if needs_restart:
            self.full_restart()

    def full_restart(self) -> None:
        """Forget everything learned and reconverge from scratch (the
        paper's convergence-begins-again model)."""
        self._sanitize_baseline.clear()
        self._sanitize_monotone_armed = True
        for node_id, node in self.nodes.items():
            node.restart()
            self._publish_event_state(node_id)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> BGPNode:
        return self.nodes[node_id]

    def state_report(self) -> StateReport:
        loc = {}
        adj = {}
        price = {}
        for node_id, node in self.nodes.items():
            loc[node_id] = node.table_size_entries()
            adj[node_id] = node.rib_in.size_entries()
            price[node_id] = sum(
                len(node._prices_for(destination)) for destination in node.routes
            )
        return StateReport(
            loc_rib_entries=loc, adj_rib_in_entries=adj, price_entries=price
        )


class AsynchronousEngine:
    """Event-driven relaxation of the stage model.

    Every table transmission is an event with an independent random
    delay in ``[min_delay, max_delay]``; a node processes one incoming
    table at a time, recomputes, and (if its table changed) schedules
    transmissions to all neighbors.  Termination: the event queue drains
    (guaranteed for the static instances tested -- route keys strictly
    improve and price arrays stabilize with them).
    """

    #: Opt-in delivery schedule recorder: set to a list and every
    #: delivery appends ``(when, sender, receiver, rows)``.  The timed
    #: engine records the same tuples, which is how the differential
    #: suite asserts schedule bit-identity between the substrates.
    delivery_log: Optional[List[Tuple[float, NodeId, NodeId, int]]] = None

    def __init__(
        self,
        graph: ASGraph,
        policy: Optional[SelectionPolicy] = None,
        node_factory: NodeFactory = _default_factory,
        seed: int = 0,
        min_delay: float = 0.1,
        max_delay: float = 1.0,
        fifo_links: bool = True,
        incremental: bool = True,
        obs: Optional[obs_mod.Obs] = None,
    ) -> None:
        if not 0 < min_delay <= max_delay:
            raise ProtocolError(
                f"invalid delay range [{min_delay}, {max_delay}]"
            )
        self._obs = obs
        # Ablation knob (E15): drop the per-link FIFO guarantee to show
        # that reordered tables (impossible over TCP) corrupt state.
        self.fifo_links = fifo_links
        # Delta transport.  Deltas are only correct when consecutive
        # transmissions on a link arrive in order, so the reordering
        # ablation (fifo_links=False) silently falls back to full
        # tables -- which is also what keeps that ablation meaningful.
        self.incremental = incremental and fifo_links
        self.graph = graph
        self.policy = policy or LowestCostPolicy()
        self.nodes: Dict[NodeId, BGPNode] = {
            node_id: node_factory(node_id, graph.cost(node_id), self.policy)
            for node_id in graph.nodes
        }
        if obs is not None:
            for node in self.nodes.values():
                node.obs = obs
        self._rng = random.Random(seed)
        self._min_delay = min_delay
        self._max_delay = max_delay
        self._clock = 0.0
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, NodeId, NodeId, _Payload]] = []
        self._published: Dict[NodeId, Tuple[RouteAdvertisement, ...]] = {}
        # BGP sessions run over TCP: per-link delivery is FIFO.  Without
        # this, a newer table can overtake an older one and the receiver
        # would overwrite fresh state with stale state.
        self._link_clock: Dict[Tuple[NodeId, NodeId], float] = {}
        self.deliveries = 0
        # Transport accounting (counted when a transmission is queued).
        self.rows_sent = 0
        self.rows_suppressed = 0
        self._started = False
        # Sanitizer baseline (see SynchronousEngine); only meaningful
        # under FIFO delivery, where route keys improve monotonically.
        self._sanitize_baseline: Dict[NodeId, sanitize.RouteKeySnapshot] = {}

    def initialize(self) -> None:
        for node_id, node in self.nodes.items():
            if self.incremental:
                delta = node.publication_delta()
                self._broadcast_delta(
                    node_id, RouteDelta(node_id, delta.updates, delta.withdrawals)
                )
            else:
                self._broadcast(node_id, node.advertisements())
        self._started = True

    def _schedule(self, sender: NodeId, neighbor: NodeId, payload: _Payload) -> None:
        """Queue one transmission with a fresh random delay.  Both
        transports draw exactly one delay per (transmission, neighbor),
        so the delivery schedule -- and hence every RNG-dependent
        outcome -- is identical between them."""
        delay = self._rng.uniform(self._min_delay, self._max_delay)
        link = (sender, neighbor)
        when = self._clock + delay
        if self.fifo_links:
            when = max(when, self._link_clock.get(link, 0.0))
            self._link_clock[link] = when
        heapq.heappush(
            self._queue,
            (when, next(self._sequence), sender, neighbor, payload),
        )

    def _broadcast(self, sender: NodeId, table: Tuple[RouteAdvertisement, ...]) -> None:
        self._published[sender] = table
        for neighbor in self.graph.neighbors(sender):
            self._schedule(sender, neighbor, table)
            self.rows_sent += len(table)

    def _broadcast_delta(self, sender: NodeId, delta: RouteDelta) -> None:
        suppressed = self.nodes[sender].published_rows - len(delta.updates)
        for neighbor in self.graph.neighbors(sender):
            self._schedule(sender, neighbor, delta)
            self.rows_sent += delta.size_rows()
            self.rows_suppressed += suppressed

    def run(self, max_deliveries: Optional[int] = None) -> ConvergenceReport:
        """Drain the event queue; returns the delivery accounting.

        When an observer is active the drain runs under a
        ``bgp.async.run`` span and the deliveries this call performed
        are emitted as ``bgp.deliveries`` and as ``bgp.messages`` with
        ``type=async``.
        """
        observer = obs_mod.active(self._obs)
        if observer is None:
            return self._run(max_deliveries)
        deliveries_before = self.deliveries
        rows_before = self.rows_sent
        suppressed_before = self.rows_suppressed
        with observer.span(metric_names.SPAN_ASYNC_RUN):
            report = self._run(max_deliveries)
        delivered = self.deliveries - deliveries_before
        observer.count(metric_names.DELIVERIES, delivered)
        observer.count(metric_names.MESSAGES, delivered, type="async")
        observer.count(metric_names.ROWS_SENT, self.rows_sent - rows_before)
        observer.count(
            metric_names.ROWS_SUPPRESSED, self.rows_suppressed - suppressed_before
        )
        return report

    def _run(self, max_deliveries: Optional[int] = None) -> ConvergenceReport:
        if not self._started and not self._queue and not self._published:
            self.initialize()
        limit = max_deliveries if max_deliveries is not None else 200 * self.graph.num_nodes ** 2
        while self._queue:
            if self.deliveries >= limit:
                raise ConvergenceError(stages=self.deliveries, limit=limit)
            when, _seq, sender, receiver, payload = heapq.heappop(self._queue)
            self._clock = when
            self.deliveries += 1
            if self.delivery_log is not None:
                rows = (
                    payload.size_rows()
                    if isinstance(payload, RouteDelta)
                    else len(payload)
                )
                self.delivery_log.append((when, sender, receiver, rows))
            node = self.nodes[receiver]
            if isinstance(payload, RouteDelta):
                dirty = node.receive_delta(sender, payload)
                if sanitize.enabled():
                    # Full (idempotent) re-decision so the invariant
                    # checks see the complete decision process.
                    node.decide()
                    self._sanitize_delivery(receiver, node)
                elif dirty:
                    node.decide(dirty)
                else:
                    continue  # inputs unchanged: no recompute, no rebroadcast
                delta = node.publication_delta()
                if not delta.is_empty:
                    self._broadcast_delta(
                        receiver,
                        RouteDelta(receiver, delta.updates, delta.withdrawals),
                    )
            else:
                node.receive_table(sender, payload)
                node.decide()
                if sanitize.enabled():
                    self._sanitize_delivery(receiver, node)
                adverts = node.advertisements()
                if adverts != self._published.get(receiver):
                    self._broadcast(receiver, adverts)
        report = ConvergenceReport(converged=True, stages=0)
        report.total_messages = self.deliveries
        report.total_rows_sent = self.rows_sent
        report.total_rows_suppressed = self.rows_suppressed
        return report

    def _sanitize_delivery(self, receiver: NodeId, node: BGPNode) -> None:
        """Invariant checks after one delivery (sanitizer on only)."""
        for destination in sorted(node.routes):
            entry = node.routes[destination]
            sanitize.check_path(
                entry.path,
                has_edge=self.graph.has_edge,
                source=receiver,
                destination=destination,
            )
        if self.fifo_links:
            current = sanitize.snapshot_routes(node.routes)
            previous = self._sanitize_baseline.get(receiver)
            if previous is not None:
                sanitize.check_routes_monotone(receiver, previous, current)
            self._sanitize_baseline[receiver] = current

    def node(self, node_id: NodeId) -> BGPNode:
        return self.nodes[node_id]
