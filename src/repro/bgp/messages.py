"""Routing messages.

The only message in the model is the route advertisement: "each router
sends its routing table and its declared cost to its neighbors"
(Sect. 5).  One :class:`RouteAdvertisement` is one routing-table row in
flight; a full table exchange is a list of them.

The FPSS extension (Sect. 6) adds the price array to the *same*
message -- no new message types are introduced, which keeps the
communication pattern of BGP intact and is what Theorem 2's
constant-factor claim is about.  Plain BGP simply leaves ``prices``
empty.

Advertisements are immutable snapshots: the ``(path, cost, node_costs,
prices)`` fields were computed together by the sender and must be
interpreted together by the receiver (the correctness of the price
update rules relies on this internal consistency).

Two transport-level refinements ride on top of the model:

* **Hash-consing.**  :func:`intern_advertisement` canonicalizes rows so
  that a row whose content did not change between stages is the *same
  object*.  Unchanged-row comparisons then hit CPython's pointer
  fast path instead of rebuilding and comparing dictionaries, which is
  what makes "did my table change?" O(changed rows).
* **Delta exchanges.**  A :class:`RouteDelta` carries only the rows
  that changed since the sender's previous transmission, plus explicit
  withdrawals.  Applying a delta to the receiver's stored slice yields
  exactly the state a full-table exchange would have left, so the
  model-level accounting (and every converged result) is unchanged;
  only the transported row count shrinks.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.exceptions import ProtocolError
from repro.types import Cost, NodeId, PathTuple

#: Relative tolerance below which a price revision is considered
#: floating-point noise rather than new information.  Price candidates
#: for the same k-avoiding path can arrive via different neighbors with
#: differently associated sums; the monotone minimum then "improves" by
#: one ulp, which must not count as a convergence stage.
NOISE_REL_TOL = 1e-9


@dataclass(frozen=True, eq=False)
class RouteAdvertisement:
    """One routing-table row sent from ``sender`` to a neighbor.

    Attributes
    ----------
    sender:
        The advertising AS; always ``path[0]``.
    destination:
        The destination AS; always ``path[-1]``.
    path:
        The advertised AS path, sender first.  A destination advertises
        itself with the one-node path ``(destination,)``.
    cost:
        The transit cost of ``path`` (destination-first accumulation).
    node_costs:
        Declared per-packet costs of every node on ``path`` -- this is
        how cost declarations propagate through the network.
    prices:
        The sender's VCG price array for this destination:
        ``k -> p^k_{sender,destination}`` for each transit node ``k`` on
        ``path``.  Entries may be ``inf`` while the computation is still
        converging.  Empty for plain BGP.
    generation:
        The price-computation epoch this advertisement belongs to.
        Section 6 requires price convergence to "start over" whenever
        the network changes; tagging advertisements with an epoch is the
        distributed realization: a restarted node ignores price arrays
        from earlier epochs (their values priced the *old* network and
        could undercut the new true prices, which a monotone minimum
        would never recover from).  Routes ignore the tag -- path-vector
        routing is self-correcting without it.
    """

    sender: NodeId
    destination: NodeId
    path: PathTuple
    cost: Cost
    node_costs: Mapping[NodeId, Cost] = field(default_factory=dict)
    prices: Mapping[NodeId, Cost] = field(default_factory=dict)
    generation: int = 0

    def __post_init__(self) -> None:
        if not self.path:
            raise ProtocolError("advertisement with empty path")
        if self.path[0] != self.sender:
            raise ProtocolError(
                f"path {self.path} does not start at sender {self.sender}"
            )
        if self.path[-1] != self.destination:
            raise ProtocolError(
                f"path {self.path} does not end at destination {self.destination}"
            )
        if len(set(self.path)) != len(self.path):
            raise ProtocolError(f"advertised path revisits a node: {self.path}")

    # -- identity ------------------------------------------------------
    # ``eq=False`` above: equality and hashing are hand-written so that
    # (a) the pointer fast path short-circuits interned rows and (b) the
    # hash -- over a canonical tuple, since mapping fields are unhashable
    # -- is computed once and cached.
    def _intern_key(self) -> Tuple:
        return (
            self.sender,
            self.destination,
            self.path,
            self.cost,
            tuple(sorted(self.node_costs.items())),
            tuple(sorted(self.prices.items())),
            self.generation,
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RouteAdvertisement):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.destination == other.destination
            and self.path == other.path
            and self.cost == other.cost  # repro-lint: ok(RPR001)
            and self.generation == other.generation
            and dict(self.node_costs) == dict(other.node_costs)
            and dict(self.prices) == dict(other.prices)
        )

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self._intern_key())
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def is_self_route(self) -> bool:
        """Whether this is a destination advertising itself."""
        return len(self.path) == 1

    @property
    def sender_cost(self) -> Cost:
        """The sender's own declared cost, as carried by the message."""
        try:
            return self.node_costs[self.sender]
        except KeyError:
            raise ProtocolError(
                f"advertisement from {self.sender} does not carry its own cost"
            ) from None

    def size_entries(self) -> int:
        """Message size in table entries: AS numbers on the path, cost
        scalars, and price scalars.  Used by the communication
        accounting of experiment E6."""
        return len(self.path) + len(self.node_costs) + len(self.prices)


#: The hash-cons table.  Weak values: a row is kept only while some
#: node's table (or an in-flight message) still references it, so the
#: table never outgrows the live protocol state.
_INTERN_TABLE: "weakref.WeakValueDictionary[Tuple, RouteAdvertisement]" = (
    weakref.WeakValueDictionary()
)


def intern_advertisement(advert: RouteAdvertisement) -> RouteAdvertisement:
    """Return the canonical instance for *advert*'s content.

    Rebuilding a row whose content did not change hands back the
    previously interned object, so cross-stage "did it change?" checks
    are pointer comparisons.  Rows must be treated as immutable after
    interning (they already are documented as immutable snapshots).
    """
    key = advert._intern_key()
    existing = _INTERN_TABLE.get(key)
    if existing is not None:
        return existing
    _INTERN_TABLE[key] = advert
    return advert


def row_materially_different(
    old: RouteAdvertisement,
    new: RouteAdvertisement,
    rel_tol: float = NOISE_REL_TOL,
) -> bool:
    """Whether two rows for the same destination differ beyond float
    reassociation.  Routes (paths and exact costs) must match; price
    entries may differ within *rel_tol*.  Exact equality is still what
    drives retransmission -- this predicate only affects the *stage
    counting* reported to the convergence experiments.
    """
    # Exact comparison is deliberate: both engines accumulate costs
    # bit-identically, so any difference is a real route change.
    if old.path != new.path or old.cost != new.cost:  # repro-lint: ok(RPR001)
        return True
    if dict(old.node_costs) != dict(new.node_costs):
        return True
    if set(old.prices) != set(new.prices):
        return True
    for k, value in new.prices.items():
        previous = old.prices[k]
        if previous == value:
            continue
        if math.isinf(previous) or math.isinf(value):
            return True
        if not math.isclose(previous, value, rel_tol=rel_tol, abs_tol=1e-12):
            return True
    return False


@dataclass(frozen=True)
class RouteDelta:
    """A differential table exchange: only what changed since the
    sender's previous transmission to this neighbor.

    Semantically equivalent to re-sending the full table: applying
    ``updates`` then ``withdrawals`` to the receiver's stored slice for
    ``sender`` leaves exactly the slice a full-table replacement would
    have left.  The model of Sect. 5 sends whole tables for worst-case
    accounting; the delta is the real-BGP incremental optimization the
    paper sets aside, reintroduced *under* the model so the accounted
    measures (stages, messages, table entries) are untouched while the
    transported rows shrink to O(changed rows).

    ``updates`` carries full replacement rows (never partial edits), so
    a delta that overtakes the receiver's expectations is still applied
    consistently row-by-row; ordering guarantees (synchronous stages or
    per-link FIFO) are required only across *deltas*, exactly as they
    are across full tables.
    """

    sender: NodeId
    updates: Tuple[RouteAdvertisement, ...] = ()
    withdrawals: Tuple[NodeId, ...] = ()

    def __post_init__(self) -> None:
        seen = set(self.withdrawals)
        if len(seen) != len(self.withdrawals):
            raise ProtocolError(f"delta withdraws a destination twice: {self}")
        for advert in self.updates:
            if advert.sender != self.sender:
                raise ProtocolError(
                    f"delta from {self.sender} carries a row from {advert.sender}"
                )
            if advert.destination in seen:
                raise ProtocolError(
                    f"delta both updates and withdraws {advert.destination}"
                )
            seen.add(advert.destination)
        if len(seen) != len(self.updates) + len(self.withdrawals):
            raise ProtocolError(f"delta updates a destination twice: {self}")

    @property
    def is_empty(self) -> bool:
        return not self.updates and not self.withdrawals

    def size_rows(self) -> int:
        """Transported rows: replacement rows plus withdrawal markers."""
        return len(self.updates) + len(self.withdrawals)

    def size_entries(self) -> int:
        """Transported table entries (withdrawal markers count one)."""
        return sum(advert.size_entries() for advert in self.updates) + len(
            self.withdrawals
        )


def table_to_advertisements(
    sender: NodeId,
    table: Mapping[NodeId, "object"],
) -> Tuple[RouteAdvertisement, ...]:
    """Convenience for tests: materialize a full-table exchange."""
    adverts = []
    for destination, entry in sorted(table.items()):
        adverts.append(
            RouteAdvertisement(
                sender=sender,
                destination=destination,
                path=entry.path,
                cost=entry.cost,
                node_costs=dict(entry.node_costs),
                prices=dict(getattr(entry, "prices", {})),
            )
        )
    return tuple(adverts)
