"""Routing messages.

The only message in the model is the route advertisement: "each router
sends its routing table and its declared cost to its neighbors"
(Sect. 5).  One :class:`RouteAdvertisement` is one routing-table row in
flight; a full table exchange is a list of them.

The FPSS extension (Sect. 6) adds the price array to the *same*
message -- no new message types are introduced, which keeps the
communication pattern of BGP intact and is what Theorem 2's
constant-factor claim is about.  Plain BGP simply leaves ``prices``
empty.

Advertisements are immutable snapshots: the ``(path, cost, node_costs,
prices)`` fields were computed together by the sender and must be
interpreted together by the receiver (the correctness of the price
update rules relies on this internal consistency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.exceptions import ProtocolError
from repro.types import Cost, NodeId, PathTuple


@dataclass(frozen=True)
class RouteAdvertisement:
    """One routing-table row sent from ``sender`` to a neighbor.

    Attributes
    ----------
    sender:
        The advertising AS; always ``path[0]``.
    destination:
        The destination AS; always ``path[-1]``.
    path:
        The advertised AS path, sender first.  A destination advertises
        itself with the one-node path ``(destination,)``.
    cost:
        The transit cost of ``path`` (destination-first accumulation).
    node_costs:
        Declared per-packet costs of every node on ``path`` -- this is
        how cost declarations propagate through the network.
    prices:
        The sender's VCG price array for this destination:
        ``k -> p^k_{sender,destination}`` for each transit node ``k`` on
        ``path``.  Entries may be ``inf`` while the computation is still
        converging.  Empty for plain BGP.
    generation:
        The price-computation epoch this advertisement belongs to.
        Section 6 requires price convergence to "start over" whenever
        the network changes; tagging advertisements with an epoch is the
        distributed realization: a restarted node ignores price arrays
        from earlier epochs (their values priced the *old* network and
        could undercut the new true prices, which a monotone minimum
        would never recover from).  Routes ignore the tag -- path-vector
        routing is self-correcting without it.
    """

    sender: NodeId
    destination: NodeId
    path: PathTuple
    cost: Cost
    node_costs: Mapping[NodeId, Cost] = field(default_factory=dict)
    prices: Mapping[NodeId, Cost] = field(default_factory=dict)
    generation: int = 0

    def __post_init__(self) -> None:
        if not self.path:
            raise ProtocolError("advertisement with empty path")
        if self.path[0] != self.sender:
            raise ProtocolError(
                f"path {self.path} does not start at sender {self.sender}"
            )
        if self.path[-1] != self.destination:
            raise ProtocolError(
                f"path {self.path} does not end at destination {self.destination}"
            )
        if len(set(self.path)) != len(self.path):
            raise ProtocolError(f"advertised path revisits a node: {self.path}")

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def is_self_route(self) -> bool:
        """Whether this is a destination advertising itself."""
        return len(self.path) == 1

    @property
    def sender_cost(self) -> Cost:
        """The sender's own declared cost, as carried by the message."""
        try:
            return self.node_costs[self.sender]
        except KeyError:
            raise ProtocolError(
                f"advertisement from {self.sender} does not carry its own cost"
            ) from None

    def size_entries(self) -> int:
        """Message size in table entries: AS numbers on the path, cost
        scalars, and price scalars.  Used by the communication
        accounting of experiment E6."""
        return len(self.path) + len(self.node_costs) + len(self.prices)


def table_to_advertisements(
    sender: NodeId,
    table: Mapping[NodeId, "object"],
) -> Tuple[RouteAdvertisement, ...]:
    """Convenience for tests: materialize a full-table exchange."""
    adverts = []
    for destination, entry in sorted(table.items()):
        adverts.append(
            RouteAdvertisement(
                sender=sender,
                destination=destination,
                path=entry.path,
                cost=entry.cost,
                node_costs=dict(entry.node_costs),
                prices=dict(getattr(entry, "prices", {})),
            )
        )
    return tuple(adverts)
