"""The BGP computational model of Section 5.

An abstraction of BGP after Griffin and Wilfong, exactly as the paper
adopts it: the network is the AS graph; every node stores, per
destination, a selected path and its cost; computation proceeds in
stages (receive tables -> local computation -> send own table if it
changed); complexity is measured in stages to convergence, messages and
routing-table size.

The engine is generic over the node type: plain
:class:`~repro.bgp.node.BGPNode` computes routes only, while the FPSS
:class:`~repro.core.price_node.PriceComputingNode` rides the same
message exchange to compute VCG prices (Sect. 6's "no new messages"
requirement is structural here -- the engine has no other channel).
"""

from repro.bgp.messages import RouteAdvertisement
from repro.bgp.node import BGPNode
from repro.bgp.policy import HopCountPolicy, LowestCostPolicy, SelectionPolicy
from repro.bgp.engine import AsynchronousEngine, SynchronousEngine
from repro.bgp.events import CostChange, LinkFailure, LinkRecovery
from repro.bgp.metrics import ConvergenceReport, StateReport, TimedReport
from repro.bgp.delays import (
    ConstantDelay,
    DelayModel,
    LogNormalDelay,
    UniformDelay,
    parse_delay,
    resolve_delay,
)
from repro.bgp.timed import (
    MRAI_PEER,
    MRAI_PREFIX,
    MRAIConfig,
    TimedEngine,
    resolve_mrai,
)

__all__ = [
    "RouteAdvertisement",
    "BGPNode",
    "HopCountPolicy",
    "LowestCostPolicy",
    "SelectionPolicy",
    "AsynchronousEngine",
    "SynchronousEngine",
    "TimedEngine",
    "CostChange",
    "LinkFailure",
    "LinkRecovery",
    "ConvergenceReport",
    "StateReport",
    "TimedReport",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "LogNormalDelay",
    "parse_delay",
    "resolve_delay",
    "resolve_mrai",
    "MRAIConfig",
    "MRAI_PEER",
    "MRAI_PREFIX",
]
