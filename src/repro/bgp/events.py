"""Dynamic events: the "route changes" of Section 6.

The paper notes that convergence restarts whenever a route changes; the
experiment on dynamics (E10) drives the engines through scripted event
sequences built from these three primitives and measures the
re-convergence stages against the bound for the *new* instance.

Events are engine-agnostic: anything exposing the dynamics surface
(:class:`SupportsDynamics` -- the synchronous, asynchronous-timed, and
future substrates) can be driven by the same scripted sequences, either
between runs (the staged model) or scheduled at a virtual timestamp
(the timed model).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Protocol

from repro.types import Cost, NodeId


class SupportsDynamics(Protocol):
    """The mutation surface a scripted event needs from an engine."""

    def fail_link(self, u: NodeId, v: NodeId) -> None: ...

    def restore_link(self, u: NodeId, v: NodeId) -> None: ...

    def change_cost(self, node_id: NodeId, cost: Cost) -> None: ...


class NetworkEvent(abc.ABC):
    """A scripted change applied to a running engine."""

    @abc.abstractmethod
    def apply(self, engine: SupportsDynamics) -> None:
        """Mutate the engine's network; convergence restarts after."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human description for experiment logs."""


@dataclass(frozen=True)
class LinkFailure(NetworkEvent):
    """A bidirectional interconnection goes down."""

    u: NodeId
    v: NodeId

    def apply(self, engine: SupportsDynamics) -> None:
        engine.fail_link(self.u, self.v)

    def describe(self) -> str:
        return f"link ({self.u}, {self.v}) fails"


@dataclass(frozen=True)
class LinkRecovery(NetworkEvent):
    """A previously failed interconnection comes back."""

    u: NodeId
    v: NodeId

    def apply(self, engine: SupportsDynamics) -> None:
        engine.restore_link(self.u, self.v)

    def describe(self) -> str:
        return f"link ({self.u}, {self.v}) recovers"


@dataclass(frozen=True)
class CostChange(NetworkEvent):
    """An AS re-declares its per-packet transit cost."""

    node: NodeId
    new_cost: Cost

    def apply(self, engine: SupportsDynamics) -> None:
        engine.change_cost(self.node, self.new_cost)

    def describe(self) -> str:
        return f"node {self.node} re-declares cost {self.new_cost}"
