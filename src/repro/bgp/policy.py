"""Route-selection policies.

The paper assumes every AS uses *lowest cost* as its routing policy
(with the standing caveat of Sect. 1 that real BGP computes shortest AS
paths instead -- "it would be trivial to modify BGP so that it computes
LCPs; in what follows, we assume that this modification has been made").
Both policies are provided:

* :class:`LowestCostPolicy` -- the paper's assumption; identical total
  order to the centralized reference (:mod:`repro.routing.tiebreak`).
* :class:`HopCountPolicy` -- what unmodified BGP does; used as the E9
  baseline to quantify how much cost the hop-count heuristic leaves on
  the table.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

from repro.routing.tiebreak import route_key
from repro.types import Cost, NodeId


class SelectionPolicy(abc.ABC):
    """A total order on candidate routes toward a fixed destination.

    Smaller keys win.  Keys for candidates of the same source node must
    be mutually comparable tuples; the concrete policies below satisfy
    this with ``(scalar..., path)`` shapes.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def key(self, cost: Cost, path: Sequence[NodeId]) -> Tuple:
        """The comparison key of a candidate with this transit *cost*
        and AS *path* (candidate's own node first)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LowestCostPolicy(SelectionPolicy):
    """Prefer lower transit cost, then fewer hops, then lexicographic
    path -- the canonical order shared with the centralized engines."""

    name = "lowest-cost"

    def key(self, cost: Cost, path: Sequence[NodeId]) -> Tuple:
        return route_key(cost, path)


class HopCountPolicy(SelectionPolicy):
    """Prefer fewer AS hops (vanilla BGP), then lexicographic path.

    Cost is ignored for selection but still carried, so the route
    quality gap versus :class:`LowestCostPolicy` can be measured.
    """

    name = "hop-count"

    def key(self, cost: Cost, path: Sequence[NodeId]) -> Tuple:
        path = tuple(path)
        return (len(path) - 1, path)
