"""Discrete-event timed BGP substrate: link delays, jitter, and MRAI.

The paper's Sect. 5 model abstracts time away into stage counts, and the
:class:`~repro.bgp.engine.AsynchronousEngine` relaxes it only as far as
uniformly jittered deliveries.  :class:`TimedEngine` is the full
discrete-event simulator: a priority queue of timestamped events drives

* UPDATE deliveries with a pluggable seeded per-link delay distribution
  (:mod:`repro.bgp.delays`: constant / uniform-jitter / lognormal),
* MRAI (Minimum Route Advertisement Interval) hold-down timers in both
  peer-based and prefix(destination)-based modes, with optional jitter,
* timed network events (:class:`~repro.bgp.events.NetworkEvent`
  scheduled at a virtual timestamp, including LINK_DOWN / LINK_UP while
  UPDATEs are still in flight).

The transport is the delta substrate throughout
(:class:`~repro.bgp.messages.RouteDelta` + dirty-set scheduling);
restored links get one full-table initial sync, exactly as in the staged
engine.

Determinism contract
--------------------
A run is a pure function of ``(graph, seed, configuration)``: all
randomness flows through one seeded :class:`random.Random`, heap ties
break on a monotone sequence number, and every iteration over node or
neighbor sets is sorted.  In the *async-equivalent configuration* --
``delay=UniformDelay(lo, hi)``, ``mrai=None``, no scheduled events --
the engine consumes the RNG in exactly the order the asynchronous engine
does (one ``uniform`` draw per (transmission, neighbor) in ascending
neighbor order) and applies the same per-link FIFO clamp, so the
delivered-message schedule, the final model, and the transport counters
are bit-identical to ``AsynchronousEngine(seed=seed)``.

Losses and epochs
-----------------
BGP sessions die with their link: an UPDATE in flight across a link
that fails is never delivered.  Each direction of a link carries an
epoch counter, bumped on failure; deliveries whose stamped epoch is
stale are dropped (counted in ``messages_lost`` / ``rows_lost``).  A
Sect. 6 full restart bumps a global update epoch instead, dropping
*all* in-flight traffic -- the session-reset semantics of
"convergence begins again".
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

import repro.obs as obs_mod
from repro.bgp.delays import DelayModel, UniformDelay, resolve_delay
from repro.bgp.engine import NodeFactory, _default_factory
from repro.bgp.events import NetworkEvent
from repro.bgp.messages import RouteAdvertisement, RouteDelta
from repro.bgp.metrics import StateReport, TimedReport
from repro.bgp.node import BGPNode
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.devtools import sanitize
from repro.exceptions import ConvergenceError, ProtocolError
from repro.graphs.asgraph import ASGraph
from repro.obs import names as metric_names
from repro.types import Cost, NodeId

#: MRAI timer granularities (RFC 4271 runs one timer per peer; classic
#: rate-limiting literature studies the per-prefix variant).
MRAI_PEER = "peer"
MRAI_PREFIX = "prefix"

#: Event kinds on the queue.  Never compared (the sequence number breaks
#: every heap tie), so plain strings are fine.
EVENT_UPDATE = "update"
EVENT_MRAI = "mrai"
EVENT_NETWORK = "network"

#: What an UPDATE carries: a delta, or a full table (initial link sync).
_Body = Union[RouteDelta, Tuple[RouteAdvertisement, ...]]

#: MRAI timer key: (sender, peer) or (sender, peer, destination).
_MraiKey = Union[Tuple[NodeId, NodeId], Tuple[NodeId, NodeId, NodeId]]


@dataclass(frozen=True)
class MRAIConfig:
    """Minimum Route Advertisement Interval configuration.

    ``interval`` is the hold-down in virtual seconds after a
    transmission on a timer's scope before the next one may go out.
    ``mode`` picks the scope: :data:`MRAI_PEER` (one timer per directed
    link, RFC 4271) or :data:`MRAI_PREFIX` (one timer per directed link
    and destination).  ``jitter`` is the standard fractional jitter:
    each arming draws the effective interval uniformly from
    ``[interval * (1 - jitter), interval]``.
    """

    interval: float
    mode: str = MRAI_PEER
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.interval > 0.0:
            raise ProtocolError(f"MRAI interval must be > 0, got {self.interval}")
        if self.mode not in (MRAI_PEER, MRAI_PREFIX):
            raise ProtocolError(f"unknown MRAI mode {self.mode!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ProtocolError(f"MRAI jitter must be in [0, 1], got {self.jitter}")

    def describe(self) -> str:
        jitter = f",jitter={self.jitter:g}" if self.jitter else ""
        return f"mrai:{self.mode}:{self.interval:g}{jitter}"


def resolve_mrai(spec: "dict | MRAIConfig | None") -> "MRAIConfig | None":
    """Coerce any accepted MRAI spelling to an :class:`MRAIConfig`.

    Mirrors :func:`repro.bgp.delays.resolve_delay`: every surface that
    takes an MRAI configuration accepts either a config instance or a
    keyword dict (``{"interval": 1.0, "mode": "peer", "jitter": 0.25}``)
    validated by the :class:`MRAIConfig` constructor itself.  ``None``
    passes through (hold-down off).
    """
    if spec is None or isinstance(spec, MRAIConfig):
        return spec
    if isinstance(spec, dict):
        try:
            return MRAIConfig(**spec)
        except TypeError as exc:
            raise ProtocolError(f"malformed MRAI spec {spec!r}: {exc}") from None
    raise ProtocolError(
        f"mrai must be an MRAIConfig, a keyword dict, or None; "
        f"got {type(spec).__name__}"
    )


class TimedEngine:
    """Discrete-event relaxation of the stage model with real timers.

    The event loop pops ``(when, seq, kind, payload)`` entries off a
    heap; ``when`` is virtual time (monotone: delays and intervals are
    nonnegative, and scheduling into the past is rejected), ``seq`` a
    global monotone counter that makes tie-breaking deterministic.
    """

    #: Opt-in delivery schedule recorder; same tuple format as
    #: :attr:`AsynchronousEngine.delivery_log` (the differential tests
    #: compare the two lists directly).
    delivery_log: Optional[List[Tuple[float, NodeId, NodeId, int]]] = None

    #: Opt-in full event trace: every pop appends
    #: ``(when, kind, detail)``.  Same seed, same configuration => same
    #: trace, which is what the determinism tests assert.
    event_log: Optional[List[Tuple[float, str, object]]] = None

    def __init__(
        self,
        graph: ASGraph,
        policy: Optional[SelectionPolicy] = None,
        node_factory: NodeFactory = _default_factory,
        restart_on_events: bool = True,
        seed: int = 0,
        delay: Union[str, DelayModel, None] = None,
        mrai: Union[dict, MRAIConfig, None] = None,
        fifo_links: bool = True,
        obs: Optional[obs_mod.Obs] = None,
    ) -> None:
        if not fifo_links:
            raise ProtocolError(
                "the timed engine rides the delta transport, which requires "
                "per-link FIFO delivery; use AsynchronousEngine(fifo_links="
                "False) for the reordering ablation"
            )
        self.graph = graph
        self.policy = policy or LowestCostPolicy()
        self.restart_on_events = restart_on_events
        #: Same defaults as the asynchronous engine's [0.1, 1.0] jitter.
        #: Spec strings / keyword dicts coerce here, so every caller --
        #: api.run, the CLI, the benchmarks -- shares one parsing path.
        resolved_delay = resolve_delay(delay)
        self.delay = resolved_delay if resolved_delay is not None else UniformDelay()
        self.mrai = resolve_mrai(mrai)
        self._obs = obs
        self.nodes: Dict[NodeId, BGPNode] = {
            node_id: node_factory(node_id, graph.cost(node_id), self.policy)
            for node_id in graph.nodes
        }
        if obs is not None:
            for node in self.nodes.values():
                node.obs = obs
        self.adjacency: Dict[NodeId, Set[NodeId]] = {
            node: set(graph.neighbors(node)) for node in graph.nodes
        }
        self._rng = random.Random(seed)
        self._clock = 0.0
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, str, object]] = []
        # Per-link FIFO (TCP sessions): a transmission never arrives
        # before an earlier one on the same directed link.
        self._link_clock: Dict[Tuple[NodeId, NodeId], float] = {}
        # Loss epochs: per-directed-link (bumped on failure) and global
        # (bumped on full restart); UPDATEs stamped with stale epochs
        # are dropped at delivery time.
        self._link_epoch: Dict[Tuple[NodeId, NodeId], int] = {}
        self._update_epoch = 0
        # Restored links awaiting their initial full-table sync.
        self._unsynced: Set[Tuple[NodeId, NodeId]] = set()
        # MRAI state: earliest next-send time per timer scope, pending
        # (coalesced) rows per directed link, and the armed-expiry
        # tokens that invalidate in-flight timer events on teardown.
        self._mrai_ready: Dict[_MraiKey, float] = {}
        self._mrai_pending: Dict[Tuple[NodeId, NodeId], Dict[NodeId, Optional[RouteAdvertisement]]] = {}
        self._mrai_armed: Dict[_MraiKey, int] = {}
        self._mrai_token = 0
        # Accounting (cumulative across run() calls, like the async
        # engine's): see TimedReport for the reconciliation invariants.
        self.deliveries = 0
        self.messages_lost = 0
        self.rows_offered = 0
        self.rows_sent = 0
        self.rows_delivered = 0
        self.rows_suppressed = 0
        self.rows_lost = 0
        self.mrai_deferrals = 0
        self.mrai_flushes = 0
        self.mrai_rows_coalesced = 0
        self.mrai_rows_discarded = 0
        self.network_events = 0
        self.convergence_time = 0.0
        self._events_processed = 0
        self._started = False
        # Last snapshot emitted to an observer (see run()): counter
        # deltas are taken against this, so initialization traffic is
        # attributed to the first observed run.
        self._emitted = TimedReport(converged=False)
        # Sanitizer state (see SynchronousEngine: monotonicity only
        # holds in a cold epoch, so events disarm the check and a full
        # restart re-arms it).
        self._sanitize_baseline: Dict[NodeId, sanitize.RouteKeySnapshot] = {}
        self._sanitize_monotone_armed = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Every node publishes its self-route at virtual time 0."""
        for node_id, node in self.nodes.items():
            delta = node.publication_delta()
            self._broadcast_delta(
                node_id, RouteDelta(node_id, delta.updates, delta.withdrawals)
            )
        self._started = True

    @property
    def clock(self) -> float:
        """Current virtual time (seconds since the run started)."""
        return self._clock

    @property
    def quiescent(self) -> bool:
        return self._started and not self._queue

    def pending_mrai_rows(self) -> int:
        """Rows currently held back by MRAI timers (drains to 0)."""
        return sum(len(pending) for pending in self._mrai_pending.values())

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule_event(self, when: float, event: NetworkEvent) -> None:
        """Schedule a network event at virtual time ``when``.

        Events interleave with in-flight UPDATEs: a link can fail while
        traffic addressed across it is still queued (those messages are
        lost), which is the coverage the staged engines cannot express.
        """
        if when < self._clock:
            raise ProtocolError(
                f"cannot schedule an event at {when} before the clock ({self._clock})"
            )
        heapq.heappush(
            self._queue, (when, next(self._sequence), EVENT_NETWORK, event)
        )

    def _transmit(self, sender: NodeId, neighbor: NodeId, body: _Body) -> None:
        """Put one transmission on the wire: sample the link delay,
        apply the per-link FIFO clamp, stamp the loss epochs."""
        link = (sender, neighbor)
        delay = self.delay.sample(self._rng)
        when = max(self._clock + delay, self._link_clock.get(link, 0.0))
        self._link_clock[link] = when
        rows = body.size_rows() if isinstance(body, RouteDelta) else len(body)
        self.rows_sent += rows
        payload = (
            sender,
            neighbor,
            self._link_epoch.get(link, 0),
            self._update_epoch,
            body,
        )
        heapq.heappush(
            self._queue, (when, next(self._sequence), EVENT_UPDATE, payload)
        )

    def _broadcast_delta(self, sender: NodeId, delta: RouteDelta) -> None:
        """Offer a publication delta to every live neighbor.

        Restored links get the full published table once (bypassing
        MRAI: the initial sync *is* the session establishment); all
        other links get the delta, through the MRAI layer when one is
        configured.  ``rows_suppressed`` uses the asynchronous engine's
        formula (published rows the delta avoided resending), counted
        per neighbor at offer time so the counters stay bit-identical
        in the async-equivalent configuration.
        """
        node = self.nodes[sender]
        suppressed = node.published_rows - len(delta.updates)
        for neighbor in sorted(self.adjacency[sender]):
            if (sender, neighbor) in self._unsynced:
                self._unsynced.discard((sender, neighbor))
                table = node.published_table()
                self.rows_offered += len(table)
                self._transmit(sender, neighbor, table)
                continue
            self.rows_offered += delta.size_rows()
            self.rows_suppressed += suppressed
            if self.mrai is None:
                self._transmit(sender, neighbor, delta)
            else:
                self._offer_mrai(sender, neighbor, delta)

    # ------------------------------------------------------------------
    # MRAI layer
    # ------------------------------------------------------------------
    def _mrai_key(self, link: Tuple[NodeId, NodeId], destination: NodeId) -> _MraiKey:
        if self.mrai is not None and self.mrai.mode == MRAI_PREFIX:
            return (link[0], link[1], destination)
        return link

    def _mrai_interval(self) -> float:
        assert self.mrai is not None
        interval = self.mrai.interval
        if self.mrai.jitter:
            interval = self._rng.uniform(
                interval * (1.0 - self.mrai.jitter), interval
            )
        return interval

    def _offer_mrai(
        self, sender: NodeId, neighbor: NodeId, delta: RouteDelta
    ) -> None:
        """Partition a delta into rows the MRAI allows now and rows held
        back; held rows coalesce per destination (last row wins, which
        is sound because delta rows are absolute per-destination
        values and per-link delivery is FIFO)."""
        link = (sender, neighbor)
        now = self._clock
        send_updates: List[RouteAdvertisement] = []
        send_withdrawals: List[NodeId] = []
        for advert in delta.updates:
            key = self._mrai_key(link, advert.destination)
            if self._mrai_ready.get(key, 0.0) > now:
                self._defer_row(link, key, advert.destination, advert)
            else:
                send_updates.append(advert)
        for destination in delta.withdrawals:
            key = self._mrai_key(link, destination)
            if self._mrai_ready.get(key, 0.0) > now:
                self._defer_row(link, key, destination, None)
            else:
                send_withdrawals.append(destination)
        if send_updates or send_withdrawals:
            out = RouteDelta(sender, tuple(send_updates), tuple(send_withdrawals))
            self._transmit(sender, neighbor, out)
            self._stamp_mrai(link, out)

    def _defer_row(
        self,
        link: Tuple[NodeId, NodeId],
        key: _MraiKey,
        destination: NodeId,
        advert: Optional[RouteAdvertisement],
    ) -> None:
        pending = self._mrai_pending.setdefault(link, {})
        if destination in pending:
            # The previously pending row for this destination is now
            # obsolete and will never be sent -- the MRAI did its job.
            self.mrai_rows_coalesced += 1
        pending[destination] = advert
        self.mrai_deferrals += 1
        if key not in self._mrai_armed:
            # Lazy arming: the expiry event exists only once a row is
            # actually blocked on the timer.
            self._mrai_token += 1
            self._mrai_armed[key] = self._mrai_token
            heapq.heappush(
                self._queue,
                (
                    self._mrai_ready[key],
                    next(self._sequence),
                    EVENT_MRAI,
                    (link, key, self._mrai_token),
                ),
            )

    def _stamp_mrai(self, link: Tuple[NodeId, NodeId], delta: RouteDelta) -> None:
        """Start the hold-down for everything just transmitted."""
        assert self.mrai is not None
        now = self._clock
        if self.mrai.mode == MRAI_PEER:
            self._mrai_ready[link] = now + self._mrai_interval()
            return
        for advert in delta.updates:
            self._mrai_ready[(link[0], link[1], advert.destination)] = (
                now + self._mrai_interval()
            )
        for destination in delta.withdrawals:
            self._mrai_ready[(link[0], link[1], destination)] = (
                now + self._mrai_interval()
            )

    def _expire_mrai(self, payload: object) -> None:
        link, key, token = payload  # type: ignore[misc]
        if self._mrai_armed.get(key) != token:
            return  # timer torn down (link failed / session reset)
        del self._mrai_armed[key]
        pending = self._mrai_pending.get(link)
        if not pending:
            return
        if self.mrai is not None and self.mrai.mode == MRAI_PREFIX:
            destination = key[2]
            if destination not in pending:
                return
            flush = {destination: pending.pop(destination)}
            if not pending:
                del self._mrai_pending[link]
        else:
            flush = pending
            del self._mrai_pending[link]
        updates = tuple(
            flush[destination]
            for destination in sorted(flush)
            if flush[destination] is not None
        )
        withdrawals = tuple(
            sorted(
                destination for destination in flush if flush[destination] is None
            )
        )
        out = RouteDelta(link[0], updates, withdrawals)
        self.mrai_flushes += 1
        self._transmit(link[0], link[1], out)
        self._stamp_mrai(link, out)

    def _discard_mrai_link(self, link: Tuple[NodeId, NodeId]) -> None:
        """Tear down MRAI state for a dead directed link (pending rows
        die with the session; a restored link starts a fresh one)."""
        pending = self._mrai_pending.pop(link, None)
        if pending:
            self.mrai_rows_discarded += len(pending)
        for key in [key for key in self._mrai_armed if key[:2] == link]:
            del self._mrai_armed[key]
        for key in [key for key in self._mrai_ready if key[:2] == link]:
            del self._mrai_ready[key]

    def _discard_all_mrai(self) -> None:
        for pending in self._mrai_pending.values():
            self.mrai_rows_discarded += len(pending)
        self._mrai_pending.clear()
        self._mrai_armed.clear()
        self._mrai_ready.clear()

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> TimedReport:
        """Drain the event queue; returns the timed accounting.

        When an observer is active the drain runs under a
        ``bgp.timed.run`` span; deliveries, transport rows, losses and
        MRAI counters are emitted as their ``bgp.*`` counter names and
        the final virtual clock / convergence time as ``bgp.timed.*``
        gauges -- exactly the :class:`TimedReport` numbers, so a
        recorded trace reproduces them bit-for-bit.
        """
        observer = obs_mod.active(self._obs)
        if observer is None:
            return self._run(max_events)
        # Delta against the last *emitted* snapshot (zeros before the
        # first run), not the entry state: initialization traffic
        # happens outside run(), and the trace totals must still sum to
        # the final report.
        before = self._emitted
        with observer.span(metric_names.SPAN_TIMED_RUN):
            report = self._run(max_events)
        self._emitted = report
        observer.count(metric_names.DELIVERIES, report.deliveries - before.deliveries)
        observer.count(
            metric_names.MESSAGES, report.deliveries - before.deliveries, type="timed"
        )
        observer.count(metric_names.ROWS_SENT, report.rows_sent - before.rows_sent)
        observer.count(
            metric_names.ROWS_SUPPRESSED,
            report.rows_suppressed - before.rows_suppressed,
        )
        observer.count(
            metric_names.TIMED_MESSAGES_LOST,
            report.messages_lost - before.messages_lost,
        )
        observer.count(
            metric_names.TIMED_NETWORK_EVENTS,
            report.network_events - before.network_events,
        )
        observer.count(
            metric_names.TIMED_MRAI_DEFERRALS,
            report.mrai_deferrals - before.mrai_deferrals,
        )
        observer.count(
            metric_names.TIMED_MRAI_FLUSHES,
            report.mrai_flushes - before.mrai_flushes,
        )
        observer.count(
            metric_names.TIMED_MRAI_COALESCED,
            report.mrai_rows_coalesced - before.mrai_rows_coalesced,
        )
        observer.gauge(metric_names.TIMED_CLOCK, report.clock)
        observer.gauge(
            metric_names.TIMED_CONVERGENCE_TIME, report.convergence_time
        )
        return report

    def _run(self, max_events: Optional[int] = None) -> TimedReport:
        if not self._started:
            self.initialize()
        limit = (
            max_events
            if max_events is not None
            else 200 * self.graph.num_nodes**2
        )
        while self._queue:
            if self._events_processed >= limit:
                raise ConvergenceError(stages=self._events_processed, limit=limit)
            when, _seq, kind, payload = heapq.heappop(self._queue)
            # Heap order + nonnegative delays/intervals keep this
            # monotone; schedule_event rejects past timestamps.
            self._clock = when
            self._events_processed += 1
            if kind == EVENT_NETWORK:
                if self.event_log is not None:
                    self.event_log.append((when, kind, payload.describe()))  # type: ignore[union-attr]
                self.network_events += 1
                payload.apply(self)  # type: ignore[union-attr]
                continue
            if kind == EVENT_MRAI:
                if self.event_log is not None:
                    self.event_log.append((when, kind, payload[1]))  # type: ignore[index]
                self._expire_mrai(payload)
                continue
            sender, receiver, link_epoch, update_epoch, body = payload  # type: ignore[misc]
            rows = body.size_rows() if isinstance(body, RouteDelta) else len(body)
            if self.event_log is not None:
                self.event_log.append((when, kind, (sender, receiver, rows)))
            if (
                link_epoch != self._link_epoch.get((sender, receiver), 0)
                or update_epoch != self._update_epoch
            ):
                # The session this UPDATE was sent on no longer exists.
                self.messages_lost += 1
                self.rows_lost += rows
                continue
            self.deliveries += 1
            self.rows_delivered += rows
            self.convergence_time = when
            if self.delivery_log is not None:
                self.delivery_log.append((when, sender, receiver, rows))
            node = self.nodes[receiver]
            if isinstance(body, RouteDelta):
                dirty = node.receive_delta(sender, body)
            else:
                dirty = node.receive_table(sender, body)
            if sanitize.enabled():
                # Full (idempotent) re-decision so the invariant checks
                # see the complete decision process.
                node.decide()
                self._sanitize_delivery(receiver, node)
            elif dirty:
                node.decide(dirty)
            else:
                continue  # inputs unchanged: no recompute, no rebroadcast
            delta = node.publication_delta()
            if not delta.is_empty:
                self._broadcast_delta(
                    receiver, RouteDelta(receiver, delta.updates, delta.withdrawals)
                )
        return self._report()

    def _report(self) -> TimedReport:
        return TimedReport(
            converged=True,
            deliveries=self.deliveries,
            messages_lost=self.messages_lost,
            rows_offered=self.rows_offered,
            rows_sent=self.rows_sent,
            rows_delivered=self.rows_delivered,
            rows_suppressed=self.rows_suppressed,
            rows_lost=self.rows_lost,
            mrai_deferrals=self.mrai_deferrals,
            mrai_flushes=self.mrai_flushes,
            mrai_rows_coalesced=self.mrai_rows_coalesced,
            mrai_rows_discarded=self.mrai_rows_discarded,
            network_events=self.network_events,
            clock=self._clock,
            convergence_time=self.convergence_time,
        )

    # ------------------------------------------------------------------
    # Dynamics (the same surface as SynchronousEngine; also reachable
    # mid-run through schedule_event)
    # ------------------------------------------------------------------
    def fail_link(self, u: NodeId, v: NodeId) -> None:
        """Remove the link ``(u, v)`` at the current virtual time.

        In-flight UPDATEs on the link are lost (epoch bump), pending
        MRAI rows die with the session, and both endpoints drop what
        they learned over it and republish.
        """
        if v not in self.adjacency.get(u, ()):  # pragma: no cover - guard
            raise ProtocolError(f"no live link between {u} and {v}")
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        for link in ((u, v), (v, u)):
            self._link_epoch[link] = self._link_epoch.get(link, 0) + 1
            self._unsynced.discard(link)
            self._discard_mrai_link(link)
        for end, other in ((u, v), (v, u)):
            node = self.nodes[end]
            node.drop_neighbor(other)
            node.decide()
            delta = node.publication_delta()
            if not delta.is_empty:
                self._broadcast_delta(
                    end, RouteDelta(end, delta.updates, delta.withdrawals)
                )
        self._restart_derived_state()

    def restore_link(self, u: NodeId, v: NodeId) -> None:
        """Re-add a previously failed link at the current virtual time.

        The new session starts with a full-table sync in each direction
        (the far end holds no delta baseline).  Under Sect. 6 restart
        semantics the full restart's own republication performs that
        sync; in the warm (plain-BGP) case it is transmitted here,
        bypassing MRAI -- session establishment is not an
        advertisement."""
        if u not in self.nodes or v not in self.nodes:
            raise ProtocolError(f"unknown endpoint on link ({u}, {v})")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        self._unsynced.update(((u, v), (v, u)))
        self._restart_derived_state()
        for sender, receiver in ((u, v), (v, u)):
            if (sender, receiver) in self._unsynced:
                self._unsynced.discard((sender, receiver))
                table = self.nodes[sender].published_table()
                self.rows_offered += len(table)
                self._transmit(sender, receiver, table)

    def change_cost(self, node_id: NodeId, cost: Cost) -> None:
        """Node *node_id* re-declares its per-packet cost."""
        node = self.nodes[node_id]
        node.set_declared_cost(cost)
        node.decide()
        delta = node.publication_delta()
        if not delta.is_empty:
            self._broadcast_delta(
                node_id, RouteDelta(node_id, delta.updates, delta.withdrawals)
            )
        self._restart_derived_state()

    def _restart_derived_state(self) -> None:
        """Sect. 6 restart semantics after a network change (see
        :meth:`SynchronousEngine._restart_derived_state`: price state
        cannot survive an event, plain BGP reconverges warm)."""
        self._sanitize_baseline.clear()
        self._sanitize_monotone_armed = False
        needs_restart = self.restart_on_events and any(
            node.RESTART_ON_EVENT for node in self.nodes.values()
        )
        if needs_restart:
            self.full_restart()

    def full_restart(self) -> None:
        """Session-reset everything: drop all in-flight traffic and all
        MRAI state (global epoch bump), forget learned routes, and
        republish from scratch at the current virtual time."""
        self._sanitize_baseline.clear()
        self._sanitize_monotone_armed = True
        self._update_epoch += 1
        self._discard_all_mrai()
        for node_id, node in self.nodes.items():
            node.restart()
            delta = node.publication_delta()
            if not delta.is_empty:
                self._broadcast_delta(
                    node_id, RouteDelta(node_id, delta.updates, delta.withdrawals)
                )

    # ------------------------------------------------------------------
    # Sanitizer hooks
    # ------------------------------------------------------------------
    def _has_live_link(self, u: NodeId, v: NodeId) -> bool:
        return v in self.adjacency.get(u, ())

    def _sanitize_delivery(self, receiver: NodeId, node: BGPNode) -> None:
        """Invariant checks after one delivery (sanitizer on only).
        Warm reconvergence legitimately holds routes through dead links
        and worsens route keys, so both checks follow the armed flag."""
        if self._sanitize_monotone_armed:
            has_edge = self._has_live_link
        else:
            has_edge = lambda u, v: True  # noqa: E731 - stale links allowed warm
        for destination in sorted(node.routes):
            entry = node.routes[destination]
            sanitize.check_path(
                entry.path,
                has_edge=has_edge,
                source=receiver,
                destination=destination,
            )
        if self._sanitize_monotone_armed:
            current = sanitize.snapshot_routes(node.routes)
            previous = self._sanitize_baseline.get(receiver)
            if previous is not None:
                sanitize.check_routes_monotone(receiver, previous, current)
            self._sanitize_baseline[receiver] = current

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> BGPNode:
        return self.nodes[node_id]

    def state_report(self) -> StateReport:
        loc = {}
        adj = {}
        price = {}
        for node_id, node in self.nodes.items():
            loc[node_id] = node.table_size_entries()
            adj[node_id] = node.rib_in.size_entries()
            price[node_id] = sum(
                len(node._prices_for(destination)) for destination in node.routes
            )
        return StateReport(
            loc_rib_entries=loc, adj_rib_in_entries=adj, price_entries=price
        )
