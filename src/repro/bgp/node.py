"""A plain path-vector (BGP) node.

A node's behavior per stage is exactly the paper's: read the tables
received from neighbors, recompute the selected route per destination
from the stored Adj-RIB-In, and (the engine's job) send the own table if
it changed.  Route selection is a pure function of the Adj-RIB-In:

* candidates for destination ``j`` are the neighbor advertisements for
  ``j`` whose path does not already contain this node (path-vector loop
  suppression), each extended by one hop;
* extension accumulates cost destination-first: ``cost' = cost + c_a``
  where ``a`` is the advertising neighbor (zero when ``a`` *is* the
  destination), matching the centralized Dijkstra bit for bit;
* the policy's total order picks the winner.

Subclasses (the FPSS price-computing node) hook :meth:`_after_decide`
to derive additional per-destination state from the same messages.

Incremental machinery (the delta substrate): :meth:`decide` accepts a
*dirty* destination set and then re-selects only those destinations;
outgoing rows are cached and hash-consed, so rebuilding the table after
a decision touches only the rows whose inputs changed; and
:meth:`publication_delta` hands the owning engine exactly the rows that
changed since the last transmission (plus withdrawals), which is what a
:class:`~repro.bgp.messages.RouteDelta` carries on the wire.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Set, Tuple

import repro.obs as obs_mod
from repro.bgp.messages import (
    RouteAdvertisement,
    RouteDelta,
    intern_advertisement,
    row_materially_different,
)
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.bgp.table import AdjRIBIn, RouteEntry
from repro.exceptions import ProtocolError
from repro.obs import names as metric_names
from repro.types import Cost, NodeId, validate_cost


class PublicationDelta(NamedTuple):
    """What changed in a node's published table since the last take.

    ``material`` is True when some change exceeds floating-point noise
    (see :func:`repro.bgp.messages.row_materially_different`) -- the
    predicate that drives the engines' stage counting."""

    updates: Tuple[RouteAdvertisement, ...]
    withdrawals: Tuple[NodeId, ...]
    material: bool

    @property
    def is_empty(self) -> bool:
        return not self.updates and not self.withdrawals


class BGPNode:
    """One AS running the path-vector protocol."""

    #: Whether a network event requires this node type's network to do a
    #: full protocol restart (Sect. 6's "convergence begins again").
    #: Plain BGP reconverges warm; price-computing nodes override this.
    RESTART_ON_EVENT = False

    #: Explicit observer, set by the owning engine when it was itself
    #: constructed with one; None defers to the global toggle.
    obs: Optional[obs_mod.Obs] = None

    def __init__(
        self,
        node_id: NodeId,
        declared_cost: Cost,
        policy: Optional[SelectionPolicy] = None,
    ) -> None:
        self.node_id = node_id
        self.declared_cost = validate_cost(declared_cost, what=f"cost of node {node_id}")
        self.policy = policy or LowestCostPolicy()
        self.rib_in = AdjRIBIn()
        self.routes: Dict[NodeId, RouteEntry] = {}
        # Price-computation epoch; bumped by on_network_event() so that
        # restarted price state never mixes with pre-event information.
        self.generation = 0
        # --- outgoing-table cache (delta substrate) -------------------
        # Interned row per destination; the self-route is keyed by our
        # own id.  ``_stale_rows`` marks rows whose inputs changed since
        # the cache was last refreshed; ``_pub_baseline`` is the table
        # as of the last publication_delta() take (what receivers hold),
        # and ``_pub_touched`` the destinations that may differ from it.
        self._advert_cache: Dict[NodeId, RouteAdvertisement] = {}
        self._stale_rows: Set[NodeId] = {node_id}
        self._pub_baseline: Dict[NodeId, RouteAdvertisement] = {}
        self._pub_touched: Set[NodeId] = set()
        self._pub_entries = 0

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def receive_table(
        self,
        neighbor: NodeId,
        adverts: Iterable[RouteAdvertisement],
    ) -> Set[NodeId]:
        """Store a full-table exchange from *neighbor*.

        Returns the destinations whose stored advertisement actually
        changed -- the receiver's *dirty set*, which is what an
        incremental engine re-decides.
        """
        observer = obs_mod.active(self.obs)
        if observer is not None:
            observer.count(metric_names.MESSAGES_RECEIVED, node=self.node_id)
        table: Dict[NodeId, RouteAdvertisement] = {}
        for advert in adverts:
            if advert.sender != neighbor:
                raise ProtocolError(
                    f"node {self.node_id} got advert from {advert.sender} "
                    f"on the session with {neighbor}"
                )
            table[advert.destination] = advert
        return self.rib_in.replace_neighbor_table(neighbor, table)

    def receive_delta(self, neighbor: NodeId, delta: RouteDelta) -> Set[NodeId]:
        """Apply a differential exchange from *neighbor*.

        Equivalent to :meth:`receive_table` with the full table the
        delta reconstructs; returns the same dirty-destination set.
        """
        observer = obs_mod.active(self.obs)
        if observer is not None:
            observer.count(metric_names.MESSAGES_RECEIVED, node=self.node_id)
        if delta.sender != neighbor:
            raise ProtocolError(
                f"node {self.node_id} got a delta from {delta.sender} "
                f"on the session with {neighbor}"
            )
        dirty: Set[NodeId] = set()
        for advert in delta.updates:
            if self.rib_in.apply_update(neighbor, advert):
                dirty.add(advert.destination)
        for destination in delta.withdrawals:
            if self.rib_in.withdraw(neighbor, destination):
                dirty.add(destination)
        return dirty

    def drop_neighbor(self, neighbor: NodeId) -> None:
        """Forget a failed adjacency."""
        self.rib_in.drop_neighbor(neighbor)

    def set_declared_cost(self, cost: Cost) -> None:
        """Change this node's declared cost (dynamics / strategic play).
        Takes effect at the next decision."""
        self.declared_cost = validate_cost(cost, what=f"cost of node {self.node_id}")
        self._stale_rows.add(self.node_id)

    # ------------------------------------------------------------------
    # Decision process
    # ------------------------------------------------------------------
    def decide(self, dirty: Optional[Set[NodeId]] = None) -> Set[NodeId]:
        """Recompute selected routes from the Adj-RIB-In.

        With *dirty* = None (the full decision of the Sect. 5 model),
        every destination is re-selected.  With a dirty set -- the
        destinations whose inbound advertisements changed, as returned
        by :meth:`receive_table` / :meth:`receive_delta` -- only those
        are re-selected.  Selection is a pure per-destination function
        of the Adj-RIB-In, so both calls leave identical state; the
        dirty form just skips the destinations whose inputs are
        untouched.

        Returns the destinations whose selected route changed (used by
        subclasses and by tests; the engine detects change at the
        advertisement level).
        """
        changed: Set[NodeId] = set()
        if dirty is None:
            destinations = set(self.rib_in.destinations())
            destinations.discard(self.node_id)
            candidates = sorted(destinations)
        else:
            candidates = sorted(d for d in dirty if d != self.node_id)
        for destination in candidates:
            entry = self._select_route(destination)
            previous = self.routes.get(destination)
            if entry is None:
                if previous is not None:
                    del self.routes[destination]
                    changed.add(destination)
                continue
            # Exact cost comparison is deliberate: accumulation is
            # bit-identical, so any difference is a real route change.
            if previous is None or previous.path != entry.path or previous.cost != entry.cost:  # repro-lint: ok(RPR001)
                self.routes[destination] = entry
                changed.add(destination)
            else:
                # Refresh the cost snapshot even when the route is
                # unchanged (a node on the path may have re-declared).
                if dict(previous.node_costs) != dict(entry.node_costs):
                    self.routes[destination] = entry
                    changed.add(destination)
        if dirty is None:
            # Routes to destinations that vanished from every neighbor
            # table.  (In the dirty form such destinations are in the
            # dirty set -- a withdrawal dirtied them -- and the main
            # loop's ``entry is None`` branch already dropped them.)
            for destination in list(self.routes):
                if destination not in destinations:
                    del self.routes[destination]
                    changed.add(destination)
        derived = self._after_decide(changed, dirty)
        if derived is None:
            # The subclass does not track which advertised derived rows
            # changed; conservatively treat every recomputed destination
            # as touched (publication_delta suppresses the no-ops).
            derived = set(candidates)
        self._stale_rows.update(changed)
        self._stale_rows.update(derived)
        return changed

    def _select_route(self, destination: NodeId) -> Optional[RouteEntry]:
        best_key: Optional[Tuple] = None
        best_entry: Optional[RouteEntry] = None
        for neighbor, advert in sorted(self.rib_in.adverts_for(destination).items()):
            if self.node_id in advert.path:
                continue  # loop suppression
            extension_cost = 0.0 if advert.sender == destination else advert.sender_cost
            cost = advert.cost + extension_cost
            path = (self.node_id,) + advert.path
            key = self.policy.key(cost, path)
            if best_key is None or key < best_key:
                best_key = key
                node_costs = dict(advert.node_costs)
                node_costs[self.node_id] = self.declared_cost
                best_entry = RouteEntry(path=path, cost=cost, node_costs=node_costs)
        return best_entry

    def _after_decide(
        self,
        changed_destinations: Set[NodeId],
        dirty_destinations: Optional[Set[NodeId]] = None,
    ) -> Optional[Set[NodeId]]:
        """Hook for subclasses (price computation).

        *dirty_destinations* is the dirty set :meth:`decide` was given
        (None: full decision).  Since every advertised derived row (the
        price slot) is a function of that destination's inbound
        advertisements and selected route alone, a subclass may restrict
        its recomputation to ``dirty | changed``.

        Returns the destinations whose *advertised* derived state
        changed, or None when the subclass does not track this (the
        caller then conservatively assumes every recomputed destination
        changed).  The base node advertises no derived state.
        """
        return set()

    def restart(self) -> None:
        """Forget all learned protocol state (full restart).

        The paper's Sect. 6 requires convergence to "start over
        whenever there is a route change"; a restart advances the
        generation tag so any straggling pre-event advertisement is
        recognizably stale, and clears the RIBs.  Subclasses clear
        their derived (price) state on top.
        """
        self.generation += 1
        self.rib_in = AdjRIBIn()
        self.routes = {}
        # Every cached row is now stale: learned routes become
        # withdrawals, and the self-route changes epoch.
        self._stale_rows.update(self._advert_cache)
        self._stale_rows.add(self.node_id)

    # ------------------------------------------------------------------
    # Advertisement production
    # ------------------------------------------------------------------
    def _refresh_rows(self) -> None:
        """Bring the outgoing-row cache up to date (O(stale rows)).

        Rebuilt rows are interned, so a row whose content did not change
        keeps its previous identity and publication_delta's comparisons
        stay pointer checks.
        """
        if not self._stale_rows:
            return
        for destination in self._stale_rows:
            if destination == self.node_id:
                new: Optional[RouteAdvertisement] = intern_advertisement(
                    self.self_advertisement()
                )
            elif destination in self.routes:
                new = intern_advertisement(self._advert_for(destination))
            else:
                new = None
            old = self._advert_cache.get(destination)
            if new is old:
                continue
            if new is None:
                if old is None:
                    continue
                del self._advert_cache[destination]
            elif new == old:
                continue  # identical content; keep the cached identity
            else:
                self._advert_cache[destination] = new
            self._pub_touched.add(destination)
        self._stale_rows.clear()

    def advertisements(self) -> Tuple[RouteAdvertisement, ...]:
        """The node's current full table as messages, self-route first."""
        self._refresh_rows()
        adverts: List[RouteAdvertisement] = [self._advert_cache[self.node_id]]
        for destination in sorted(self.routes):
            adverts.append(self._advert_cache[destination])
        return tuple(adverts)

    def publication_delta(self) -> PublicationDelta:
        """Changes to the published table since the previous take.

        The engine calls this once per publication point; the returned
        rows are exactly what a :class:`RouteDelta` must carry so that
        receivers holding the previous publication end up with the same
        slice a full-table exchange would have left.  Cost is
        O(changed rows), not O(table).
        """
        self._refresh_rows()
        if not self._pub_touched:
            return PublicationDelta((), (), False)
        updates: List[RouteAdvertisement] = []
        withdrawals: List[NodeId] = []
        material = False
        for destination in sorted(self._pub_touched):
            current = self._advert_cache.get(destination)
            previous = self._pub_baseline.get(destination)
            if current is previous or (current is not None and current == previous):
                continue
            if current is None:
                withdrawals.append(destination)
                material = True
                del self._pub_baseline[destination]
                self._pub_entries -= previous.size_entries()
            else:
                updates.append(current)
                if previous is None or row_materially_different(previous, current):
                    material = True
                self._pub_baseline[destination] = current
                self._pub_entries += current.size_entries() - (
                    previous.size_entries() if previous is not None else 0
                )
        self._pub_touched.clear()
        return PublicationDelta(tuple(updates), tuple(withdrawals), material)

    def published_table(self) -> Tuple[RouteAdvertisement, ...]:
        """The full published table (as of the last take), self-route
        first -- what an initial full-table sync to a new neighbor must
        carry so that subsequent deltas apply against known state."""
        rows: List[RouteAdvertisement] = []
        self_row = self._pub_baseline.get(self.node_id)
        if self_row is not None:
            rows.append(self_row)
        for destination in sorted(self._pub_baseline):
            if destination != self.node_id:
                rows.append(self._pub_baseline[destination])
        return tuple(rows)

    @property
    def published_rows(self) -> int:
        """Rows in the published table (as of the last take)."""
        return len(self._pub_baseline)

    @property
    def published_entries(self) -> int:
        """Size of the published table in entries (as of the last take);
        what one full-table transmission would put on the wire."""
        return self._pub_entries

    def self_advertisement(self) -> RouteAdvertisement:
        """The advertisement for this node as a destination."""
        return RouteAdvertisement(
            sender=self.node_id,
            destination=self.node_id,
            path=(self.node_id,),
            cost=0.0,
            node_costs={self.node_id: self.declared_cost},
            prices={},
            generation=self.generation,
        )

    def _advert_for(self, destination: NodeId) -> RouteAdvertisement:
        entry = self.routes[destination]
        return RouteAdvertisement(
            sender=self.node_id,
            destination=destination,
            path=entry.path,
            cost=entry.cost,
            node_costs=dict(entry.node_costs),
            prices=self._prices_for(destination),
            generation=self.generation,
        )

    def _prices_for(self, destination: NodeId) -> Mapping[NodeId, Cost]:
        """Price array attached to outgoing adverts; plain BGP has none."""
        return {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def route(self, destination: NodeId) -> Optional[RouteEntry]:
        return self.routes.get(destination)

    def table_size_entries(self) -> int:
        """Loc-RIB size in entries (the O(nd) of Sect. 5)."""
        return sum(entry.size_entries() for entry in self.routes.values())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.node_id}, "
            f"cost={self.declared_cost}, routes={len(self.routes)})"
        )
