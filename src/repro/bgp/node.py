"""A plain path-vector (BGP) node.

A node's behavior per stage is exactly the paper's: read the tables
received from neighbors, recompute the selected route per destination
from the stored Adj-RIB-In, and (the engine's job) send the own table if
it changed.  Route selection is a pure function of the Adj-RIB-In:

* candidates for destination ``j`` are the neighbor advertisements for
  ``j`` whose path does not already contain this node (path-vector loop
  suppression), each extended by one hop;
* extension accumulates cost destination-first: ``cost' = cost + c_a``
  where ``a`` is the advertising neighbor (zero when ``a`` *is* the
  destination), matching the centralized Dijkstra bit for bit;
* the policy's total order picks the winner.

Subclasses (the FPSS price-computing node) hook :meth:`_after_decide`
to derive additional per-destination state from the same messages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import repro.obs as obs_mod
from repro.bgp.messages import RouteAdvertisement
from repro.bgp.policy import LowestCostPolicy, SelectionPolicy
from repro.bgp.table import AdjRIBIn, RouteEntry
from repro.exceptions import ProtocolError
from repro.obs import names as metric_names
from repro.types import Cost, NodeId, validate_cost


class BGPNode:
    """One AS running the path-vector protocol."""

    #: Whether a network event requires this node type's network to do a
    #: full protocol restart (Sect. 6's "convergence begins again").
    #: Plain BGP reconverges warm; price-computing nodes override this.
    RESTART_ON_EVENT = False

    #: Explicit observer, set by the owning engine when it was itself
    #: constructed with one; None defers to the global toggle.
    obs: Optional[obs_mod.Obs] = None

    def __init__(
        self,
        node_id: NodeId,
        declared_cost: Cost,
        policy: Optional[SelectionPolicy] = None,
    ) -> None:
        self.node_id = node_id
        self.declared_cost = validate_cost(declared_cost, what=f"cost of node {node_id}")
        self.policy = policy or LowestCostPolicy()
        self.rib_in = AdjRIBIn()
        self.routes: Dict[NodeId, RouteEntry] = {}
        # Price-computation epoch; bumped by on_network_event() so that
        # restarted price state never mixes with pre-event information.
        self.generation = 0

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def receive_table(
        self,
        neighbor: NodeId,
        adverts: Iterable[RouteAdvertisement],
    ) -> None:
        """Store a full-table exchange from *neighbor*."""
        observer = obs_mod.active(self.obs)
        if observer is not None:
            observer.count(metric_names.MESSAGES_RECEIVED, node=self.node_id)
        table: Dict[NodeId, RouteAdvertisement] = {}
        for advert in adverts:
            if advert.sender != neighbor:
                raise ProtocolError(
                    f"node {self.node_id} got advert from {advert.sender} "
                    f"on the session with {neighbor}"
                )
            table[advert.destination] = advert
        self.rib_in.replace_neighbor_table(neighbor, table)

    def drop_neighbor(self, neighbor: NodeId) -> None:
        """Forget a failed adjacency."""
        self.rib_in.drop_neighbor(neighbor)

    def set_declared_cost(self, cost: Cost) -> None:
        """Change this node's declared cost (dynamics / strategic play).
        Takes effect at the next decision."""
        self.declared_cost = validate_cost(cost, what=f"cost of node {self.node_id}")

    # ------------------------------------------------------------------
    # Decision process
    # ------------------------------------------------------------------
    def decide(self) -> Set[NodeId]:
        """Recompute selected routes from the Adj-RIB-In.

        Returns the destinations whose selected route changed (used by
        subclasses and by tests; the engine detects change at the
        advertisement level).
        """
        changed: Set[NodeId] = set()
        destinations = set(self.rib_in.destinations())
        destinations.discard(self.node_id)
        for destination in sorted(destinations):
            entry = self._select_route(destination)
            previous = self.routes.get(destination)
            if entry is None:
                if previous is not None:
                    del self.routes[destination]
                    changed.add(destination)
                continue
            # Exact cost comparison is deliberate: accumulation is
            # bit-identical, so any difference is a real route change.
            if previous is None or previous.path != entry.path or previous.cost != entry.cost:  # repro-lint: ok(RPR001)
                self.routes[destination] = entry
                changed.add(destination)
            else:
                # Refresh the cost snapshot even when the route is
                # unchanged (a node on the path may have re-declared).
                if dict(previous.node_costs) != dict(entry.node_costs):
                    self.routes[destination] = entry
                    changed.add(destination)
        # Routes to destinations that vanished from every neighbor table.
        for destination in list(self.routes):
            if destination not in destinations:
                del self.routes[destination]
                changed.add(destination)
        self._after_decide(changed)
        return changed

    def _select_route(self, destination: NodeId) -> Optional[RouteEntry]:
        best_key: Optional[Tuple] = None
        best_entry: Optional[RouteEntry] = None
        for neighbor, advert in sorted(self.rib_in.adverts_for(destination).items()):
            if self.node_id in advert.path:
                continue  # loop suppression
            extension_cost = 0.0 if advert.sender == destination else advert.sender_cost
            cost = advert.cost + extension_cost
            path = (self.node_id,) + advert.path
            key = self.policy.key(cost, path)
            if best_key is None or key < best_key:
                best_key = key
                node_costs = dict(advert.node_costs)
                node_costs[self.node_id] = self.declared_cost
                best_entry = RouteEntry(path=path, cost=cost, node_costs=node_costs)
        return best_entry

    def _after_decide(self, changed_destinations: Set[NodeId]) -> None:
        """Hook for subclasses (price computation); default: nothing."""

    def restart(self) -> None:
        """Forget all learned protocol state (full restart).

        The paper's Sect. 6 requires convergence to "start over
        whenever there is a route change"; a restart advances the
        generation tag so any straggling pre-event advertisement is
        recognizably stale, and clears the RIBs.  Subclasses clear
        their derived (price) state on top.
        """
        self.generation += 1
        self.rib_in = AdjRIBIn()
        self.routes = {}

    # ------------------------------------------------------------------
    # Advertisement production
    # ------------------------------------------------------------------
    def advertisements(self) -> Tuple[RouteAdvertisement, ...]:
        """The node's current full table as messages, self-route first."""
        adverts: List[RouteAdvertisement] = [self.self_advertisement()]
        for destination in sorted(self.routes):
            adverts.append(self._advert_for(destination))
        return tuple(adverts)

    def self_advertisement(self) -> RouteAdvertisement:
        """The advertisement for this node as a destination."""
        return RouteAdvertisement(
            sender=self.node_id,
            destination=self.node_id,
            path=(self.node_id,),
            cost=0.0,
            node_costs={self.node_id: self.declared_cost},
            prices={},
            generation=self.generation,
        )

    def _advert_for(self, destination: NodeId) -> RouteAdvertisement:
        entry = self.routes[destination]
        return RouteAdvertisement(
            sender=self.node_id,
            destination=destination,
            path=entry.path,
            cost=entry.cost,
            node_costs=dict(entry.node_costs),
            prices=self._prices_for(destination),
            generation=self.generation,
        )

    def _prices_for(self, destination: NodeId) -> Mapping[NodeId, Cost]:
        """Price array attached to outgoing adverts; plain BGP has none."""
        return {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def route(self, destination: NodeId) -> Optional[RouteEntry]:
        return self.routes.get(destination)

    def table_size_entries(self) -> int:
        """Loc-RIB size in entries (the O(nd) of Sect. 5)."""
        return sum(entry.size_entries() for entry in self.routes.values())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.node_id}, "
            f"cost={self.declared_cost}, routes={len(self.routes)})"
        )
