"""Routing-table data structures: the Loc-RIB and Adj-RIB-In of a node.

Terminology follows real BGP:

* **Adj-RIB-In** -- the last advertisement received from each neighbor,
  per destination.  The paper's footnote 6 notes that nodes keep the
  routing tables received from each neighbor; this is that state.
* **Loc-RIB** (:class:`RouteEntry` per destination) -- the selected
  route: path, cost, and the declared costs of the nodes on the path
  (a consistent snapshot assembled from the chosen advertisement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Set, Tuple

from repro.bgp.messages import RouteAdvertisement
from repro.types import Cost, NodeId, PathTuple


@dataclass(frozen=True)
class RouteEntry:
    """A selected route toward one destination."""

    path: PathTuple
    cost: Cost
    node_costs: Mapping[NodeId, Cost]

    @property
    def destination(self) -> NodeId:
        return self.path[-1]

    @property
    def next_hop(self) -> NodeId:
        """The selected parent in ``T(destination)``."""
        if len(self.path) < 2:
            raise ValueError("self-route has no next hop")
        return self.path[1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def transit(self) -> PathTuple:
        """The transit nodes of the selected path."""
        return self.path[1:-1]

    def size_entries(self) -> int:
        """State size in table entries (AS numbers + cost scalars)."""
        return len(self.path) + len(self.node_costs)


class AdjRIBIn:
    """Per-neighbor advertisement store.

    ``store[neighbor][destination]`` is the last advertisement received
    from that neighbor for that destination.  A full-table exchange
    replaces the neighbor's slice wholesale (the model of Sect. 5 sends
    whole tables for worst-case accounting); a delta exchange edits the
    slice row-by-row via :meth:`apply_update` / :meth:`withdraw`, which
    is the real-BGP incremental optimization reintroduced by the delta
    substrate.  Either way the write methods report which destinations
    actually changed, so the owning node can recompute only those.
    """

    def __init__(self) -> None:
        self._store: Dict[NodeId, Dict[NodeId, RouteAdvertisement]] = {}

    def replace_neighbor_table(
        self,
        neighbor: NodeId,
        adverts: Mapping[NodeId, RouteAdvertisement],
    ) -> Set[NodeId]:
        """Replace *neighbor*'s slice wholesale; returns the destinations
        whose stored advertisement changed (added, replaced, or dropped).
        Interned rows make the per-row comparison a pointer check."""
        old = self._store.get(neighbor) or {}
        new = dict(adverts)
        self._store[neighbor] = new
        dirty: Set[NodeId] = set()
        for destination, advert in new.items():
            previous = old.get(destination)
            if previous is None or (previous is not advert and previous != advert):
                dirty.add(destination)
        for destination in old:
            if destination not in new:
                dirty.add(destination)
        return dirty

    def apply_update(self, neighbor: NodeId, advert: RouteAdvertisement) -> bool:
        """Store one replacement row from *neighbor*; True iff the slice
        actually changed."""
        table = self._store.setdefault(neighbor, {})
        previous = table.get(advert.destination)
        if previous is advert or (previous is not None and previous == advert):
            return False
        table[advert.destination] = advert
        return True

    def withdraw(self, neighbor: NodeId, destination: NodeId) -> bool:
        """Drop *neighbor*'s row for *destination*; True iff present."""
        table = self._store.get(neighbor)
        if not table or destination not in table:
            return False
        del table[destination]
        return True

    def drop_neighbor(self, neighbor: NodeId) -> None:
        """Forget everything learned from *neighbor* (link failure)."""
        self._store.pop(neighbor, None)

    def neighbors(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._store))

    def advert(self, neighbor: NodeId, destination: NodeId) -> Optional[RouteAdvertisement]:
        return self._store.get(neighbor, {}).get(destination)

    def destinations(self) -> Tuple[NodeId, ...]:
        """All destinations any stored advertisement mentions."""
        seen = set()
        for table in self._store.values():
            seen.update(table)
        return tuple(sorted(seen))

    def adverts_for(self, destination: NodeId) -> Dict[NodeId, RouteAdvertisement]:
        """``neighbor -> advert`` for one destination."""
        result: Dict[NodeId, RouteAdvertisement] = {}
        for neighbor, table in self._store.items():
            advert = table.get(destination)
            if advert is not None:
                result[neighbor] = advert
        return result

    def size_entries(self) -> int:
        """Total stored entries across neighbors (Adj-RIB-In state)."""
        return sum(
            advert.size_entries()
            for table in self._store.values()
            for advert in table.values()
        )

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.neighbors())
