"""Routing-table data structures: the Loc-RIB and Adj-RIB-In of a node.

Terminology follows real BGP:

* **Adj-RIB-In** -- the last advertisement received from each neighbor,
  per destination.  The paper's footnote 6 notes that nodes keep the
  routing tables received from each neighbor; this is that state.
* **Loc-RIB** (:class:`RouteEntry` per destination) -- the selected
  route: path, cost, and the declared costs of the nodes on the path
  (a consistent snapshot assembled from the chosen advertisement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.bgp.messages import RouteAdvertisement
from repro.types import Cost, NodeId, PathTuple


@dataclass(frozen=True)
class RouteEntry:
    """A selected route toward one destination."""

    path: PathTuple
    cost: Cost
    node_costs: Mapping[NodeId, Cost]

    @property
    def destination(self) -> NodeId:
        return self.path[-1]

    @property
    def next_hop(self) -> NodeId:
        """The selected parent in ``T(destination)``."""
        if len(self.path) < 2:
            raise ValueError("self-route has no next hop")
        return self.path[1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def transit(self) -> PathTuple:
        """The transit nodes of the selected path."""
        return self.path[1:-1]

    def size_entries(self) -> int:
        """State size in table entries (AS numbers + cost scalars)."""
        return len(self.path) + len(self.node_costs)


class AdjRIBIn:
    """Per-neighbor advertisement store.

    ``store[neighbor][destination]`` is the last advertisement received
    from that neighbor for that destination.  A full-table exchange
    replaces the neighbor's slice wholesale (the model of Sect. 5 sends
    whole tables; incremental updates are a real-BGP optimization the
    paper explicitly sets aside for worst-case accounting).
    """

    def __init__(self) -> None:
        self._store: Dict[NodeId, Dict[NodeId, RouteAdvertisement]] = {}

    def replace_neighbor_table(
        self,
        neighbor: NodeId,
        adverts: Mapping[NodeId, RouteAdvertisement],
    ) -> None:
        self._store[neighbor] = dict(adverts)

    def drop_neighbor(self, neighbor: NodeId) -> None:
        """Forget everything learned from *neighbor* (link failure)."""
        self._store.pop(neighbor, None)

    def neighbors(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._store))

    def advert(self, neighbor: NodeId, destination: NodeId) -> Optional[RouteAdvertisement]:
        return self._store.get(neighbor, {}).get(destination)

    def destinations(self) -> Tuple[NodeId, ...]:
        """All destinations any stored advertisement mentions."""
        seen = set()
        for table in self._store.values():
            seen.update(table)
        return tuple(sorted(seen))

    def adverts_for(self, destination: NodeId) -> Dict[NodeId, RouteAdvertisement]:
        """``neighbor -> advert`` for one destination."""
        result: Dict[NodeId, RouteAdvertisement] = {}
        for neighbor, table in self._store.items():
            advert = table.get(destination)
            if advert is not None:
                result[neighbor] = advert
        return result

    def size_entries(self) -> int:
        """Total stored entries across neighbors (Adj-RIB-In state)."""
        return sum(
            advert.size_entries()
            for table in self._store.values()
            for advert in table.values()
        )

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.neighbors())
