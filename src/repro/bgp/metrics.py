"""Complexity accounting: the measures of Section 5.

The paper adopts three complexity measures for BGP-based computation:
stages to convergence, total communication (number and size of routing
tables exchanged), and routing-table size.  The engine fills a
:class:`ConvergenceReport` with all three so experiments E5/E6 can put
measured values next to the proven bounds (``d``, ``max(d, d')``,
``O(nd)`` entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.types import NodeId


@dataclass
class StageStats:
    """Per-stage accounting.

    ``stage`` through ``entries_sent`` are the paper's Sect. 5 measures
    and are identical under the full-table and delta transports (the
    model accounts whole-table exchanges either way).  ``rows_sent`` /
    ``rows_suppressed`` are *transport-level*: rows actually transmitted
    vs rows the delta encoding avoided retransmitting.  Under the
    full-table transport ``rows_suppressed`` is always 0.
    """

    stage: int
    nodes_changed: int
    messages: int
    entries_sent: int
    rows_sent: int = 0
    rows_suppressed: int = 0


@dataclass
class ConvergenceReport:
    """The outcome of running a protocol engine to quiescence."""

    converged: bool
    stages: int
    total_messages: int = 0
    total_entries_sent: int = 0
    total_rows_sent: int = 0
    total_rows_suppressed: int = 0
    per_stage: List[StageStats] = field(default_factory=list)

    def record_stage(self, stats: StageStats) -> None:
        self.per_stage.append(stats)
        self.total_messages += stats.messages
        self.total_entries_sent += stats.entries_sent
        self.total_rows_sent += stats.rows_sent
        self.total_rows_suppressed += stats.rows_suppressed

    @property
    def max_entries_in_stage(self) -> int:
        return max((s.entries_sent for s in self.per_stage), default=0)


@dataclass
class TimedReport:
    """The outcome of draining a :class:`~repro.bgp.timed.TimedEngine`.

    Virtual time replaces stages: ``clock`` is the virtual time at which
    the event queue drained and ``convergence_time`` the time of the
    last actual delivery.  Transport accounting follows the rows through
    the MRAI layer and the lossy links, with two reconciliation
    invariants the test suite asserts::

        rows_offered == rows_sent + mrai_rows_coalesced
                                  + mrai_rows_discarded   (queue drained)
        rows_sent    == rows_delivered + rows_lost

    ``stages`` is always 0 (there are none); it exists so the timed
    engine satisfies the same report surface the experiments consume.
    """

    converged: bool
    deliveries: int = 0
    messages_lost: int = 0
    rows_offered: int = 0
    rows_sent: int = 0
    rows_delivered: int = 0
    rows_suppressed: int = 0
    rows_lost: int = 0
    mrai_deferrals: int = 0
    mrai_flushes: int = 0
    mrai_rows_coalesced: int = 0
    mrai_rows_discarded: int = 0
    network_events: int = 0
    clock: float = 0.0
    convergence_time: float = 0.0
    stages: int = 0

    @property
    def total_messages(self) -> int:
        return self.deliveries

    @property
    def total_rows_sent(self) -> int:
        return self.rows_sent

    @property
    def total_rows_suppressed(self) -> int:
        return self.rows_suppressed


@dataclass(frozen=True)
class StateReport:
    """Per-node state snapshot after convergence (experiment E6)."""

    loc_rib_entries: Dict[NodeId, int]
    adj_rib_in_entries: Dict[NodeId, int]
    price_entries: Dict[NodeId, int]

    @property
    def max_loc_rib(self) -> int:
        return max(self.loc_rib_entries.values(), default=0)

    @property
    def max_price_entries(self) -> int:
        return max(self.price_entries.values(), default=0)

    @property
    def total_state(self) -> int:
        return (
            sum(self.loc_rib_entries.values())
            + sum(self.adj_rib_in_entries.values())
            + sum(self.price_entries.values())
        )
