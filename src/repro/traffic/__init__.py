"""Traffic matrices: the ``T_ij`` intensities of Section 3."""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.generators import (
    gravity_traffic,
    hotspot_traffic,
    single_packet,
    sparse_traffic,
    uniform_traffic,
)

__all__ = [
    "TrafficMatrix",
    "gravity_traffic",
    "hotspot_traffic",
    "single_packet",
    "sparse_traffic",
    "uniform_traffic",
]
