"""Traffic-matrix generators for the experiment harness."""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import TrafficMatrixError
from repro.graphs.asgraph import ASGraph
from repro.traffic.matrix import TrafficMatrix
from repro.types import NodeId


def single_packet(source: NodeId, destination: NodeId) -> TrafficMatrix:
    """One packet on one pair -- the unit the worked examples use."""
    return TrafficMatrix({(source, destination): 1.0})


def uniform_traffic(graph: ASGraph, intensity: float = 1.0) -> TrafficMatrix:
    """Every ordered pair carries the same *intensity*."""
    if intensity < 0:
        raise TrafficMatrixError(f"intensity must be >= 0, got {intensity}")
    entries = {
        (i, j): intensity
        for i in graph.nodes
        for j in graph.nodes
        if i != j
    }
    return TrafficMatrix(entries)


def gravity_traffic(
    graph: ASGraph,
    seed: int = 0,
    total: float = 1000.0,
) -> TrafficMatrix:
    """A gravity model: ``T_ij proportional to m_i * m_j`` for random node
    masses, normalized to *total* packets -- the standard synthetic
    stand-in for real inter-domain traffic demand."""
    rng = random.Random(seed)
    masses = {node: rng.uniform(0.1, 1.0) for node in graph.nodes}
    raw = {
        (i, j): masses[i] * masses[j]
        for i in graph.nodes
        for j in graph.nodes
        if i != j
    }
    norm = sum(raw.values())
    if norm == 0:
        raise TrafficMatrixError("degenerate gravity model (no mass)")
    return TrafficMatrix({pair: total * weight / norm for pair, weight in raw.items()})


def hotspot_traffic(
    graph: ASGraph,
    hotspots: int = 1,
    seed: int = 0,
    hot_intensity: float = 100.0,
    background: float = 1.0,
) -> TrafficMatrix:
    """Uniform background plus a few destinations drawing heavy traffic
    (content-provider ASes)."""
    if hotspots < 0 or hotspots > graph.num_nodes:
        raise TrafficMatrixError(
            f"hotspots must be in [0, {graph.num_nodes}], got {hotspots}"
        )
    rng = random.Random(seed)
    hot = set(rng.sample(list(graph.nodes), hotspots))
    entries = {}
    for i in graph.nodes:
        for j in graph.nodes:
            if i == j:
                continue
            entries[(i, j)] = hot_intensity if j in hot else background
    return TrafficMatrix(entries)


def sparse_traffic(
    graph: ASGraph,
    density: float = 0.2,
    seed: int = 0,
    intensity: float = 10.0,
) -> TrafficMatrix:
    """Each ordered pair independently carries traffic with probability
    *density* -- exercises the zero-payment property on quiet nodes."""
    if not 0.0 <= density <= 1.0:
        raise TrafficMatrixError(f"density must be in [0, 1], got {density}")
    rng = random.Random(seed)
    entries = {}
    for i in graph.nodes:
        for j in graph.nodes:
            if i != j and rng.random() < density:
                entries[(i, j)] = intensity
    return TrafficMatrix(entries)
