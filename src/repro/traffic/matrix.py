"""The traffic matrix ``[T_ij]``.

A thin validated mapping from ordered node pairs to packet intensities.
Intensities are non-negative reals (packet counts or rates); absent
pairs carry zero traffic.  The matrix is immutable once built --
experiments hand the same matrix to routing, pricing, accounting, and
strategic evaluation, and nothing may mutate it in between.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import TrafficMatrixError
from repro.graphs.asgraph import ASGraph
from repro.types import NodeId

PairKey = Tuple[NodeId, NodeId]


class TrafficMatrix:
    """Validated, immutable packet intensities per ordered pair."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[PairKey, float]) -> None:
        validated: Dict[PairKey, float] = {}
        for (source, destination), intensity in entries.items():
            if source == destination:
                raise TrafficMatrixError(
                    f"self-traffic ({source} -> {destination}) is not modeled"
                )
            value = float(intensity)
            if value != value or value < 0:
                raise TrafficMatrixError(
                    f"intensity for ({source}, {destination}) must be a "
                    f"non-negative number, got {intensity!r}"
                )
            if value > 0:
                validated[(source, destination)] = value
        self._entries = validated

    # Mapping-ish interface (read-only).
    def __getitem__(self, pair: PairKey) -> float:
        return self._entries.get(pair, 0.0)

    def get(self, pair: PairKey, default: float = 0.0) -> float:
        return self._entries.get(pair, default)

    def items(self):
        return self._entries.items()

    def keys(self):
        return self._entries.keys()

    def values(self):
        return self._entries.values()

    def __iter__(self) -> Iterator[PairKey]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair: object) -> bool:
        return pair in self._entries

    @property
    def total_packets(self) -> float:
        return float(sum(self._entries.values()))

    def pairs(self) -> Tuple[PairKey, ...]:
        return tuple(sorted(self._entries))

    def restricted_to(self, graph: ASGraph) -> "TrafficMatrix":
        """Validate that every endpoint exists in *graph* and return
        self (fluent precondition check for experiment pipelines)."""
        for source, destination in self._entries:
            if source not in graph or destination not in graph:
                raise TrafficMatrixError(
                    f"traffic pair ({source}, {destination}) references a "
                    "node outside the graph"
                )
        return self

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with all intensities multiplied by *factor* >= 0."""
        if factor < 0:
            raise TrafficMatrixError(f"scale factor must be >= 0, got {factor}")
        return TrafficMatrix(
            {pair: value * factor for pair, value in self._entries.items()}
        )

    def __repr__(self) -> str:
        return f"TrafficMatrix(pairs={len(self._entries)}, packets={self.total_packets})"
