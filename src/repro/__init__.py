"""repro: a reproduction of "A BGP-based mechanism for lowest-cost routing".

Feigenbaum, Papadimitriou, Sami, Shenker (PODC 2002; Distributed
Computing 18(1), 2005).

The library implements the paper end to end:

* the AS-graph model with per-node transit costs (:mod:`repro.graphs`,
  :mod:`repro.traffic`);
* centralized lowest-cost routing and k-avoiding paths
  (:mod:`repro.routing`);
* the unique strategyproof VCG pricing scheme of Theorem 1
  (:mod:`repro.mechanism`);
* the Griffin-Wilfong-style BGP computational model of Section 5
  (:mod:`repro.bgp`);
* the paper's contribution -- the BGP-based distributed price
  computation of Section 6 with its ``max(d, d')`` convergence bound
  (:mod:`repro.core`);
* accounting (:mod:`repro.accounting`), strategic-agent simulation
  (:mod:`repro.strategic`), prior-work baselines
  (:mod:`repro.baselines`), and the experiment harness
  (:mod:`repro.experiments`).

The *stable* import surface is :mod:`repro.api` -- prefer it in
downstream code; observability (spans, counters, JSONL traces of the
Section 5 complexity measures) lives in :mod:`repro.obs`.

Quickstart::

    from repro import api

    graph = api.fig1_graph()
    table = api.compute_price_table(graph)          # centralized Theorem 1
    result = api.run(graph)                         # BGP-based, Sect. 6
    assert result.price(3, 4, 5) == table.price(3, 4, 5) == 9.0
"""

from repro.core.convergence import ConvergenceBound, convergence_bound
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.core.protocol import (
    DistributedPriceResult,
    distributed_mechanism,
    run_distributed_mechanism,
    verify_against_centralized,
)
from repro.core.run import run
from repro.graphs.asgraph import ASGraph
from repro.graphs.generators import fig1_graph
from repro.mechanism.vcg import PriceTable, compute_price_table, vcg_price
from repro.routing.allpairs import AllPairsRoutes, all_pairs_lcp
from repro.traffic.matrix import TrafficMatrix

__version__ = "1.0.0"

__all__ = [
    "ASGraph",
    "AllPairsRoutes",
    "ConvergenceBound",
    "DistributedPriceResult",
    "PriceComputingNode",
    "PriceTable",
    "TrafficMatrix",
    "UpdateMode",
    "all_pairs_lcp",
    "compute_price_table",
    "convergence_bound",
    "distributed_mechanism",
    "fig1_graph",
    "run",
    "run_distributed_mechanism",
    "vcg_price",
    "verify_against_centralized",
    "__version__",
]
