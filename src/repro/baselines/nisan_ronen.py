"""The Nisan-Ronen LCP mechanism: edges as agents, one pair at a time.

This is the point of departure the paper cites (Sect. 2): the network
is an abstract graph whose *edges* hold private costs; for a designated
pair ``(x, y)`` the mechanism selects a lowest-cost path and pays each
edge ``e`` on it

    ``payment(e) = d_{G | c_e = inf} - d_{G | c_e = 0}``

i.e. the cost of the best path with ``e`` priced out minus the cost of
the best path with ``e`` free.  The graph must be biconnected (here:
2-edge-connected between the endpoints) so the first term is finite.

The module carries its own small edge-weighted substrate (the node-cost
machinery of the main library deliberately does not model edge costs).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import GraphError, UnreachableError
from repro.types import NodeId, is_zero_cost

Edge = Tuple[NodeId, NodeId]
INF = float("inf")


def _normalize(u: NodeId, v: NodeId) -> Edge:
    return (min(u, v), max(u, v))


class EdgeWeightedGraph:
    """An undirected graph with per-edge costs (the [16] model)."""

    def __init__(self, edge_costs: Mapping[Edge, float]) -> None:
        self._costs: Dict[Edge, float] = {}
        self._adjacency: Dict[NodeId, List[NodeId]] = {}
        for (u, v), cost in edge_costs.items():
            u, v = int(u), int(v)
            if u == v:
                raise GraphError(f"self-loop on {u}")
            key = _normalize(u, v)
            if key in self._costs:
                raise GraphError(f"duplicate edge {key}")
            cost = float(cost)
            if cost < 0 or math.isnan(cost):
                raise GraphError(f"edge {key} has invalid cost {cost!r}")
            self._costs[key] = cost
            self._adjacency.setdefault(u, []).append(v)
            self._adjacency.setdefault(v, []).append(u)
        for neighbors in self._adjacency.values():
            neighbors.sort()

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._adjacency))

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(sorted(self._costs))

    def cost(self, u: NodeId, v: NodeId) -> float:
        try:
            return self._costs[_normalize(u, v)]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        return tuple(self._adjacency.get(node, ()))

    def with_edge_cost(self, u: NodeId, v: NodeId, cost: float) -> "EdgeWeightedGraph":
        key = _normalize(u, v)
        if key not in self._costs:
            raise GraphError(f"no edge between {u} and {v}")
        costs = dict(self._costs)
        costs[key] = cost
        return EdgeWeightedGraph(costs)

    def without_edge(self, u: NodeId, v: NodeId) -> "EdgeWeightedGraph":
        key = _normalize(u, v)
        if key not in self._costs:
            raise GraphError(f"no edge between {u} and {v}")
        costs = {edge: cost for edge, cost in self._costs.items() if edge != key}
        return EdgeWeightedGraph(costs)

    def shortest_path(self, source: NodeId, target: NodeId) -> Tuple[float, Tuple[NodeId, ...]]:
        """Edge-weighted Dijkstra with (cost, hops, path) tie-breaking."""
        if source not in self._adjacency or target not in self._adjacency:
            raise UnreachableError(source, target)
        best: Dict[NodeId, Tuple[float, int, Tuple[NodeId, ...]]] = {
            source: (0.0, 0, (source,))
        }
        finalized: set = set()
        heap: List[Tuple[Tuple[float, int, Tuple[NodeId, ...]], NodeId]] = [
            (best[source], source)
        ]
        while heap:
            key, node = heapq.heappop(heap)
            if node in finalized:
                continue
            if key != best.get(node):
                continue
            finalized.add(node)
            if node == target:
                cost, _hops, path = key
                return cost, path
            cost, hops, path = key
            for neighbor in self.neighbors(node):
                if neighbor in finalized or neighbor in path:
                    continue
                weight = self._costs[_normalize(node, neighbor)]
                candidate = (cost + weight, hops + 1, path + (neighbor,))
                incumbent = best.get(neighbor)
                if incumbent is None or candidate < incumbent:
                    best[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        raise UnreachableError(source, target)

    def distance(self, source: NodeId, target: NodeId) -> float:
        try:
            return self.shortest_path(source, target)[0]
        except UnreachableError:
            return INF


@dataclass(frozen=True)
class NisanRonenResult:
    """The mechanism's output for one routing instance."""

    source: NodeId
    target: NodeId
    path: Tuple[NodeId, ...]
    path_cost: float
    payments: Dict[Edge, float]

    @property
    def total_payment(self) -> float:
        return float(sum(self.payments.values()))

    @property
    def overpayment_ratio(self) -> float:
        if is_zero_cost(self.path_cost):
            return 1.0 if is_zero_cost(self.total_payment) else INF
        return self.total_payment / self.path_cost


def nisan_ronen_mechanism(
    graph: EdgeWeightedGraph,
    source: NodeId,
    target: NodeId,
) -> NisanRonenResult:
    """Run the [16] mechanism for one pair.

    Payments are computed with the original ``d_{e=inf} - d_{e=0}``
    formula; the equivalent marginal form
    ``c_e + d_{G-e} - d_G`` is asserted in the test suite.
    Raises :class:`UnreachableError` when pricing is undefined (an edge
    on the path is a bridge -- the biconnectivity caveat of [16]).
    """
    cost, path = graph.shortest_path(source, target)
    payments: Dict[Edge, float] = {}
    for u, v in zip(path, path[1:]):
        edge = _normalize(u, v)
        detour = graph.without_edge(u, v).distance(source, target)
        if detour == INF:
            raise UnreachableError(source, target, avoiding=edge)
        free = graph.with_edge_cost(u, v, 0.0).distance(source, target)
        payments[edge] = detour - free
    return NisanRonenResult(
        source=source,
        target=target,
        path=path,
        path_cost=cost,
        payments=payments,
    )
