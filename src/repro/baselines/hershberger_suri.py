"""Batched replacement-path costs in the Hershberger-Suri style.

Hershberger and Suri [12] showed that all the VCG payments for one
source-target pair (edge agents) can be computed in essentially the
time of a *constant number* of shortest-path computations, instead of
one per path edge.  For undirected graphs the core device is the
cut-scan (Malik-Mittal-Gupta): with

* ``d_s(x)`` -- shortest distances from the source,
* ``d_t(y)`` -- shortest distances from the target, and
* the shortest-path tree from ``s``,

the replacement cost for path edge ``e_i`` is the minimum of
``d_s(x) + w(x, y) + d_t(y)`` over the edges ``(x, y) != e_i`` crossing
the cut between ``S_i`` (the side of the tree containing ``s`` after
deleting ``e_i``) and its complement.

:func:`replacement_path_costs` implements the cut-scan;
:func:`replacement_path_costs_naive` recomputes one Dijkstra per
removed edge.  The tests assert they agree, and the E8 benchmark
measures the speedup.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.baselines.nisan_ronen import EdgeWeightedGraph, _normalize
from repro.exceptions import UnreachableError
from repro.types import NodeId

Edge = Tuple[NodeId, NodeId]
INF = float("inf")


def _distances_and_tree(
    graph: EdgeWeightedGraph, root: NodeId
) -> Tuple[Dict[NodeId, float], Dict[NodeId, NodeId]]:
    """Dijkstra distances from *root* plus shortest-path-tree parents,
    with the same (cost, hops, path) tie-breaking as the substrate."""
    import heapq

    best: Dict[NodeId, Tuple[float, int, Tuple[NodeId, ...]]] = {root: (0.0, 0, (root,))}
    finalized: Dict[NodeId, Tuple[float, int, Tuple[NodeId, ...]]] = {}
    heap = [(best[root], root)]
    while heap:
        key, node = heapq.heappop(heap)
        if node in finalized:
            continue
        if key != best.get(node):
            continue
        finalized[node] = key
        cost, hops, path = key
        for neighbor in graph.neighbors(node):
            if neighbor in finalized or neighbor in path:
                continue
            weight = graph.cost(node, neighbor)
            candidate = (cost + weight, hops + 1, path + (neighbor,))
            incumbent = best.get(neighbor)
            if incumbent is None or candidate < incumbent:
                best[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    distances = {node: key[0] for node, key in finalized.items()}
    parents = {
        node: key[2][-2] for node, key in finalized.items() if len(key[2]) >= 2
    }
    return distances, parents


def _subtree(parents: Dict[NodeId, NodeId], root: NodeId, nodes) -> Set[NodeId]:
    """All nodes whose tree path to the root passes through *root*."""
    children: Dict[NodeId, List[NodeId]] = {}
    for node, parent in parents.items():
        children.setdefault(parent, []).append(node)
    result: Set[NodeId] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        result.add(node)
        stack.extend(children.get(node, ()))
    return result


def replacement_path_costs(
    graph: EdgeWeightedGraph,
    source: NodeId,
    target: NodeId,
) -> Dict[Edge, float]:
    """Replacement-path cost per edge of the ``source``-``target``
    shortest path, via the two-tree cut scan.

    Returns ``edge -> cost of the best path avoiding that edge``
    (``inf`` for bridges).  Total work: two Dijkstras plus one pass
    over all edges per path edge.
    """
    d_s, parents_s = _distances_and_tree(graph, source)
    d_t, _parents_t = _distances_and_tree(graph, target)
    if target not in d_s:
        raise UnreachableError(source, target)
    _cost, path = graph.shortest_path(source, target)

    all_edges = graph.edges
    result: Dict[Edge, float] = {}
    for u, v in zip(path, path[1:]):
        removed = _normalize(u, v)
        # Deleting tree edge (u, v) separates the subtree under the far
        # endpoint; every replacement path crosses the induced cut once.
        far = v if parents_s.get(v) == u else u
        far_side = _subtree(parents_s, far, graph.nodes)
        best = INF
        for x, y in all_edges:
            if (x, y) == removed:
                continue
            x_in = x in far_side
            y_in = y in far_side
            if x_in == y_in:
                continue  # not a cut edge
            near, inside = (y, x) if x_in else (x, y)
            candidate = d_s.get(near, INF) + graph.cost(x, y) + d_t.get(inside, INF)
            if candidate < best:
                best = candidate
        result[removed] = best
    return result


def replacement_path_costs_naive(
    graph: EdgeWeightedGraph,
    source: NodeId,
    target: NodeId,
) -> Dict[Edge, float]:
    """Reference: one full Dijkstra per removed path edge."""
    _cost, path = graph.shortest_path(source, target)
    result: Dict[Edge, float] = {}
    for u, v in zip(path, path[1:]):
        removed = _normalize(u, v)
        result[removed] = graph.without_edge(u, v).distance(source, target)
    return result
