"""Baselines and prior mechanisms the paper builds on or departs from.

* :mod:`repro.baselines.nisan_ronen` -- the centralized, single-pair,
  *edge*-agent VCG mechanism of Nisan & Ronen [16] (including its own
  edge-weighted shortest-path substrate).
* :mod:`repro.baselines.hershberger_suri` -- batched replacement-path
  computation in the style of Hershberger & Suri [12]: all edge-removal
  shortest-path costs for one pair from two shortest-path trees and a
  cut scan, instead of one Dijkstra per removed edge.
* :mod:`repro.baselines.hopcount_bgp` -- what *unmodified* BGP computes
  (shortest AS paths by hop count), quantifying the cost penalty the
  paper's "trivial modification" to lowest-cost routing removes.
"""

from repro.baselines.nisan_ronen import EdgeWeightedGraph, nisan_ronen_mechanism
from repro.baselines.hershberger_suri import replacement_path_costs
from repro.baselines.hopcount_bgp import hopcount_routes, route_stretch

__all__ = [
    "EdgeWeightedGraph",
    "nisan_ronen_mechanism",
    "replacement_path_costs",
    "hopcount_routes",
    "route_stretch",
]
