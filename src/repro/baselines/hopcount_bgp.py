"""What unmodified BGP computes: shortest AS paths by hop count.

Section 1 notes that "the current BGP simply computes shortest AS paths
in terms of number of AS hops" and calls switching to lowest cost a
trivial modification.  This baseline quantifies what the modification
buys: run the same path-vector engine under
:class:`~repro.bgp.policy.HopCountPolicy` and compare the transit cost
of its selected routes against the true LCPs (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bgp.engine import SynchronousEngine
from repro.bgp.policy import HopCountPolicy
from repro.exceptions import MechanismError
from repro.graphs.asgraph import ASGraph
from repro.routing.allpairs import all_pairs_lcp
from repro.types import Cost, NodeId, PathTuple, is_zero_cost

PairKey = Tuple[NodeId, NodeId]


def hopcount_routes(graph: ASGraph) -> Dict[PairKey, PathTuple]:
    """Selected routes under vanilla (hop-count) BGP, for all pairs."""
    engine = SynchronousEngine(graph, policy=HopCountPolicy())
    engine.initialize()
    engine.run()
    routes: Dict[PairKey, PathTuple] = {}
    for source, node in engine.nodes.items():
        for destination, entry in node.routes.items():
            routes[(source, destination)] = entry.path
    return routes


@dataclass(frozen=True)
class StretchReport:
    """Cost penalty of hop-count routing relative to LCP routing."""

    pairs: int
    pairs_suboptimal: int
    mean_stretch: float
    max_stretch: float
    max_pair: PairKey
    total_hopcount_cost: Cost
    total_lcp_cost: Cost

    @property
    def aggregate_stretch(self) -> float:
        if is_zero_cost(self.total_lcp_cost):
            return 1.0
        return self.total_hopcount_cost / self.total_lcp_cost


def route_stretch(graph: ASGraph) -> StretchReport:
    """Compare hop-count BGP routes against lowest-cost routes.

    Stretch of a pair = (transit cost of the hop-count route) /
    (transit cost of the LCP); pairs whose LCP costs zero are counted
    as stretch 1 when the hop-count route also costs zero and are
    otherwise excluded from the mean (but reflected in the totals).
    """
    lcp = all_pairs_lcp(graph)
    hop = hopcount_routes(graph)
    stretches = []
    suboptimal = 0
    max_stretch = 1.0
    max_pair: PairKey = (graph.nodes[0], graph.nodes[0])
    total_hop = 0.0
    total_lcp = 0.0
    for (source, destination), path in sorted(hop.items()):
        hop_cost = graph.path_cost(path) if len(path) >= 2 else 0.0
        lcp_cost = lcp.cost(source, destination)
        if hop_cost + 1e-12 < lcp_cost:
            raise MechanismError(
                f"hop-count route beats the LCP for ({source}, {destination}); "
                "the LCP computation is wrong"
            )
        total_hop += hop_cost
        total_lcp += lcp_cost
        if hop_cost > lcp_cost + 1e-12:
            suboptimal += 1
        if lcp_cost > 0:
            stretch = hop_cost / lcp_cost
            stretches.append(stretch)
            if stretch > max_stretch:
                max_stretch = stretch
                max_pair = (source, destination)
        elif is_zero_cost(hop_cost):
            stretches.append(1.0)
    mean = sum(stretches) / len(stretches) if stretches else 1.0
    return StretchReport(
        pairs=len(hop),
        pairs_suboptimal=suboptimal,
        mean_stretch=mean,
        max_stretch=max_stretch,
        max_pair=max_pair,
        total_hopcount_cost=total_hop,
        total_lcp_cost=total_lcp,
    )
