"""Settlement: aggregating tallies into per-node revenue.

The identity the reproduction checks (experiment E12): driving the
traffic matrix through per-source tallies and settling must produce
exactly the Theorem 1 payments ``p_k = sum_ij T_ij p^k_ij``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.accounting.tally import PacketTally
from repro.mechanism.vcg import PriceTable, payments
from repro.traffic.matrix import TrafficMatrix
from repro.types import Cost, NodeId


@dataclass
class SettlementReport:
    """Aggregated revenue per transit node after one settlement round."""

    revenue: Dict[NodeId, Cost] = field(default_factory=dict)
    sources_settled: int = 0

    def credit(self, k: NodeId, amount: Cost) -> None:
        self.revenue[k] = self.revenue.get(k, 0.0) + amount

    def total(self) -> Cost:
        return float(sum(self.revenue.values()))


def settle(tallies: Iterable[PacketTally]) -> SettlementReport:
    """Drain every tally into one settlement report."""
    report = SettlementReport()
    for tally in tallies:
        submitted = tally.drain()
        for k, amount in submitted.items():
            report.credit(k, amount)
        report.sources_settled += 1
    return report


def run_accounting(
    table: PriceTable,
    traffic: TrafficMatrix,
) -> Tuple[SettlementReport, Dict[NodeId, Cost]]:
    """Drive *traffic* through per-source tallies and settle.

    Returns the settlement report and the centralized Theorem 1
    payments for comparison; the two agree up to float summation order.
    """
    tallies: Dict[NodeId, PacketTally] = {}
    for (source, destination), intensity in traffic.items():
        tally = tallies.setdefault(source, PacketTally(source))
        tally.record_packets(destination, table.row(source, destination), intensity)
    report = settle(tallies.values())
    reference = payments(table, dict(traffic.items()))
    return report, reference
