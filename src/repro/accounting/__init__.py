"""Using the prices: tallies and settlement (Section 6.4)."""

from repro.accounting.tally import PacketTally
from repro.accounting.settlement import SettlementReport, settle

__all__ = ["PacketTally", "SettlementReport", "settle"]
