"""Per-packet charge tallies (Section 6.4).

"The simplest approach is to have each node i keep running tallies of
owed charges; that is, every time a packet is sent from source i to a
destination j, the counter for each node k != i, j that lies on the LCP
is incremented by p^k_ij."  A :class:`PacketTally` is that counter set
for one source node; it requires only the node's own price rows, i.e.
O(n) additional storage per node as the paper observes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.exceptions import MechanismError
from repro.types import Cost, NodeId, is_finite_cost


class PacketTally:
    """Running owed-charge counters kept at one source node."""

    def __init__(self, source: NodeId) -> None:
        self.source = source
        self.packets_sent = 0.0
        self._owed: Dict[NodeId, Cost] = {}

    def record_packets(
        self,
        destination: NodeId,
        price_row: Mapping[NodeId, Cost],
        count: float = 1.0,
    ) -> None:
        """Record *count* packets sent to *destination*.

        *price_row* is the source's own price row ``k -> p^k_ij`` for
        that destination (from its FPSS node); each transit node's
        counter grows by ``count * p^k_ij``.
        """
        if count < 0:
            raise MechanismError(f"cannot record {count} packets")
        if destination == self.source:
            raise MechanismError("self-traffic carries no transit charges")
        self.packets_sent += count
        for k, price in price_row.items():
            if not is_finite_cost(price) or price < 0:
                raise MechanismError(
                    f"unusable price {price!r} for transit node {k}; "
                    "tallies must only run on converged prices"
                )
            self._owed[k] = self._owed.get(k, 0.0) + count * price

    def owed(self, k: NodeId) -> Cost:
        """Total currently owed by this source to transit node *k*."""
        return self._owed.get(k, 0.0)

    def snapshot(self) -> Dict[NodeId, Cost]:
        """Copy of all counters (what gets submitted at settlement)."""
        return dict(self._owed)

    def drain(self) -> Dict[NodeId, Cost]:
        """Submit and reset the counters (the periodic submission to
        "whatever accounting and charging mechanisms are used")."""
        submitted = self._owed
        self._owed = {}
        return submitted

    @property
    def total_owed(self) -> Cost:
        return float(sum(self._owed.values()))

    def __repr__(self) -> str:
        return (
            f"PacketTally(source={self.source}, packets={self.packets_sent}, "
            f"owed={self.total_owed:.6g})"
        )
