"""The one-command correctness gate: ``python -m repro.devtools.check``.

Runs, in order:

1. **lint** -- the repo-specific AST rules (:mod:`repro.devtools.lint`),
   in-process;
2. **flow** -- the interprocedural determinism/contract analyzer
   (:mod:`repro.devtools.flow`), in-process, gating on zero findings
   that are not grandfathered by the checked-in baseline;
3. **bench-imports** -- ``benchmarks/`` must stay importable with the
   baseline toolchain: no module-level imports of optional heavy
   dependencies (scipy) that would break ``pytest benchmarks/``
   collection in the reproduction container;
4. **ruff** -- generic style/bug lint, if ruff is installed;
5. **mypy** -- strict static typing, if mypy is installed;
6. **pytest** -- the tier-1 test suite.

Each step reports per-rule finding counts (``counts``), so a regression
says *which* rule regressed and by how much instead of a bare FAIL, and
``--json`` emits the whole report machine-readably for the CI step.

External tools that are not installed are reported ``SKIP`` rather than
failing the gate: the repo-specific checks carry the invariants that
matter, and offline environments (like the reproduction container) do
not ship ruff/mypy.  CI installs both, so skips never hide a regression
on the gating path.

Exit status is non-zero iff any executed step failed.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools import flow, lint

__all__ = ["StepResult", "run_checks", "main"]

_PASS, _FAIL, _SKIP = "PASS", "FAIL", "SKIP"


@dataclass(frozen=True)
class StepResult:
    """Outcome of one gate step."""

    name: str
    status: str  # PASS / FAIL / SKIP
    detail: str = ""
    #: per-rule finding counts (analysis steps; empty for tool steps).
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status == _FAIL

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "counts": dict(self.counts),
        }


def _repo_root() -> Path:
    """The checkout root (three levels above this file's package)."""
    return Path(__file__).resolve().parents[3]


def _src_root() -> Path:
    return Path(__file__).resolve().parents[1]


def _step_lint() -> StepResult:
    findings = lint.lint_paths([_src_root()])
    counts: Dict[str, int] = {code: 0 for code in lint.ALL_CODES}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if findings:
        listing = "\n".join(str(f) for f in findings)
        return StepResult("lint", _FAIL, listing, counts=counts)
    return StepResult("lint", _PASS, counts=counts)


def _step_flow() -> StepResult:
    """Interprocedural analyzer, gated on non-baselined findings."""
    result = flow.analyze_paths([_src_root()])
    baseline = flow.load_baseline(flow.default_baseline_path())
    new, grandfathered = flow.split_baseline(result.findings, baseline)
    counts: Dict[str, int] = {code: 0 for code in flow.FLOW_CODES}
    for finding in new:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if new:
        listing = "\n".join(str(f) for f in new)
        if grandfathered:
            listing += f"\n({len(grandfathered)} grandfathered finding(s) not shown)"
        return StepResult("flow", _FAIL, listing, counts=counts)
    detail = (
        f"{len(grandfathered)} grandfathered finding(s)" if grandfathered else ""
    )
    return StepResult("flow", _PASS, detail, counts=counts)


#: Modules the benchmark harness must never import at module level --
#: they are optional in the reproduction container, and a top-level
#: import would break ``pytest benchmarks/`` collection outright.
_BENCH_FORBIDDEN_IMPORTS = ("scipy",)


def _module_level_forbidden_imports(tree: ast.Module) -> List[str]:
    """Names from :data:`_BENCH_FORBIDDEN_IMPORTS` imported at module
    level (imports inside functions -- lazy/gated -- are fine)."""
    found: List[str] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module or ""]
        else:
            continue
        for name in names:
            root_name = name.split(".")[0]
            if root_name in _BENCH_FORBIDDEN_IMPORTS:
                found.append(f"line {node.lineno}: {name}")
    return found


def _step_bench_imports(root: Path) -> StepResult:
    bench_dir = root / "benchmarks"
    if not bench_dir.is_dir():  # pragma: no cover - repo layout guard
        return StepResult("bench-imports", _SKIP, "no benchmarks/ directory")
    problems: List[str] = []
    for path in sorted(bench_dir.glob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - caught by pytest too
            problems.append(f"{path.name}: syntax error: {exc}")
            continue
        for finding in _module_level_forbidden_imports(tree):
            problems.append(
                f"{path.name}: module-level import of an optional heavy "
                f"dependency ({finding}); import it lazily inside the "
                f"benchmark (or gate it) so benchmarks/ stays importable"
            )
    if problems:
        return StepResult("bench-imports", _FAIL, "\n".join(problems))
    return StepResult("bench-imports", _PASS)


def _run_tool(name: str, args: Sequence[str], cwd: Path) -> StepResult:
    """Run an *optional* external tool; SKIP when it is not installed."""
    if shutil.which(name) is None:
        return StepResult(name, _SKIP, f"{name} not installed")
    proc = subprocess.run(
        [name, *args], cwd=cwd, capture_output=True, text=True
    )
    if proc.returncode != 0:
        return StepResult(name, _FAIL, (proc.stdout + proc.stderr).strip())
    return StepResult(name, _PASS)


def _step_ruff(root: Path) -> StepResult:
    return _run_tool("ruff", ["check", "src"], cwd=root)


def _step_mypy(root: Path) -> StepResult:
    return _run_tool("mypy", ["src/repro"], cwd=root)


def _step_pytest(root: Path) -> StepResult:
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=root,
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-30:])
        return StepResult("pytest", _FAIL, tail)
    return StepResult("pytest", _PASS)


def run_checks(skip_tests: bool = False) -> List[StepResult]:
    """Execute every gate step; never raises on a failing step."""
    root = _repo_root()
    results = [
        _step_lint(),
        _step_flow(),
        _step_bench_imports(root),
        _step_ruff(root),
        _step_mypy(root),
    ]
    if not skip_tests:
        results.append(_step_pytest(root))
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.check",
        description=(
            "Run the full correctness gate "
            "(lint, flow, bench-imports, ruff, mypy, pytest)."
        ),
    )
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="run only the static checks (lint, flow, ruff, mypy)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the step report as JSON (consumed by the CI step)",
    )
    args = parser.parse_args(argv)
    results = run_checks(skip_tests=args.skip_tests)
    failed = [r for r in results if r.failed]
    if args.as_json:
        payload = {
            "steps": [result.as_dict() for result in results],
            "failed": len(failed),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for result in results:
            suffix = ""
            if result.counts and any(result.counts.values()):
                nonzero = {
                    code: count
                    for code, count in sorted(result.counts.items())
                    if count
                }
                suffix = "  " + ", ".join(
                    f"{code}={count}" for code, count in nonzero.items()
                )
            print(f"{result.status:4s} {result.name}{suffix}")
            if result.detail and result.status != _PASS:
                for line in result.detail.splitlines():
                    print(f"     {line}")
    if failed:
        if not args.as_json:
            print(f"{len(failed)} step(s) failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
