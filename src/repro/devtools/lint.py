"""Domain-specific AST linter for the repro codebase.

``python -m repro.devtools.lint [paths...]`` walks the source tree and
enforces invariants that generic linters cannot know about but that the
paper's correctness results depend on:

``RPR001`` -- **no float equality on costs or prices.**  ``==`` / ``!=``
    between cost-like values (identifiers mentioning cost, price,
    payment, intensity, weight, welfare, or utility, or literal floats)
    silently breaks once arithmetic reassociates; comparisons must go
    through the epsilon helpers in :mod:`repro.types`.  The canonical
    route order in ``routing/tiebreak.py`` is exempt: its *exact*
    comparison is the design (both engines accumulate costs
    bit-identically).

``RPR002`` -- **no mutation of routing structures in protocol code.**
    Inside ``bgp/`` and ``core/``, the AS graph and selected paths are
    read-only inputs: mutating ``graph``-rooted state or ``path``-named
    sequences from a stage loop would invalidate every price already
    derived from them.

``RPR003`` -- **no unordered set iteration in protocol hot paths.**
    Inside ``bgp/``, ``core/``, ``routing/``, and ``mechanism/``,
    iterating a ``set`` without ``sorted()`` makes stage outcomes depend
    on hash order; the protocol's determinism (identical tie-breaking in
    both engines) requires a canonical iteration order.

``RPR004`` -- **no unseeded randomness.**  Module-level ``random.*``
    calls, ``random.Random()`` with no seed, and ``numpy.random.*``
    outside an explicit seeded ``Generator`` draw from hidden global
    state; every stochastic element must take an explicit seed.  Only
    ``graphs/generators.py`` (which threads seeds into samplers) is
    exempt from the numpy aliasing restriction; it too must seed.

``RPR005`` -- **no wall-clock reads in protocol/engine code.**  Inside
    ``bgp/``, ``core/``, ``routing/``, ``mechanism/``, and ``obs/``,
    ``time.time()`` (and friends: ``time_ns``, ``ctime``, ``gmtime``,
    ``localtime``) reads a clock that NTP can step backwards, so
    durations computed from it can be negative and recorded traces
    stop being comparable across hosts.  Timing must use the monotonic
    ``time.perf_counter()`` / ``time.monotonic()`` family, which is
    what :mod:`repro.obs` stamps events with.

``RPR006`` -- **no O(n + m) graph copies in routing hot paths.**
    Inside ``routing/``, every ``.without_node()`` call allocates a
    full copy of the AS graph; the avoiding-tree sweep makes one such
    call per (destination, transit) pair, so the copies dominate the
    mechanism's running time.  Use
    :meth:`~repro.graphs.asgraph.ASGraph.masked_without_node`, which
    answers the same reads through a copy-free view.  The copying
    constructor remains legitimate where a true independent graph is
    needed (``graphs/``, ``extensions/``, experiments, tests).

``RPR011`` -- **no imports of deprecated in-tree shims.**  Once a
    module is demoted to a deprecation shim (today:
    ``repro.routing.scipy_engine``, superseded by
    ``repro.routing.engines.vectorized``), in-tree code must import the
    real home; importing the shim re-entangles the tree with a surface
    scheduled for deletion and fires the shim's ``DeprecationWarning``
    inside library code, which the ``-W error::DeprecationWarning`` CI
    step turns into a failure.

A finding on a given line is suppressed by a trailing
``# repro-lint: ok`` comment, optionally scoped to codes:
``# repro-lint: ok(RPR001)``.  Suppressions are deliberate escape
hatches for the handful of *intentional* exact comparisons (e.g. the
engines' change-detection, which relies on bit-identical accumulation).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
    "ALL_CODES",
]

ALL_CODES: Tuple[str, ...] = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR011",
)

#: Identifier tokens treated as "cost-like" by RPR001.
_COST_TOKEN = re.compile(
    r"(?:^|_)(?:cost|costs|price|prices|payment|payments|intensity|"
    r"weight|weights|welfare|utility)(?:_|$)"
)

#: Files (relative to the package root) exempt from RPR001: the
#: canonical route order *is* exact comparison, by design.
_FLOAT_EQ_EXEMPT = ("routing/tiebreak.py",)

#: File exempt from RPR004's module-alias restriction: the topology
#: generators own the seeded samplers.
_RANDOM_EXEMPT = ("graphs/generators.py",)

#: Subtrees whose stage loops must not mutate routing structures.
_MUTATION_SCOPE = ("bgp/", "core/")

#: Protocol hot paths requiring deterministic iteration.
_DETERMINISM_SCOPE = ("bgp/", "core/", "routing/", "mechanism/")

#: Subtrees where timing must be monotonic (RPR005): the protocol and
#: engine core plus the observability layer that timestamps it.
_WALLCLOCK_SCOPE = ("bgp/", "core/", "routing/", "mechanism/", "obs/")

#: ``time``-module functions that read the wall clock.
_WALLCLOCK_FUNCS = frozenset({"time", "time_ns", "ctime", "gmtime", "localtime"})

#: Subtree where graph copies are banned (RPR006): the routing hot
#: paths, where :meth:`masked_without_node` answers the same reads
#: without the O(n + m) allocation.
_GRAPH_COPY_SCOPE = ("routing/",)

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "add",
        "discard",
        "setdefault",
    }
)

_PATH_NAMES = frozenset({"path", "paths", "_paths"})

_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
        "getrandbits",
    }
)

#: Deprecated in-tree shim modules whose import is banned (RPR011).
#: Grows one entry per demotion; an entry is dropped only when the shim
#: file itself is deleted from the tree.
_DEPRECATED_SHIMS = frozenset({"repro.routing.scipy_engine"})

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*ok(?:\(([^)]*)\))?")


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute/call chain."""
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _chain_names(node: ast.AST) -> List[str]:
    """All identifiers along a name/attribute/subscript chain, root first."""
    names: List[str] = []

    def walk(current: ast.AST) -> None:
        if isinstance(current, ast.Attribute):
            walk(current.value)
            names.append(current.attr)
        elif isinstance(current, ast.Subscript):
            walk(current.value)
        elif isinstance(current, ast.Call):
            walk(current.func)
        elif isinstance(current, ast.Name):
            names.append(current.id)

    walk(node)
    return names


def _is_cost_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    name = _terminal_name(node)
    return name is not None and bool(_COST_TOKEN.search(name))


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether *node* statically looks like a set-valued expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = _terminal_name(node.func)
        if func in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _is_set_annotation(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    name = _terminal_name(annotation)
    return name in {"Set", "FrozenSet", "set", "frozenset", "MutableSet", "AbstractSet"}


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor applying every enabled rule to one module."""

    def __init__(
        self,
        relpath: str,
        select: Set[str],
        findings: List[Finding],
    ) -> None:
        self.relpath = relpath
        self.select = select
        self.findings = findings
        # RPR003: names statically known to hold sets, per enclosing
        # function scope (a stack; module level is the first frame).
        self._set_scopes: List[Set[str]] = [set()]
        # RPR004: aliases under which the random / numpy modules are
        # visible in this module.
        self._random_aliases: Set[str] = set()
        self._numpy_aliases: Set[str] = set()
        self._numpy_random_aliases: Set[str] = set()
        self._from_random_names: Set[str] = set()
        # RPR005: aliases under which the time module is visible, and
        # wall-clock functions imported from it by name.
        self._time_aliases: Set[str] = set()
        self._from_time_names: Set[str] = set()

    # -- helpers -----------------------------------------------------

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if code in self.select:
            self.findings.append(
                Finding(
                    path=self.relpath,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0) + 1,
                    code=code,
                    message=message,
                )
            )

    def _in_scope(self, prefixes: Iterable[str]) -> bool:
        return any(self.relpath.startswith(prefix) for prefix in prefixes)

    @property
    def _sets(self) -> Set[str]:
        return self._set_scopes[-1]

    # -- scope management (RPR003 name inference) --------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._set_scopes.append(set())
        args = getattr(node, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None and _is_set_annotation(arg.annotation):
                    self._set_scopes[-1].add(arg.arg)
        self.generic_visit(node)
        self._set_scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    # -- imports (RPR004 alias tracking) -----------------------------

    def _check_shim_import(self, node: ast.AST, module: Optional[str]) -> None:
        if module in _DEPRECATED_SHIMS:
            self._emit(
                node,
                "RPR011",
                f"import of deprecated shim module {module}; import its "
                "replacement instead (the shim exists only for external "
                "callers and will be removed)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_shim_import(node, alias.name)
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "numpy":
                self._numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self._numpy_random_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._check_shim_import(node, node.module)
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_FUNCS:
                    self._from_random_names.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_FUNCS:
                    self._from_time_names.add(alias.asname or alias.name)
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._numpy_random_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- RPR001 ------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.relpath not in _FLOAT_EQ_EXEMPT:
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_cost_like(left) or _is_cost_like(right):
                    self._emit(
                        node,
                        "RPR001",
                        "float equality on a cost-like value; use the "
                        "epsilon helpers in repro.types (costs_close / "
                        "is_zero_cost) or math.isnan/isinf for guards",
                    )
                    break
        self.generic_visit(node)

    # -- RPR002 ------------------------------------------------------

    def _mutates_graph_chain(self, target: ast.AST) -> bool:
        """Assignment through a graph object (``graph`` non-terminal)."""
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return False
        names = _chain_names(target)
        interior = names[:-1] if isinstance(target, ast.Attribute) else names
        return "graph" in interior

    def _check_mutation_target(self, target: ast.AST) -> None:
        if self._mutates_graph_chain(target):
            self._emit(
                target,
                "RPR002",
                "mutation through an AS-graph object inside protocol "
                "code; derive a new graph (with_cost / without_node) "
                "outside the stage loop instead",
            )
        if isinstance(target, ast.Attribute) and target.attr in {
            "path",
            "node_costs",
        }:
            self._emit(
                target,
                "RPR002",
                f"assignment to '.{target.attr}' of a routing structure; "
                "paths and cost snapshots are immutable once published",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._in_scope(_MUTATION_SCOPE):
            for target in node.targets:
                self._check_mutation_target(target)
        self._track_set_assignment(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._in_scope(_MUTATION_SCOPE):
            self._check_mutation_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._in_scope(_MUTATION_SCOPE):
            for target in node.targets:
                if self._mutates_graph_chain(target):
                    self._emit(
                        target,
                        "RPR002",
                        "deletion through an AS-graph object inside "
                        "protocol code",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_mutator_call(node)
        self._check_random_call(node)
        self._check_wallclock_call(node)
        self._check_graph_copy_call(node)
        self.generic_visit(node)

    def _check_mutator_call(self, node: ast.Call) -> None:
        if not self._in_scope(_MUTATION_SCOPE):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in _MUTATOR_METHODS:
            return
        receiver = node.func.value
        names = _chain_names(receiver)
        terminal = names[-1] if names else None
        if "graph" in names:
            self._emit(
                node,
                "RPR002",
                f"'.{node.func.attr}()' mutates state reached through an "
                "AS-graph object inside protocol code",
            )
        elif terminal in _PATH_NAMES:
            self._emit(
                node,
                "RPR002",
                f"'.{node.func.attr}()' on a path; selected paths are "
                "immutable tuples -- build a new tuple instead",
            )

    # -- RPR003 ------------------------------------------------------

    def _track_set_assignment(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self._sets):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._sets.add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._sets.discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _is_set_annotation(node.annotation):
            self._sets.add(node.target.id)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if not self._in_scope(_DETERMINISM_SCOPE):
            return
        if _is_set_expr(iter_node, self._sets):
            self._emit(
                iter_node,
                "RPR003",
                "iteration over a set in a protocol hot path; wrap in "
                "sorted() so stage outcomes do not depend on hash order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- RPR004 ------------------------------------------------------

    def _check_random_call(self, node: ast.Call) -> None:
        func = node.func
        # random.<fn>(...) on the module alias, or bare <fn> imported
        # from random: hidden global RNG state.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root = func.value.id
            if root in self._random_aliases:
                if func.attr in _RANDOM_FUNCS:
                    self._emit(
                        node,
                        "RPR004",
                        f"'{root}.{func.attr}()' uses the global RNG; "
                        "construct random.Random(seed) and thread it "
                        "through explicitly",
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    self._emit(
                        node,
                        "RPR004",
                        "'random.Random()' without a seed is "
                        "nondeterministic; pass an explicit seed",
                    )
        elif isinstance(func, ast.Name) and func.id in self._from_random_names:
            self._emit(
                node,
                "RPR004",
                f"'{func.id}()' imported from random uses the global "
                "RNG; construct random.Random(seed) instead",
            )
        # numpy.random.<fn>(...) / np.random.<fn>(...): legacy global
        # generator, except an explicitly seeded default_rng(...).
        np_random_attr: Optional[str] = None
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self._numpy_aliases
            ):
                np_random_attr = func.attr
            elif isinstance(value, ast.Name) and value.id in self._numpy_random_aliases:
                np_random_attr = func.attr
        if np_random_attr is not None and self.relpath not in _RANDOM_EXEMPT:
            if np_random_attr in {"default_rng", "Generator", "SeedSequence"}:
                if not node.args and not node.keywords:
                    self._emit(
                        node,
                        "RPR004",
                        f"'numpy.random.{np_random_attr}()' without a "
                        "seed is nondeterministic; pass an explicit seed",
                    )
            else:
                self._emit(
                    node,
                    "RPR004",
                    f"'numpy.random.{np_random_attr}' draws from numpy's "
                    "global state; use numpy.random.default_rng(seed)",
                )

    # -- RPR006 ------------------------------------------------------

    def _check_graph_copy_call(self, node: ast.Call) -> None:
        if not self._in_scope(_GRAPH_COPY_SCOPE):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "without_node":
            self._emit(
                node,
                "RPR006",
                "'.without_node()' copies the whole graph in a routing "
                "hot path; use '.masked_without_node()', the copy-free "
                "view with identical reads",
            )

    # -- RPR005 ------------------------------------------------------

    def _check_wallclock_call(self, node: ast.Call) -> None:
        if not self._in_scope(_WALLCLOCK_SCOPE):
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
            and func.attr in _WALLCLOCK_FUNCS
        ):
            self._emit(
                node,
                "RPR005",
                f"'{func.value.id}.{func.attr}()' reads the wall clock in "
                "protocol/engine code; use time.perf_counter() / "
                "time.monotonic() so durations cannot go backwards",
            )
        elif isinstance(func, ast.Name) and func.id in self._from_time_names:
            self._emit(
                node,
                "RPR005",
                f"'{func.id}()' imported from time reads the wall clock in "
                "protocol/engine code; use time.perf_counter() / "
                "time.monotonic() so durations cannot go backwards",
            )


def _suppressed_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = all codes)."""
    suppressed: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if not match:
            continue
        codes = match.group(1)
        if codes:
            suppressed[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
        else:
            suppressed[lineno] = None
    return suppressed


def lint_source(
    source: str,
    relpath: str,
    select: Optional[Sequence[str]] = None,
    *,
    apply_suppressions: bool = True,
) -> List[Finding]:
    """Lint one module given as text; *relpath* is package-root relative
    (forward slashes), which is what scopes the per-subtree rules.

    ``apply_suppressions=False`` reports findings on suppressed lines
    too; the analyzer's ``--check-suppressions`` mode uses this to spot
    ``# repro-lint: ok`` comments that no longer suppress anything.
    """
    chosen = set(select) if select is not None else set(ALL_CODES)
    tree = ast.parse(source, filename=relpath)
    findings: List[Finding] = []
    visitor = _RuleVisitor(relpath=relpath, select=chosen, findings=findings)
    visitor.visit(tree)
    if apply_suppressions:
        suppressed = _suppressed_lines(source)
        kept = []
        for finding in findings:
            codes = suppressed.get(finding.line, ...)
            if codes is ...:
                kept.append(finding)
            elif codes is not None and finding.code not in codes:
                kept.append(finding)
        findings = kept
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def _package_relpath(path: Path) -> str:
    """Path relative to the enclosing ``repro`` package root, if any."""
    parts = path.as_posix().split("/")
    for anchor in ("repro",):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            rel = "/".join(parts[index + 1 :])
            if rel:
                return rel
    return path.name


def lint_file(path: Path, select: Optional[Sequence[str]] = None) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, _package_relpath(path), select=select)


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under *paths*.  A file that does not
    parse is reported as a ``PARSE`` finding (never filtered by
    *select*) rather than aborting the whole walk."""
    findings: List[Finding] = []
    for path in _iter_python_files(paths):
        try:
            findings.extend(lint_file(path, select=select))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=_package_relpath(path),
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    code="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return findings


def _default_root() -> Path:
    """The ``src/repro`` tree this module belongs to."""
    return Path(__file__).resolve().parent.parent


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Repo-specific AST lint for the BGP/VCG core.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to enable (default: all)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [_default_root()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    if select is not None:
        unknown = sorted(set(select) - set(ALL_CODES))
        if unknown:
            print(
                f"error: unknown rule code(s) {', '.join(unknown)}; "
                f"known: {', '.join(ALL_CODES)}",
                file=sys.stderr,
            )
            return 2
    findings = lint_paths(paths, select=select)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
