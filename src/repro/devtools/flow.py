"""Interprocedural determinism & contract analyzer: ``repro.devtools.flow``.

The AST linter (:mod:`repro.devtools.lint`, RPR001-006) checks single
lines in single files.  This module is the whole-program companion: it
builds a module-level call graph over the ``repro`` package, infers
per-function *effect summaries*, propagates them transitively to a
fixpoint, and checks the package's declared contracts -- turning
guarantees that previously only the differential test harness could
observe (Thm. 2 bit-identity across engines) into pre-test, per-commit
static checks.

Pipeline
--------
1. **Collect.**  Every ``.py`` module under the analyzed roots is
   parsed once; top-level functions, classes (with their methods and
   resolved base classes), and *all* imports -- including the lazy
   function-body imports the engines use -- are indexed.
2. **Call graph.**  Calls are resolved through local names, ``repro.*``
   module aliases, ``from``-imports, ``self.``/``super().`` dispatch
   (over the analyzed class hierarchy, ancestors *and* descendants, so
   ``Engine.all_pairs -> self._all_pairs`` reaches every backend), and
   class-hierarchy analysis for unknown receivers -- which is what
   resolves the registry indirection ``resolve_engine(engine).price_table``
   to every registered engine.  Bare function names passed as arguments
   (worker callbacks handed to a multiprocessing pool) are treated as
   called.
3. **Effects.**  Per function, local effects are inferred --
   ``reads-rng`` (global/unseeded randomness), ``reads-wall-clock``
   (``time.time`` family; the monotonic clock is deliberately exempt),
   ``iterates-unordered-set``, ``performs-io``,
   ``mutates-module-state`` -- plus the set of mutated parameters.
   Effects propagate caller-ward over the call graph to a fixpoint;
   parameter mutation propagates through argument bindings.
4. **Contracts.**  Violations surface as four new codes:

``RPR007`` -- **transitive nondeterminism at a contract entry point.**
    ``all_pairs_lcp``, ``compute_price_table``,
    ``distributed_mechanism``, and every registered engine's
    route/price methods must be transitively deterministic (no RNG, no
    wall clock, no unordered-set iteration anywhere beneath them) and
    must not mutate their ``graph`` argument.  The finding message
    carries the full call chain down to the offending line.

``RPR008`` -- **cache write outside the commit path.**  The incremental
    engine's epoch caches may only be written inside its declared
    commit methods; a write anywhere else could leave the caches
    inconsistent with the graph epoch they claim to describe.
    Local aliases of cache attributes (``cache = self._avoiding...``)
    are tracked.

``RPR009`` -- **engine signature drift.**  Every registered engine's
    public ``all_pairs``/``price_table`` signature must be AST-identical
    (names, kinds, defaults, keyword-only structure) to the reference
    engine's, and the ``all_pairs_lcp`` / ``compute_price_table`` pair
    must keep identical keyword-only ``engine=/sanitize=/obs=`` tails.

``RPR010`` -- **unbalanced obs span.**  A ``.span(...)`` call must be
    closed on all paths: opened in a ``with`` statement, handed to an
    ``ExitStack.enter_context``, returned to the caller (factory
    delegation), or paired with ``__exit__`` in a ``finally`` block.

Findings honor the same line-level ``# repro-lint: ok(CODE)``
suppressions as the linter, and a checked-in baseline file
(``flow_baseline.json`` next to this module) grandfathers accepted
findings so the CI gate only fails on *new* ones.  ``--json`` emits a
machine-readable report; ``--check-suppressions`` flags suppression
comments whose line no longer produces any finding (lint or flow).
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.devtools.lint import (
    _MUTATOR_METHODS,
    _RANDOM_FUNCS,
    _WALLCLOCK_FUNCS,
    _chain_names,
    _is_set_annotation,
    _is_set_expr,
    _package_relpath,
    _suppressed_lines,
    lint_source,
)

__all__ = [
    "AnalysisResult",
    "FlowFinding",
    "FLOW_CODES",
    "StaleSuppression",
    "analyze_paths",
    "check_suppressions",
    "default_baseline_path",
    "load_baseline",
    "main",
    "split_baseline",
    "write_baseline",
]

FLOW_CODES: Tuple[str, ...] = ("RPR007", "RPR008", "RPR009", "RPR010")

#: Effect lattice elements (a flat powerset lattice; join = union).
EFFECT_RNG = "reads-rng"
EFFECT_CLOCK = "reads-wall-clock"
EFFECT_SET_ITER = "iterates-unordered-set"
EFFECT_IO = "performs-io"
EFFECT_MODULE_STATE = "mutates-module-state"

#: Effects forbidden beneath a determinism contract entry point.
DETERMINISM_EFFECTS: Tuple[str, ...] = (
    EFFECT_RNG,
    EFFECT_CLOCK,
    EFFECT_SET_ITER,
)

#: Seeded constructors: flagged only when called with no arguments.
_SEEDED_NP_CONSTRUCTORS = frozenset({"default_rng", "Generator", "SeedSequence"})

#: Method names never resolved by class-hierarchy analysis: they
#: collide with builtin container/str methods and would wire half the
#: package to unrelated classes.
_CHA_SKIP = frozenset(
    {
        "add",
        "append",
        "clear",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "lower",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "update",
        "upper",
        "values",
    }
)

#: Consumers whose result does not depend on iteration order: a set
#: iterated inside e.g. ``sorted(x for x in s)`` is deterministic.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "len", "set", "frozenset", "min", "max", "any", "all"}
)

#: Module roots whose calls count as IO (informational effect).
_IO_MODULE_ROOTS = frozenset({"subprocess", "shutil", "socket"})
_IO_BUILTINS = frozenset({"open", "print", "input"})
_IO_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes", "unlink", "mkdir"}
)


# ----------------------------------------------------------------------
# Contract tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EntryContract:
    """One routing/mechanism entry point held to the determinism bar."""

    relpath: str
    function: str  # "name" or "Class.name"
    graph_param: Optional[str] = "graph"


#: Module-level entry points (engine methods are added from the
#: registry module at analysis time).
ENTRY_CONTRACTS: Tuple[EntryContract, ...] = (
    EntryContract("routing/allpairs.py", "all_pairs_lcp"),
    EntryContract("mechanism/vcg.py", "compute_price_table"),
    EntryContract("core/protocol.py", "distributed_mechanism"),
)

#: Engine methods the determinism contract covers, resolved per
#: registered class through the analyzed MRO.
ENGINE_ENTRY_METHODS: Tuple[str, ...] = (
    "all_pairs",
    "price_table",
    "_all_pairs",
    "_price_table",
    "cost_matrix",
)

#: Public engine methods whose signatures must match the reference
#: engine's exactly (RPR009).
ENGINE_PUBLIC_METHODS: Tuple[str, ...] = ("all_pairs", "price_table")

ENGINE_REGISTRY_RELPATH = "routing/engines/__init__.py"

#: Function pair that must keep identical keyword-only tails.
KWONLY_PARITY: Tuple[Tuple[str, str], ...] = (
    ("routing/allpairs.py", "all_pairs_lcp"),
    ("mechanism/vcg.py", "compute_price_table"),
)


@dataclass(frozen=True)
class CacheContract:
    """Attributes writable only inside declared commit methods."""

    relpath: str
    class_name: str
    cache_attrs: Tuple[str, ...]
    commit_methods: Tuple[str, ...]


CACHE_CONTRACTS: Tuple[CacheContract, ...] = (
    CacheContract(
        relpath="routing/engines/incremental.py",
        class_name="IncrementalEngine",
        cache_attrs=(
            "_graph",
            "_costs",
            "_edges",
            "_trees",
            "_avoiding",
            "_rows",
            "_row_transit",
        ),
        commit_methods=(
            "__init__",
            "reset",
            "_sync",
            "_rebuild_all",
            "_price_table",
            "_build_rows",
        ),
    ),
)


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlowFinding:
    """One contract violation."""

    path: str
    line: int
    col: int
    code: str
    message: str
    function: str
    #: Stable identity for the baseline file: no line numbers, so the
    #: baseline survives unrelated edits above the finding.
    key: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "function": self.function,
            "key": self.key,
        }


# ----------------------------------------------------------------------
# Program model
# ----------------------------------------------------------------------
#: origin of an effect: ("local", line, desc) | ("call", line, callee_id)
Origin = Tuple[str, int, str]
#: origin of a parameter mutation:
#: ("local", line, desc) | ("call", line, callee_id, callee_param)
ParamOrigin = Tuple[Any, ...]


@dataclass
class CallSite:
    """One resolved call: candidate callees plus binding metadata."""

    line: int
    node: ast.Call
    #: (callee func_id, binds_receiver_as_self, receiver_root_name)
    candidates: Tuple[Tuple[str, bool, Optional[str]], ...]


@dataclass
class FunctionInfo:
    func_id: str
    relpath: str
    name: str
    qualname: str
    class_name: Optional[str]
    lineno: int
    params: Tuple[str, ...]
    node: Any
    calls: List[CallSite] = field(default_factory=list)
    local_effects: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    local_mutated: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    #: (cache attribute, line) writes, for RPR008.
    cache_writes: List[Tuple[str, int]] = field(default_factory=list)
    #: unbalanced ``.span(...)`` call lines, for RPR010.
    unbalanced_spans: List[int] = field(default_factory=list)


@dataclass
class ClassInfo:
    class_id: str
    relpath: str
    name: str
    lineno: int
    methods: Dict[str, str] = field(default_factory=dict)
    base_exprs: List[Any] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)  # resolved class ids
    engine_name: Optional[str] = None


@dataclass
class ModuleInfo:
    relpath: str
    dotted: str
    path: Path
    tree: Any
    source: str
    functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local name -> (dotted module, symbol | None)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    top_level_names: Set[str] = field(default_factory=set)


@dataclass
class AnalysisResult:
    """Everything one whole-program pass produced."""

    findings: List[FlowFinding]
    #: func_id -> {"effects": [...], "mutates_params": [...]}
    summaries: Dict[str, Dict[str, List[str]]]
    modules: int
    functions: int

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {code: 0 for code in FLOW_CODES}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------
def _dotted_name(relpath: str) -> str:
    """``routing/engines/__init__.py`` -> ``repro.routing.engines``."""
    parts = relpath[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _collect_imports(module: ModuleInfo) -> None:
    """Index every import binding, including lazy function-body ones.

    Function-body imports are treated as module-wide bindings: the
    engines import their heavy collaborators lazily, and the call graph
    must still see through those names.
    """
    package = module.dotted.rsplit(".", 1)[0] if "." in module.dotted else "repro"
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                dotted = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports.setdefault(bound, (dotted, None))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.dotted.split(".")
                # level 1 = current package; strip one extra segment for
                # non-__init__ modules (dotted already names the module).
                if not module.relpath.endswith("__init__.py"):
                    base_parts = base_parts[:-1]
                base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                source = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                source = node.module or package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports.setdefault(bound, (source, alias.name))


def _class_engine_name(node: ast.ClassDef) -> Optional[str]:
    """The ``name: ClassVar[str] = "..."`` registry key, if declared."""
    for statement in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.AnnAssign):
            target, value = statement.target, statement.value
        elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target, value = statement.targets[0], statement.value
        if (
            isinstance(target, ast.Name)
            and target.id == "name"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return None


class _Program:
    """The whole-program index plus the propagation state."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # relpath -> module
        self.by_dotted: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> sorted func_ids (class-hierarchy analysis).
        self.methods_by_name: Dict[str, List[str]] = {}
        #: class id -> direct subclasses (resolved).
        self.children: Dict[str, List[str]] = {}
        # Propagated state:
        self.effects: Dict[str, Set[str]] = {}
        self.effect_origin: Dict[str, Dict[str, Origin]] = {}
        self.mutated: Dict[str, Dict[str, ParamOrigin]] = {}

    # -- collection ----------------------------------------------------
    def add_module(self, path: Path) -> Optional[ModuleInfo]:
        source = path.read_text(encoding="utf-8")
        relpath = _package_relpath(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return None
        module = ModuleInfo(
            relpath=relpath,
            dotted=_dotted_name(relpath),
            path=path,
            tree=tree,
            source=source,
        )
        _collect_imports(module)
        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, statement, class_name=None)
            elif isinstance(statement, ast.ClassDef):
                self._add_class(module, statement)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        module.top_level_names.add(target.id)
        self.modules[relpath] = module
        self.by_dotted[module.dotted] = module
        return module

    def _add_function(
        self,
        module: ModuleInfo,
        node: Any,
        class_name: Optional[str],
    ) -> FunctionInfo:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        func_id = f"{module.relpath}::{qualname}"
        args = node.args
        params = tuple(
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        )
        info = FunctionInfo(
            func_id=func_id,
            relpath=module.relpath,
            name=node.name,
            qualname=qualname,
            class_name=class_name,
            lineno=node.lineno,
            params=params,
            node=node,
        )
        self.functions[func_id] = info
        if class_name is None:
            module.functions[node.name] = func_id
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        class_id = f"{module.relpath}::{node.name}"
        info = ClassInfo(
            class_id=class_id,
            relpath=module.relpath,
            name=node.name,
            lineno=node.lineno,
            base_exprs=list(node.bases),
            engine_name=_class_engine_name(node),
        )
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = self._add_function(module, statement, class_name=node.name)
                info.methods[statement.name] = func.func_id
        module.classes[node.name] = info
        self.classes[class_id] = info

    # -- name resolution -----------------------------------------------
    def resolve_symbol(
        self, module: ModuleInfo, name: str
    ) -> Optional[Tuple[str, Any]]:
        """Resolve a bare name to ``("func"| "class" | "module", obj)``."""
        if name in module.functions:
            return ("func", self.functions[module.functions[name]])
        if name in module.classes:
            return ("class", module.classes[name])
        binding = module.imports.get(name)
        if binding is None:
            return None
        source, symbol = binding
        if symbol is None:
            target = self.by_dotted.get(source)
            return ("module", target) if target is not None else None
        submodule = self.by_dotted.get(f"{source}.{symbol}")
        if submodule is not None:
            return ("module", submodule)
        origin = self.by_dotted.get(source)
        if origin is None:
            return None
        if symbol in origin.functions:
            return ("func", self.functions[origin.functions[symbol]])
        if symbol in origin.classes:
            return ("class", origin.classes[symbol])
        # Re-exported names (engines/__init__ re-exports backends):
        chained = origin.imports.get(symbol)
        if chained is not None:
            chained_source, chained_symbol = chained
            if chained_symbol is None:
                target = self.by_dotted.get(chained_source)
                return ("module", target) if target is not None else None
            deeper = self.by_dotted.get(chained_source)
            if deeper is not None:
                if chained_symbol in deeper.functions:
                    return ("func", self.functions[deeper.functions[chained_symbol]])
                if chained_symbol in deeper.classes:
                    return ("class", deeper.classes[chained_symbol])
        return None

    def link_classes(self) -> None:
        """Resolve base-class names and build the hierarchy indexes."""
        for class_id in sorted(self.classes):
            info = self.classes[class_id]
            module = self.modules[info.relpath]
            for base in info.base_exprs:
                resolved: Optional[ClassInfo] = None
                if isinstance(base, ast.Name):
                    hit = self.resolve_symbol(module, base.id)
                    if hit is not None and hit[0] == "class":
                        resolved = hit[1]
                elif isinstance(base, ast.Attribute):
                    names = _chain_names(base)
                    if len(names) >= 2:
                        target = self._module_for_chain(module, names[:-1])
                        if target is not None and names[-1] in target.classes:
                            resolved = target.classes[names[-1]]
                if resolved is not None:
                    info.bases.append(resolved.class_id)
                    self.children.setdefault(resolved.class_id, []).append(class_id)
        for class_id in sorted(self.classes):
            for method, func_id in self.classes[class_id].methods.items():
                if method.startswith("__") and method.endswith("__"):
                    continue
                if method in _CHA_SKIP:
                    continue
                self.methods_by_name.setdefault(method, []).append(func_id)
        for func_ids in self.methods_by_name.values():
            func_ids.sort()

    def _module_for_chain(
        self, module: ModuleInfo, names: Sequence[str]
    ) -> Optional[ModuleInfo]:
        """The analyzed module a dotted name chain refers to, if any."""
        if not names:
            return None
        binding = module.imports.get(names[0])
        if binding is None:
            return None
        source, symbol = binding
        base = source if symbol is None else f"{source}.{symbol}"
        dotted = ".".join([base, *names[1:]])
        hit = self.by_dotted.get(dotted)
        if hit is not None:
            return hit
        # `import repro.obs` binds "repro": the chain itself extends it.
        if symbol is None and len(names) > 1:
            return self.by_dotted.get(".".join([source, *names[1:]]))
        return None

    # -- class hierarchy helpers ---------------------------------------
    def ancestors(self, class_id: str) -> List[str]:
        seen: List[str] = []
        stack = list(self.classes[class_id].bases)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.append(current)
            stack.extend(self.classes[current].bases)
        return seen

    def descendants(self, class_id: str) -> List[str]:
        seen: List[str] = []
        stack = list(self.children.get(class_id, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.append(current)
            stack.extend(self.children.get(current, ()))
        return seen

    def resolve_method(self, class_id: str, method: str) -> Optional[str]:
        """The defining func_id for ``class.method`` through the MRO."""
        info = self.classes[class_id]
        if method in info.methods:
            return info.methods[method]
        for ancestor in self.ancestors(class_id):
            ancestor_info = self.classes[ancestor]
            if method in ancestor_info.methods:
                return ancestor_info.methods[method]
        return None

    def family_methods(self, class_id: str, method: str) -> List[str]:
        """All defs of *method* in the class, its ancestors, and its
        descendants -- the virtual-dispatch candidate set."""
        family = [class_id, *self.ancestors(class_id), *self.descendants(class_id)]
        hits = []
        for member in family:
            func_id = self.classes[member].methods.get(method)
            if func_id is not None:
                hits.append(func_id)
        return sorted(set(hits))


# ----------------------------------------------------------------------
# Per-function local analysis
# ----------------------------------------------------------------------
def _module_rng_names(module: ModuleInfo) -> Dict[str, Set[str]]:
    """Alias sets for the RNG/clock/numpy modules visible in *module*."""
    names: Dict[str, Set[str]] = {
        "random": set(),
        "time": set(),
        "numpy": set(),
        "numpy.random": set(),
        "from_random": set(),
        "from_time": set(),
    }
    for bound, (source, symbol) in module.imports.items():
        if symbol is None:
            if source == "random":
                names["random"].add(bound)
            elif source == "time":
                names["time"].add(bound)
            elif source == "numpy":
                names["numpy"].add(bound)
            elif source == "numpy.random":
                names["numpy.random"].add(bound)
        else:
            if source == "random" and symbol in _RANDOM_FUNCS:
                names["from_random"].add(bound)
            elif source == "time" and symbol in _WALLCLOCK_FUNCS:
                names["from_time"].add(bound)
            elif source == "numpy" and symbol == "random":
                names["numpy.random"].add(bound)
    return names


class _FunctionScanner(ast.NodeVisitor):
    """One pass over a function body collecting local facts.

    Nested functions and lambdas are scanned as part of their enclosing
    function: defining a closure does not execute it, but every closure
    in this package is either called or returned by its definer, so
    folding its effects upward is a sound over-approximation.
    """

    def __init__(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        rng_names: Dict[str, Set[str]],
        cache_contract: Optional[CacheContract],
    ) -> None:
        self.func = func
        self.module = module
        self.rng = rng_names
        self.cache_contract = cache_contract
        self.raw_calls: List[ast.Call] = []
        self._set_names: Set[str] = set()
        self._locals: Set[str] = set(func.params)
        self._globals: Set[str] = set()
        #: local aliases of protected cache attributes (RPR008).
        self._cache_aliases: Dict[str, str] = {}
        #: iter nodes consumed order-insensitively (``sorted(... for ...)``).
        self._order_ok: Set[int] = set()
        for arg in [
            *func.node.args.posonlyargs,
            *func.node.args.args,
            *func.node.args.kwonlyargs,
        ]:
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                self._set_names.add(arg.arg)

    # -- effect recording ---------------------------------------------
    def _effect(self, name: str, node: ast.AST, desc: str) -> None:
        self.func.local_effects.setdefault(
            name, (getattr(node, "lineno", self.func.lineno), desc)
        )

    def _mutates(self, param: str, node: ast.AST, desc: str) -> None:
        self.func.local_mutated.setdefault(
            param, (getattr(node, "lineno", self.func.lineno), desc)
        )

    # -- bindings -------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)
        self.generic_visit(node)

    def _bind(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._locals.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element)
        elif isinstance(target, ast.Starred):
            self._bind(target.value)

    # -- mutation detection ---------------------------------------------
    def _cache_attr_in_chain(self, names: List[str]) -> Optional[str]:
        if self.cache_contract is None:
            return None
        if len(names) >= 2 and names[0] == "self":
            if names[1] in self.cache_contract.cache_attrs:
                return names[1]
        if names and names[0] in self._cache_aliases:
            return self._cache_aliases[names[0]]
        return None

    def _check_write(self, target: ast.AST, node: ast.AST, verb: str) -> None:
        """Classify one write (assignment/del/mutator call) by its root."""
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self._effect(
                    EFFECT_MODULE_STATE,
                    node,
                    f"{verb} to module-level name '{target.id}'",
                )
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        names = _chain_names(target)
        if not names:
            return
        root = names[0]
        cache_attr = self._cache_attr_in_chain(names)
        if cache_attr is not None:
            self.func.cache_writes.append(
                (cache_attr, getattr(node, "lineno", self.func.lineno))
            )
        if root in self.func.params:
            self._mutates(root, node, f"{verb} through parameter '{root}'")
        elif root in self.module.top_level_names and root not in self._locals:
            self._effect(
                EFFECT_MODULE_STATE,
                node,
                f"{verb} through module-level object '{root}'",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(target, node, "assignment")
        # RPR008 alias tracking: `cache = self._avoiding.setdefault(...)`.
        if self.cache_contract is not None and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                names = _chain_names(node.value)
                attr = self._cache_attr_in_chain(names)
                if attr is not None:
                    self._cache_aliases[target.id] = attr
                else:
                    self._cache_aliases.pop(target.id, None)
        # RPR003-style set-name inference (single flat scope).
        if _is_set_expr(node.value, self._set_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names.add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names.discard(target.id)
        for target in node.targets:
            self._bind(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write(node.target, node, "assignment")
        if isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                self._set_names.add(node.target.id)
            self._bind(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target, node, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write(target, node, "deletion")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self._bind(node.target)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self._bind(node.target)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind(item.optional_vars)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._locals.add(node.name)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if id(iter_node) in self._order_ok:
            return
        if _is_set_expr(iter_node, self._set_names):
            self._effect(
                EFFECT_SET_ITER,
                iter_node,
                "iterates a set without sorted()",
            )

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.raw_calls.append(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE
        ):
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.SetComp, ast.ListComp)):
                    for generator in arg.generators:
                        self._order_ok.add(id(generator.iter))
        self._check_rng_call(node)
        self._check_clock_call(node)
        self._check_io_call(node)
        self._check_mutator_call(node)
        self.generic_visit(node)

    def _check_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _MUTATOR_METHODS:
            return
        names = _chain_names(func.value)
        if not names:
            return
        root = names[0]
        desc = f"'.{func.attr}()' call"
        cache_attr = self._cache_attr_in_chain([*names, func.attr])
        if cache_attr is not None:
            self.func.cache_writes.append(
                (cache_attr, getattr(node, "lineno", self.func.lineno))
            )
        if root in self.func.params:
            self._mutates(root, node, f"{desc} through parameter '{root}'")
        elif root in self.module.top_level_names and root not in self._locals:
            self._effect(
                EFFECT_MODULE_STATE,
                node,
                f"{desc} on module-level object '{root}'",
            )

    def _check_rng_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root = func.value.id
            if root in self.rng["random"]:
                if func.attr in _RANDOM_FUNCS:
                    self._effect(EFFECT_RNG, node, f"'{root}.{func.attr}()'")
                elif func.attr == "Random" and not node.args and not node.keywords:
                    self._effect(EFFECT_RNG, node, f"unseeded '{root}.Random()'")
                return
        elif isinstance(func, ast.Name) and func.id in self.rng["from_random"]:
            self._effect(EFFECT_RNG, node, f"'{func.id}()' (from random)")
            return
        np_attr: Optional[str] = None
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.rng["numpy"]
            ):
                np_attr = func.attr
            elif (
                isinstance(value, ast.Name) and value.id in self.rng["numpy.random"]
            ):
                np_attr = func.attr
        if np_attr is not None:
            if np_attr in _SEEDED_NP_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    self._effect(
                        EFFECT_RNG, node, f"unseeded 'numpy.random.{np_attr}()'"
                    )
            else:
                self._effect(EFFECT_RNG, node, f"'numpy.random.{np_attr}'")

    def _check_clock_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.rng["time"]
            and func.attr in _WALLCLOCK_FUNCS
        ):
            self._effect(EFFECT_CLOCK, node, f"'{func.value.id}.{func.attr}()'")
        elif isinstance(func, ast.Name) and func.id in self.rng["from_time"]:
            self._effect(EFFECT_CLOCK, node, f"'{func.id}()' (from time)")

    def _check_io_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            if func.id not in self._locals:
                self._effect(EFFECT_IO, node, f"'{func.id}()'")
            return
        if isinstance(func, ast.Attribute):
            names = _chain_names(func.value)
            if func.attr in _IO_METHODS:
                self._effect(EFFECT_IO, node, f"'.{func.attr}()'")
            elif names and names[0] in self.module.imports:
                source, symbol = self.module.imports[names[0]]
                if symbol is None and source.split(".")[0] in _IO_MODULE_ROOTS:
                    self._effect(EFFECT_IO, node, f"'{source}.{func.attr}()'")
            elif "stdout" in names or "stderr" in names:
                self._effect(EFFECT_IO, node, f"'.{func.attr}()' on a stream")


def _scan_spans(func: FunctionInfo) -> None:
    """RPR010: every ``.span(...)`` call must be closed on all paths."""
    allowed: Set[int] = set()
    with_names: Set[str] = set()
    exit_names: Set[str] = set()
    assigned: Dict[int, str] = {}  # id(call node) -> assigned name
    span_calls: List[ast.Call] = []
    for node in ast.walk(func.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                allowed.add(id(item.context_expr))
                if isinstance(item.context_expr, ast.Name):
                    with_names.add(item.context_expr.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            allowed.add(id(node.value))
        elif isinstance(node, ast.Try):
            for statement in node.finalbody:
                for call in ast.walk(statement):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in {"__exit__", "close"}
                        and isinstance(call.func.value, ast.Name)
                    ):
                        exit_names.add(call.func.value.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                assigned[id(node.value)] = target.id
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in {"enter_context", "push", "callback"}:
                    for arg in node.args:
                        allowed.add(id(arg))
                elif node.func.attr == "span":
                    span_calls.append(node)
    for call in span_calls:
        if id(call) in allowed:
            continue
        name = assigned.get(id(call))
        if name is not None and (name in exit_names or name in with_names):
            continue
        func.unbalanced_spans.append(call.lineno)


# ----------------------------------------------------------------------
# Call resolution
# ----------------------------------------------------------------------
Candidate = Tuple[str, bool, Optional[str]]


def _resolve_call(
    program: _Program,
    module: ModuleInfo,
    func: FunctionInfo,
    node: ast.Call,
) -> List[Candidate]:
    """Candidate callees for one call expression."""
    candidates: List[Candidate] = []
    target = node.func
    if isinstance(target, ast.Name):
        hit = program.resolve_symbol(module, target.id)
        if hit is not None:
            kind, obj = hit
            if kind == "func":
                candidates.append((obj.func_id, False, None))
            elif kind == "class":
                init = program.resolve_method(obj.class_id, "__init__")
                if init is not None:
                    candidates.append((init, True, None))
    elif isinstance(target, ast.Attribute):
        receiver = target.value
        method = target.attr
        receiver_root = receiver.id if isinstance(receiver, ast.Name) else None
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and func.class_name is not None
        ):
            class_id = f"{func.relpath}::{func.class_name}"
            for ancestor in program.ancestors(class_id):
                hit_id = program.classes[ancestor].methods.get(method)
                if hit_id is not None:
                    candidates.append((hit_id, True, "self"))
                    break
        elif receiver_root == "self" and func.class_name is not None:
            class_id = f"{func.relpath}::{func.class_name}"
            if class_id in program.classes:
                for func_id in program.family_methods(class_id, method):
                    candidates.append((func_id, True, "self"))
        else:
            names = _chain_names(receiver)
            resolved_module = (
                program._module_for_chain(module, names) if names else None
            )
            if resolved_module is not None:
                if method in resolved_module.functions:
                    candidates.append(
                        (resolved_module.functions[method], False, None)
                    )
                elif method in resolved_module.classes:
                    init = program.resolve_method(
                        resolved_module.classes[method].class_id, "__init__"
                    )
                    if init is not None:
                        candidates.append((init, True, None))
            elif names and names[0] in module.imports:
                # A symbol imported from an analyzed module used as a
                # namespace (e.g. `sanitize.check_price_table`).
                hit = program.resolve_symbol(module, names[0])
                if hit is not None and hit[0] == "class" and len(names) == 1:
                    func_id = program.classes[hit[1].class_id].methods.get(method)
                    if func_id is not None:
                        candidates.append((func_id, True, None))
                elif method not in _CHA_SKIP:
                    candidates.extend(
                        (func_id, True, receiver_root)
                        for func_id in program.methods_by_name.get(method, ())
                    )
            elif method not in _CHA_SKIP:
                # Unknown receiver: class-hierarchy analysis.
                candidates.extend(
                    (func_id, True, receiver_root)
                    for func_id in program.methods_by_name.get(method, ())
                )
    # Bare function names passed as arguments (pool callbacks) count as
    # potential calls -- effects must not hide behind higher-order use.
    for arg in [*node.args, *[kw.value for kw in node.keywords]]:
        if isinstance(arg, ast.Name):
            hit = program.resolve_symbol(module, arg.id)
            if hit is not None and hit[0] == "func":
                candidates.append((hit[1].func_id, False, None))
    seen: Set[Candidate] = set()
    unique: List[Candidate] = []
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            unique.append(candidate)
    return unique


def _bind_arguments(
    call: ast.Call,
    callee: FunctionInfo,
    binds_receiver: bool,
    receiver_root: Optional[str],
) -> Dict[str, Optional[str]]:
    """Map callee parameter names to caller bare-name arguments.

    Only arguments that are plain names matter for parameter-mutation
    propagation; anything else maps to ``None``.
    """
    binding: Dict[str, Optional[str]] = {}
    params = list(callee.params)
    position = 0
    if binds_receiver and params:
        binding[params[0]] = receiver_root
        position = 1
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            break
        if position >= len(params):
            break
        binding[params[position]] = arg.id if isinstance(arg, ast.Name) else None
        position += 1
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in callee.params:
            binding[keyword.arg] = (
                keyword.value.id if isinstance(keyword.value, ast.Name) else None
            )
    return binding


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
def _propagate(program: _Program) -> None:
    """Transitive closure of effects and parameter mutation.

    Deterministic regardless of input file ordering: functions are
    visited in sorted ``func_id`` order each pass, and origins record
    the *first* discovery in that fixed order.
    """
    order = sorted(program.functions)
    for func_id in order:
        func = program.functions[func_id]
        program.effects[func_id] = set(func.local_effects)
        program.effect_origin[func_id] = {
            effect: ("local", line, desc)
            for effect, (line, desc) in func.local_effects.items()
        }
        program.mutated[func_id] = {
            param: ("local", line, desc)
            for param, (line, desc) in func.local_mutated.items()
        }
    changed = True
    while changed:
        changed = False
        for func_id in order:
            func = program.functions[func_id]
            effects = program.effects[func_id]
            origins = program.effect_origin[func_id]
            mutated = program.mutated[func_id]
            for call_site in func.calls:
                for callee_id, binds_receiver, receiver_root in call_site.candidates:
                    callee_effects = program.effects.get(callee_id)
                    if callee_effects is None:
                        continue
                    for effect in sorted(callee_effects - effects):
                        effects.add(effect)
                        origins[effect] = ("call", call_site.line, callee_id)
                        changed = True
                    callee_mutated = program.mutated[callee_id]
                    if not callee_mutated:
                        continue
                    callee = program.functions[callee_id]
                    binding = _bind_arguments(
                        call_site.node, callee, binds_receiver, receiver_root
                    )
                    for callee_param in sorted(callee_mutated):
                        caller_name = binding.get(callee_param)
                        if (
                            caller_name is not None
                            and caller_name in func.params
                            and caller_name not in mutated
                        ):
                            mutated[caller_name] = (
                                "call",
                                call_site.line,
                                callee_id,
                                callee_param,
                            )
                            changed = True


def _effect_chain(program: _Program, func_id: str, effect: str) -> str:
    """Human-readable witness: entry -> ... -> local origin."""
    steps: List[str] = []
    visited: Set[str] = set()
    current = func_id
    while True:
        if current in visited:
            steps.append(f"{current} (cycle)")
            break
        visited.add(current)
        origin = program.effect_origin[current].get(effect)
        if origin is None:
            steps.append(current)
            break
        if origin[0] == "local":
            _kind, line, desc = origin
            steps.append(f"{current} ({desc} at line {line})")
            break
        _kind, line, callee_id = origin
        steps.append(f"{current} (line {line})")
        current = callee_id
    return " -> ".join(steps)


def _mutation_chain(program: _Program, func_id: str, param: str) -> str:
    steps: List[str] = []
    visited: Set[Tuple[str, str]] = set()
    current, current_param = func_id, param
    while True:
        if (current, current_param) in visited:
            steps.append(f"{current} (cycle)")
            break
        visited.add((current, current_param))
        origin = program.mutated[current].get(current_param)
        if origin is None:
            steps.append(current)
            break
        if origin[0] == "local":
            _kind, line, desc = origin
            steps.append(f"{current} ({desc} at line {line})")
            break
        _kind, line, callee_id, callee_param = origin
        steps.append(f"{current} (line {line})")
        current, current_param = callee_id, callee_param
    return " -> ".join(steps)


# ----------------------------------------------------------------------
# Contract checks
# ----------------------------------------------------------------------
def _find_function(
    program: _Program, relpath: str, qualname: str
) -> Optional[FunctionInfo]:
    return program.functions.get(f"{relpath}::{qualname}")


def _registered_engines(program: _Program) -> List[Tuple[str, ClassInfo]]:
    """``(registered name, class)`` pairs from the registry module."""
    registry = program.modules.get(ENGINE_REGISTRY_RELPATH)
    if registry is None:
        return []
    engines: List[Tuple[str, ClassInfo]] = []
    for statement in registry.tree.body:
        call: Optional[ast.Call] = None
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
            call = statement.value
        if (
            call is None
            or not isinstance(call.func, ast.Name)
            or call.func.id != "register"
            or not call.args
            or not isinstance(call.args[0], ast.Name)
        ):
            continue
        hit = program.resolve_symbol(registry, call.args[0].id)
        if hit is not None and hit[0] == "class":
            info = hit[1]
            engines.append((info.engine_name or info.name, info))
    # Decorator form: @register above a class definition.
    for module in program.modules.values():
        for statement in module.tree.body:
            if not isinstance(statement, ast.ClassDef):
                continue
            for decorator in statement.decorator_list:
                name = (
                    decorator.id
                    if isinstance(decorator, ast.Name)
                    else getattr(decorator, "attr", None)
                )
                if name == "register":
                    info = module.classes[statement.name]
                    engines.append((info.engine_name or info.name, info))
    seen: Set[str] = set()
    unique: List[Tuple[str, ClassInfo]] = []
    for name, info in sorted(engines, key=lambda pair: pair[0]):
        if info.class_id not in seen:
            seen.add(info.class_id)
            unique.append((name, info))
    return unique


def _check_determinism_contracts(program: _Program) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    #: func_id -> (display label, graph param, relpath, line)
    entries: Dict[str, Tuple[str, Optional[str]]] = {}
    for contract in ENTRY_CONTRACTS:
        func = _find_function(program, contract.relpath, contract.function)
        if func is not None:
            entries.setdefault(func.func_id, (func.qualname, contract.graph_param))
    for engine_name, info in _registered_engines(program):
        for method in ENGINE_ENTRY_METHODS:
            func_id = program.resolve_method(info.class_id, method)
            if func_id is not None:
                func = program.functions[func_id]
                entries.setdefault(
                    func_id, (f"{func.qualname} (engine '{engine_name}')", "graph")
                )
    for func_id in sorted(entries):
        label, graph_param = entries[func_id]
        func = program.functions[func_id]
        effects = program.effects[func_id]
        for effect in DETERMINISM_EFFECTS:
            if effect in effects:
                chain = _effect_chain(program, func_id, effect)
                findings.append(
                    FlowFinding(
                        path=func.relpath,
                        line=func.lineno,
                        col=1,
                        code="RPR007",
                        message=(
                            f"entry point {label} must be transitively "
                            f"deterministic but {effect}: {chain}"
                        ),
                        function=func.qualname,
                        key=f"RPR007:{func.relpath}:{func.qualname}:{effect}",
                    )
                )
        if graph_param is not None and graph_param in program.mutated[func_id]:
            chain = _mutation_chain(program, func_id, graph_param)
            findings.append(
                FlowFinding(
                    path=func.relpath,
                    line=func.lineno,
                    col=1,
                    code="RPR007",
                    message=(
                        f"entry point {label} mutates its "
                        f"'{graph_param}' argument: {chain}"
                    ),
                    function=func.qualname,
                    key=(
                        f"RPR007:{func.relpath}:{func.qualname}:"
                        f"mutates-{graph_param}"
                    ),
                )
            )
    return findings


def _check_cache_contracts(program: _Program) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    for contract in CACHE_CONTRACTS:
        class_id = f"{contract.relpath}::{contract.class_name}"
        info = program.classes.get(class_id)
        if info is None:
            continue
        for method in sorted(info.methods):
            if method in contract.commit_methods:
                continue
            func = program.functions[info.methods[method]]
            for attr, line in func.cache_writes:
                findings.append(
                    FlowFinding(
                        path=func.relpath,
                        line=line,
                        col=1,
                        code="RPR008",
                        message=(
                            f"cache attribute '{attr}' of "
                            f"{contract.class_name} written outside the "
                            f"commit path (method '{method}'; allowed: "
                            f"{', '.join(contract.commit_methods)})"
                        ),
                        function=func.qualname,
                        key=(
                            f"RPR008:{func.relpath}:{func.qualname}:{attr}"
                        ),
                    )
                )
    return findings


def _signature_shape(node: Any) -> Tuple[Any, ...]:
    """The comparable shape of a function signature.

    Annotations are excluded -- they do not change the calling
    convention -- but names, kinds, defaults, and the keyword-only
    structure all participate.
    """
    args = node.args
    return (
        tuple(arg.arg for arg in args.posonlyargs),
        tuple(arg.arg for arg in args.args),
        tuple(ast.unparse(default) for default in args.defaults),
        args.vararg.arg if args.vararg else None,
        tuple(arg.arg for arg in args.kwonlyargs),
        tuple(
            ast.unparse(default) if default is not None else None
            for default in args.kw_defaults
        ),
        args.kwarg.arg if args.kwarg else None,
    )


def _render_signature(node: Any) -> str:
    args = node.args
    parts: List[str] = []
    positional = [*args.posonlyargs, *args.args]
    defaults = [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        parts.append(
            arg.arg if default is None else f"{arg.arg}={ast.unparse(default)}"
        )
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(
            arg.arg if default is None else f"{arg.arg}={ast.unparse(default)}"
        )
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    return f"({', '.join(parts)})"


def _check_signature_contracts(program: _Program) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    engines = _registered_engines(program)
    reference: Optional[ClassInfo] = None
    for name, info in engines:
        if name == "reference":
            reference = info
            break
    if reference is not None:
        for engine_name, info in engines:
            if info.class_id == reference.class_id:
                continue
            for method in ENGINE_PUBLIC_METHODS:
                reference_id = program.resolve_method(reference.class_id, method)
                engine_id = program.resolve_method(info.class_id, method)
                if reference_id is None or engine_id is None:
                    continue
                if engine_id == reference_id:
                    continue  # same inherited definition
                reference_func = program.functions[reference_id]
                engine_func = program.functions[engine_id]
                if _signature_shape(reference_func.node) != _signature_shape(
                    engine_func.node
                ):
                    findings.append(
                        FlowFinding(
                            path=engine_func.relpath,
                            line=engine_func.lineno,
                            col=1,
                            code="RPR009",
                            message=(
                                f"engine '{engine_name}' method '{method}' "
                                f"signature drifts from the reference "
                                f"engine: expected "
                                f"{_render_signature(reference_func.node)}, "
                                f"found {_render_signature(engine_func.node)}"
                            ),
                            function=engine_func.qualname,
                            key=(
                                f"RPR009:{engine_func.relpath}:"
                                f"{engine_func.qualname}:{method}"
                            ),
                        )
                    )
    # Keyword-only parity of the paired module-level entry points.
    pair = [
        _find_function(program, relpath, function)
        for relpath, function in KWONLY_PARITY
    ]
    if all(func is not None for func in pair) and len(pair) == 2:
        first, second = pair[0], pair[1]
        assert first is not None and second is not None
        first_tail = _signature_shape(first.node)[4:6]
        second_tail = _signature_shape(second.node)[4:6]
        if first_tail != second_tail:
            findings.append(
                FlowFinding(
                    path=second.relpath,
                    line=second.lineno,
                    col=1,
                    code="RPR009",
                    message=(
                        f"keyword-only tail of '{second.qualname}' "
                        f"{second_tail} drifts from '{first.qualname}' "
                        f"{first_tail}; the engine=/sanitize=/obs= "
                        f"surface must stay identical"
                    ),
                    function=second.qualname,
                    key=(
                        f"RPR009:{second.relpath}:{second.qualname}:kwonly-parity"
                    ),
                )
            )
    return findings


def _check_span_contracts(program: _Program) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    for func_id in sorted(program.functions):
        func = program.functions[func_id]
        for index, line in enumerate(func.unbalanced_spans):
            findings.append(
                FlowFinding(
                    path=func.relpath,
                    line=line,
                    col=1,
                    code="RPR010",
                    message=(
                        "obs span is not closed on all paths; open it in "
                        "a 'with' statement (or ExitStack.enter_context, "
                        "or pair __exit__ in a finally block)"
                    ),
                    function=func.qualname,
                    key=f"RPR010:{func.relpath}:{func.qualname}:{index}",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _cache_contract_for(func: FunctionInfo) -> Optional[CacheContract]:
    for contract in CACHE_CONTRACTS:
        if (
            func.relpath == contract.relpath
            and func.class_name == contract.class_name
        ):
            return contract
    return None


def _build_program(paths: Sequence[Path]) -> _Program:
    """Parse, index, scan, resolve, and propagate over *paths*."""
    program = _Program()
    for path in _iter_python_files(paths):
        program.add_module(path)
    program.link_classes()
    for func_id in sorted(program.functions):
        func = program.functions[func_id]
        module = program.modules[func.relpath]
        scanner = _FunctionScanner(
            func, module, _module_rng_names(module), _cache_contract_for(func)
        )
        scanner.visit(func.node)
        _scan_spans(func)
        for call in scanner.raw_calls:
            candidates = _resolve_call(program, module, func, call)
            if candidates:
                func.calls.append(
                    CallSite(
                        line=call.lineno,
                        node=call,
                        candidates=tuple(candidates),
                    )
                )
    _propagate(program)
    return program


def _run_contract_checks(program: _Program) -> List[FlowFinding]:
    findings = [
        *_check_determinism_contracts(program),
        *_check_cache_contracts(program),
        *_check_signature_contracts(program),
        *_check_span_contracts(program),
    ]
    return sorted(findings, key=lambda f: (f.path, f.line, f.code, f.key))


def _filter_suppressed(
    program: _Program, findings: Sequence[FlowFinding]
) -> List[FlowFinding]:
    """Honor line-level ``# repro-lint: ok(CODE)`` comments."""
    cache: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    kept: List[FlowFinding] = []
    for finding in findings:
        module = program.modules.get(finding.path)
        if module is None:
            kept.append(finding)
            continue
        if finding.path not in cache:
            cache[finding.path] = _suppressed_lines(module.source)
        codes = cache[finding.path].get(finding.line, ...)
        if codes is ... or (codes is not None and finding.code not in codes):
            kept.append(finding)
    return kept


def analyze_paths(
    paths: Sequence[Path],
    *,
    apply_suppressions: bool = True,
) -> AnalysisResult:
    """Whole-program analysis of every ``.py`` file under *paths*."""
    program = _build_program([Path(p) for p in paths])
    findings = _run_contract_checks(program)
    if apply_suppressions:
        findings = _filter_suppressed(program, findings)
    summaries: Dict[str, Dict[str, List[str]]] = {}
    for func_id in sorted(program.functions):
        summaries[func_id] = {
            "effects": sorted(program.effects[func_id]),
            "mutates_params": sorted(program.mutated[func_id]),
        }
    return AnalysisResult(
        findings=findings,
        summaries=summaries,
        modules=len(program.modules),
        functions=len(program.functions),
    )


# ----------------------------------------------------------------------
# Stale-suppression detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StaleSuppression:
    """A ``# repro-lint: ok`` comment that no longer suppresses anything."""

    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: stale suppression: {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "message": self.message}


def _comment_lines(source: str) -> Set[int]:
    """Line numbers holding an actual ``#`` comment token.

    The suppression grammar also appears inside docstrings (this file's
    own, for one); a regex over raw lines would misread those as
    suppression comments, so the stale check tokenizes first.
    """
    lines: Set[int] = set()
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                lines.add(token.start[0])
    except tokenize.TokenError:
        pass
    return lines


def check_suppressions(paths: Sequence[Path]) -> List[StaleSuppression]:
    """Suppression comments whose line produces no (lint or flow) finding.

    A comment naming specific codes is stale when *any* named code is
    not produced by its line; a blanket ``ok`` comment is stale when the
    line produces nothing at all.
    """
    program = _build_program([Path(p) for p in paths])
    flow_findings = _run_contract_checks(program)
    stale: List[StaleSuppression] = []
    for relpath in sorted(program.modules):
        module = program.modules[relpath]
        comment_lines = _comment_lines(module.source)
        suppressed = {
            line: codes
            for line, codes in _suppressed_lines(module.source).items()
            if line in comment_lines
        }
        if not suppressed:
            continue
        produced: Dict[int, Set[str]] = {}
        try:
            lint_findings = lint_source(
                module.source, relpath, apply_suppressions=False
            )
        except SyntaxError:
            continue
        for lint_finding in lint_findings:
            produced.setdefault(lint_finding.line, set()).add(lint_finding.code)
        for flow_finding in flow_findings:
            if flow_finding.path == relpath:
                produced.setdefault(flow_finding.line, set()).add(
                    flow_finding.code
                )
        for line in sorted(suppressed):
            codes = suppressed[line]
            actual = produced.get(line, set())
            if codes is None:
                if not actual:
                    stale.append(
                        StaleSuppression(
                            path=relpath,
                            line=line,
                            message=(
                                "blanket 'repro-lint: ok' but the line "
                                "produces no finding"
                            ),
                        )
                    )
            else:
                unused = sorted(codes - actual)
                if unused:
                    stale.append(
                        StaleSuppression(
                            path=relpath,
                            line=line,
                            message=(
                                f"code(s) {', '.join(unused)} no longer "
                                f"produced by this line"
                            ),
                        )
                    )
    return stale


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def default_baseline_path() -> Path:
    return Path(__file__).resolve().with_name("flow_baseline.json")


def load_baseline(path: Path) -> Set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return set(data.get("keys", []))


def write_baseline(findings: Sequence[FlowFinding], path: Path) -> int:
    keys = sorted({finding.key for finding in findings})
    payload = {
        "comment": (
            "Grandfathered repro.devtools.flow findings; the CI gate "
            "only fails on findings whose key is absent from this list. "
            "Regenerate with: python -m repro.devtools.flow --write-baseline"
        ),
        "keys": keys,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(keys)


def split_baseline(
    findings: Sequence[FlowFinding], baseline: Set[str]
) -> Tuple[List[FlowFinding], List[FlowFinding]]:
    """``(new, grandfathered)`` partition of *findings* by baseline key."""
    new = [finding for finding in findings if finding.key not in baseline]
    old = [finding for finding in findings if finding.key in baseline]
    return new, old


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _default_root() -> Path:
    return Path(__file__).resolve().parents[1]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.flow",
        description=(
            "Interprocedural determinism & contract analyzer for the "
            "repro package (codes RPR007-RPR010)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of grandfathered finding keys "
        "(default: flow_baseline.json next to this module)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit",
    )
    parser.add_argument(
        "--summaries",
        action="store_true",
        help="include per-function effect summaries in the output",
    )
    parser.add_argument(
        "--check-suppressions",
        action="store_true",
        help="flag '# repro-lint: ok' comments whose line no longer "
        "produces any finding (lint or flow)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [_default_root()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    if args.check_suppressions:
        stale = check_suppressions(paths)
        if args.as_json:
            print(
                json.dumps(
                    {"stale_suppressions": [entry.as_dict() for entry in stale]},
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for entry in stale:
                print(entry)
            print(f"flow: {len(stale)} stale suppression(s)")
        return 1 if stale else 0

    result = analyze_paths(paths)
    baseline_path = args.baseline or default_baseline_path()
    if args.write_baseline:
        count = write_baseline(result.findings, baseline_path)
        print(f"flow: wrote {count} baseline key(s) to {baseline_path}")
        return 0
    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    new, grandfathered = split_baseline(result.findings, baseline)
    counts: Dict[str, int] = {code: 0 for code in FLOW_CODES}
    for finding in new:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if args.as_json:
        payload: Dict[str, Any] = {
            "modules": result.modules,
            "functions": result.functions,
            "counts": counts,
            "findings": [finding.as_dict() for finding in new],
            "grandfathered": len(grandfathered),
        }
        if args.summaries:
            payload["summaries"] = result.summaries
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding)
        if args.summaries:
            for func_id, summary in result.summaries.items():
                if summary["effects"] or summary["mutates_params"]:
                    effects = ", ".join(summary["effects"]) or "-"
                    mutates = ", ".join(summary["mutates_params"]) or "-"
                    print(f"{func_id}: effects=[{effects}] mutates=[{mutates}]")
        print(
            f"flow: {len(new)} finding(s) "
            f"({len(grandfathered)} grandfathered) across "
            f"{result.modules} module(s) / {result.functions} function(s)"
        )
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
