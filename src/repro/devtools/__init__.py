"""Correctness tooling for the repro library.

Two layers, both repo-specific:

* :mod:`repro.devtools.lint` -- an AST linter enforcing the coding
  invariants the paper's guarantees silently rely on (no float equality
  on costs, no mutation of routing structures in protocol loops,
  deterministic iteration, seeded randomness only).
* :mod:`repro.devtools.sanitize` -- a runtime sanitizer: cheap,
  toggleable checks of the semantic invariants (the Theorem 1 price
  identity, non-negativity, zero payment off-path, LCP optimality,
  biconnectivity, monotone route convergence) wired into the protocol
  engines and the centralized mechanism.

:mod:`repro.devtools.check` bundles them with the external gates (ruff,
mypy, pytest) into the single entry point CI runs.

This package must stay import-light: the engines import
:mod:`repro.devtools.sanitize` on their hot paths.
"""

from __future__ import annotations

__all__ = ["lint", "sanitize", "check"]
