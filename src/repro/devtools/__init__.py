"""Correctness tooling for the repro library.

Three layers, all repo-specific:

* :mod:`repro.devtools.lint` -- an AST linter enforcing the coding
  invariants the paper's guarantees silently rely on (no float equality
  on costs, no mutation of routing structures in protocol loops,
  deterministic iteration, seeded randomness only).  Single-file,
  single-line: codes RPR001-RPR006.
* :mod:`repro.devtools.flow` -- the interprocedural companion: builds a
  whole-package call graph, infers transitive effect summaries
  (RNG, wall clock, unordered-set iteration, IO, mutation), and checks
  the declared contracts -- entry-point determinism, the incremental
  engine's cache commit path, engine signature parity, balanced obs
  spans.  Codes RPR007-RPR010, with a checked-in baseline for
  grandfathered findings.
* :mod:`repro.devtools.sanitize` -- a runtime sanitizer: cheap,
  toggleable checks of the semantic invariants (the Theorem 1 price
  identity, non-negativity, zero payment off-path, LCP optimality,
  biconnectivity, monotone route convergence) wired into the protocol
  engines and the centralized mechanism.

:mod:`repro.devtools.check` bundles them with the external gates (ruff,
mypy, pytest) into the single entry point CI runs, reporting per-rule
finding counts and a ``--json`` machine report.

This package must stay import-light: the engines import
:mod:`repro.devtools.sanitize` on their hot paths.
"""

from __future__ import annotations

__all__ = ["lint", "flow", "sanitize", "check"]
