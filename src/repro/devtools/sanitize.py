"""Runtime invariant sanitizer for the BGP/VCG core.

The paper's guarantees hold only under invariants the code otherwise
assumes silently.  This module makes them machine-checked:

* **Theorem 1 price identity** -- every stored price satisfies
  ``p^k_ij = c_k + Cost(P_{-k}(c; i, j)) - Cost(P(c; i, j))`` with the
  two path costs recomputed from scratch on derived graphs;
* **non-negativity** -- prices are ``>= 0`` up to :data:`~repro.types.EPSILON`;
* **zero payment off-path** -- a price row for ``(i, j)`` mentions only
  transit nodes of the selected path ``P(c; i, j)``;
* **LCP optimality** -- selected paths are re-verified against a fresh
  destination-rooted Dijkstra (cost and canonical tie-break);
* **path well-formedness** -- selected paths are simple, endpoint-
  correct walks over live links (catches mutated path tuples);
* **biconnectivity precondition** -- the mechanism refuses to run where
  Theorem 1 is undefined;
* **monotone convergence** -- across synchronous stages (and
  asynchronous deliveries) of a static epoch, a node's selected route
  key per destination never worsens.

Checks are **off by default** and cost one predicate call on the hot
paths when off.  Enable them with the ``REPRO_SANITIZE=1`` environment
variable (read at import), :func:`enable` / :func:`disable`, or the
:func:`sanitized` context manager::

    from repro.devtools import sanitize

    with sanitize.sanitized():
        result = distributed_mechanism(graph)

Violations raise :class:`repro.exceptions.SanitizerError`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    Mapping,
    NoReturn,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import SanitizerError, UnreachableError
from repro.types import EPSILON, Cost, NodeId, PathTuple, is_finite_cost

if TYPE_CHECKING:  # pragma: no cover - import-light on hot paths
    from repro.graphs.asgraph import ASGraph
    from repro.mechanism.vcg import PriceTable
    from repro.routing.dijkstra import RouteTree

__all__ = [
    "enabled",
    "enable",
    "disable",
    "sanitized",
    "check_biconnected",
    "check_path",
    "check_lcp",
    "check_price_row",
    "check_price_table",
    "check_routes_monotone",
    "checks_run",
]

_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY

#: Number of individual invariant checks executed since import; lets the
#: tests assert the zero-cost-when-off contract observably.
_checks_run: int = 0


def enabled() -> bool:
    """Whether sanitizer checks are currently active (the single
    predicate the hot paths consult)."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


@contextmanager
def sanitized(on: bool = True) -> Iterator[None]:
    """Temporarily force the sanitizer on (or off, with ``on=False``)."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


def checks_run() -> int:
    """Total individual checks executed so far (observability hook)."""
    return _checks_run


def _count() -> None:
    global _checks_run
    _checks_run += 1


def _fail(check: str, detail: str) -> NoReturn:
    raise SanitizerError(check=check, detail=detail)


# ----------------------------------------------------------------------
# Structural checks
# ----------------------------------------------------------------------
def check_biconnected(graph: "ASGraph") -> None:
    """Theorem 1 precondition: the k-avoiding paths must all exist."""
    _count()
    from repro.graphs.biconnectivity import articulation_points

    if graph.num_nodes < 3:
        _fail("biconnected", f"graph has {graph.num_nodes} nodes (< 3)")
    if not graph.is_connected():
        _fail("biconnected", "graph is disconnected")
    points = articulation_points(graph)
    if points:
        _fail(
            "biconnected",
            f"graph has articulation points {sorted(points)}; VCG prices "
            "are undefined at a monopoly cut",
        )


def check_path(
    path: PathTuple,
    *,
    has_edge: Callable[[NodeId, NodeId], bool],
    source: Optional[NodeId] = None,
    destination: Optional[NodeId] = None,
) -> None:
    """A selected path must be a simple, endpoint-correct walk over live
    links.  *has_edge* supplies the current topology (the engines pass
    their own mutable adjacency, the mechanism the immutable graph)."""
    _count()
    if len(path) < 1:
        _fail("path", "empty path")
    if source is not None and path[0] != source:
        _fail("path", f"path {path} does not start at source {source}")
    if destination is not None and path[-1] != destination:
        _fail("path", f"path {path} does not end at destination {destination}")
    if len(set(path)) != len(path):
        _fail("path", f"path {path} revisits a node (loop)")
    for u, v in zip(path, path[1:]):
        if not has_edge(u, v):
            _fail("path", f"path {path} uses a non-existent link ({u}, {v})")


# ----------------------------------------------------------------------
# Routing checks
# ----------------------------------------------------------------------
def check_lcp(
    graph: "ASGraph",
    source: NodeId,
    destination: NodeId,
    path: PathTuple,
    cost: Cost,
) -> None:
    """Spot-check one selected route against a fresh Dijkstra.

    Verifies (a) the claimed cost is the path's transit cost, and
    (b) cost and canonical tie-break agree with an independently
    recomputed route tree.
    """
    _count()
    from repro.routing.dijkstra import route_tree

    check_path(path, has_edge=graph.has_edge, source=source, destination=destination)
    actual = graph.path_cost(path) if len(path) >= 2 else 0.0
    if abs(actual - cost) > EPSILON:
        _fail(
            "lcp",
            f"claimed cost {cost} of path {path} differs from its "
            f"recomputed transit cost {actual}",
        )
    tree = route_tree(graph, destination)
    try:
        optimal_cost = tree.cost(source)
        optimal_path = tree.path(source)
    except UnreachableError:
        _fail("lcp", f"no route from {source} to {destination} exists at all")
    if cost > optimal_cost + EPSILON:
        _fail(
            "lcp",
            f"selected path {path} (cost {cost}) is not lowest-cost: "
            f"Dijkstra finds {optimal_path} (cost {optimal_cost})",
        )
    if path != optimal_path:
        _fail(
            "lcp",
            f"selected path {path} deviates from the canonical "
            f"tie-broken LCP {optimal_path}",
        )


# ----------------------------------------------------------------------
# Price checks
# ----------------------------------------------------------------------
def check_price_row(
    graph: "ASGraph",
    source: NodeId,
    destination: NodeId,
    path: PathTuple,
    row: Mapping[NodeId, Cost],
    *,
    lcp_cost: Optional[Cost] = None,
) -> None:
    """Validate one price row against Theorem 1.

    *row* maps transit nodes to ``p^k_{source,destination}``; *path* is
    the selected LCP the row belongs to.  Checks zero-payment-off-path,
    finiteness, non-negativity, and the VCG identity with the k-avoiding
    cost recomputed from scratch on ``G - k``.
    """
    from repro.routing.avoiding import avoiding_tree

    transit = set(path[1:-1])
    off_path = sorted(set(row) - transit)
    _count()
    if off_path:
        _fail(
            "zero-off-path",
            f"pair ({source}, {destination}): price entries for "
            f"non-transit nodes {off_path} (Theorem 1 pays them zero)",
        )
    if lcp_cost is None:
        lcp_cost = graph.path_cost(path) if len(path) >= 2 else 0.0
    for k in sorted(row):
        price = row[k]
        _count()
        if not is_finite_cost(price):
            _fail(
                "price-finite",
                f"price p^{k}_({source},{destination}) = {price!r} is not finite",
            )
        if price < -EPSILON:
            _fail(
                "price-nonnegative",
                f"price p^{k}_({source},{destination}) = {price} is negative",
            )
        detour = avoiding_tree(graph, destination, k)
        if not detour.has_route(source):
            _fail(
                "price-identity",
                f"no {k}-avoiding path from {source} to {destination}: "
                "the price is undefined (graph not biconnected?)",
            )
        expected = graph.cost(k) + detour.cost(source) - lcp_cost
        if abs(price - expected) > max(EPSILON, EPSILON * abs(expected)):
            _fail(
                "price-identity",
                f"price p^{k}_({source},{destination}) = {price} violates "
                f"Theorem 1: c_k + Cost(P_-k) - Cost(P) = {expected}",
            )


def check_price_table(
    graph: "ASGraph",
    table: "PriceTable",
    *,
    spot_check_lcp: bool = True,
) -> None:
    """Validate a full centralized price table against Theorem 1."""
    routes = table.routes
    for source, destination in sorted(table.rows):
        path = routes.path(source, destination)
        if spot_check_lcp:
            check_lcp(graph, source, destination, path, routes.cost(source, destination))
        check_price_row(
            graph,
            source,
            destination,
            path,
            table.rows[(source, destination)],
            lcp_cost=routes.cost(source, destination),
        )


# ----------------------------------------------------------------------
# Convergence checks
# ----------------------------------------------------------------------
RouteKeySnapshot = Dict[NodeId, Tuple[Cost, int, PathTuple]]


def check_routes_monotone(
    node_id: NodeId,
    previous: RouteKeySnapshot,
    current: RouteKeySnapshot,
) -> None:
    """Within one static epoch, a node's selected route keys only
    improve: path-vector relaxation from a cold start never replaces a
    selected route with a strictly worse one, and a stage that did so
    would break the Lemma 2 convergence argument.  The engines reset the
    baseline on every dynamic event / restart."""
    for destination, old_key in previous.items():
        _count()
        new_key = current.get(destination)
        if new_key is None:
            _fail(
                "monotone",
                f"node {node_id} lost its route to {destination} with no "
                "network event",
            )
        elif new_key > old_key:
            _fail(
                "monotone",
                f"node {node_id} worsened its route to {destination}: "
                f"{old_key} -> {new_key} with no network event",
            )


def snapshot_routes(
    routes: Mapping[NodeId, object],
) -> RouteKeySnapshot:
    """Capture ``destination -> (cost, hops, path)`` from a node's
    Loc-RIB (duck-typed over :class:`repro.bgp.table.RouteEntry`)."""
    snapshot: RouteKeySnapshot = {}
    for destination, entry in routes.items():
        path: PathTuple = entry.path  # type: ignore[attr-defined]
        cost: Cost = entry.cost  # type: ignore[attr-defined]
        snapshot[destination] = (cost, len(path) - 1, path)
    return snapshot


# ----------------------------------------------------------------------
# Distributed-result check (used by core.protocol)
# ----------------------------------------------------------------------
def check_distributed_prices(
    graph: "ASGraph",
    node_routes: Mapping[NodeId, Mapping[NodeId, object]],
    node_price_rows: Mapping[NodeId, Mapping[NodeId, Mapping[NodeId, Cost]]],
    *,
    sample_pairs: Optional[Sequence[Tuple[NodeId, NodeId]]] = None,
) -> None:
    """Validate a converged distributed computation node by node.

    *node_routes* maps node -> destination -> RouteEntry-like objects;
    *node_price_rows* maps node -> destination -> price row.  When
    *sample_pairs* is given only those (source, destination) pairs are
    checked (spot-check mode); default is exhaustive.
    """
    pairs: Optional[Set[Tuple[NodeId, NodeId]]] = (
        set(sample_pairs) if sample_pairs is not None else None
    )
    for source in sorted(node_routes):
        routes = node_routes[source]
        rows = node_price_rows.get(source, {})
        for destination in sorted(routes):
            if pairs is not None and (source, destination) not in pairs:
                continue
            entry = routes[destination]
            path: PathTuple = entry.path  # type: ignore[attr-defined]
            cost: Cost = entry.cost  # type: ignore[attr-defined]
            check_lcp(graph, source, destination, path, cost)
            check_price_row(
                graph,
                source,
                destination,
                path,
                rows.get(destination, {}),
                lcp_cost=cost,
            )
