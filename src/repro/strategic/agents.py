"""Declaration strategies for AS agents.

An agent's strategy maps its private true cost (and a private RNG) to a
declared cost.  The two canonical temptations are the footnote-1 lies:

* **understate** -- "announcing a lower-than-truthful cost might attract
  more than enough additional traffic to offset the lower price";
* **overstate** -- "announcing a higher-than-truthful cost might produce
  an increase in the price".

Under the VCG mechanism neither helps, which the game in
:mod:`repro.strategic.game` demonstrates.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.types import Cost


class StrategicAgent(abc.ABC):
    """A declaration strategy for one AS."""

    name: str = "abstract"

    @abc.abstractmethod
    def declare(self, true_cost: Cost, rng: random.Random) -> Cost:
        """The cost this agent announces, given its private true cost."""


class TruthfulAgent(StrategicAgent):
    """Declares the truth -- the strategy the mechanism rewards."""

    name = "truthful"

    def declare(self, true_cost: Cost, rng: random.Random) -> Cost:
        return true_cost


class OverstateAgent(StrategicAgent):
    """Inflates its cost by a fixed factor (and optional offset),
    hoping for a higher price."""

    name = "overstate"

    def __init__(self, factor: float = 1.5, offset: float = 0.0) -> None:
        if factor < 1.0 or offset < 0.0:
            raise ValueError("overstatement needs factor >= 1 and offset >= 0")
        self.factor = factor
        self.offset = offset

    def declare(self, true_cost: Cost, rng: random.Random) -> Cost:
        return true_cost * self.factor + self.offset


class UnderstateAgent(StrategicAgent):
    """Deflates its cost by a fixed factor, hoping to attract traffic."""

    name = "understate"

    def __init__(self, factor: float = 0.5) -> None:
        if not 0.0 <= factor <= 1.0:
            raise ValueError("understatement needs factor in [0, 1]")
        self.factor = factor

    def declare(self, true_cost: Cost, rng: random.Random) -> Cost:
        return true_cost * self.factor


class RandomLiar(StrategicAgent):
    """Declares a uniformly random cost in ``[0, spread * true + 1]`` --
    a fuzzer for the strategyproofness property."""

    name = "random"

    def __init__(self, spread: float = 3.0) -> None:
        if spread <= 0:
            raise ValueError("spread must be positive")
        self.spread = spread

    def declare(self, true_cost: Cost, rng: random.Random) -> Cost:
        return rng.uniform(0.0, self.spread * true_cost + 1.0)
