"""Protocol manipulation: the paper's closing open problem, made concrete.

Section 7: "even if the ASs input their true costs, what is to stop
them from running a different algorithm that computes prices more
favorable to them?"  This module exhibits one such algorithm and a
countermeasure:

* :class:`ManipulativePriceNode` declares its cost truthfully but
  *deflates the path cost* in its outgoing advertisements.  Downstream
  sources then (a) prefer routes through the manipulator and (b)
  compute ``p^k_ij = c_k + detour - c(i,j)`` with an understated
  ``c(i,j)`` -- inflating every price on the path, the manipulator's
  own included.  Traffic attraction and per-packet overpayment compound:
  the manipulator's utility strictly exceeds its honest-protocol
  utility even though its declared *input* is the truth.  This is why
  Theorem 1's strategyproofness (which quantifies only over inputs)
  does not close the incentive problem.

* :func:`audit_advertisement` is the obvious integrity check: an
  advertisement's cost must equal the sum of the declared per-node
  costs it itself carries.  The simple deflation is caught by every
  honest neighbor; a full defense (against colluding or
  cost-vector-forging manipulators) remains open, as the paper says.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.bgp.engine import SynchronousEngine
from repro.bgp.messages import RouteAdvertisement
from repro.bgp.policy import SelectionPolicy
from repro.core.price_node import PriceComputingNode, UpdateMode
from repro.graphs.asgraph import ASGraph
from repro.routing.paths import transit_cost
from repro.types import Cost, NodeId, is_zero_cost

PairKey = Tuple[NodeId, NodeId]


class ManipulativePriceNode(PriceComputingNode):
    """Runs the honest algorithm internally but advertises deflated
    path costs (its declared per-node cost stays truthful)."""

    def __init__(
        self,
        node_id: NodeId,
        declared_cost: Cost,
        policy: Optional[SelectionPolicy] = None,
        mode: UpdateMode = UpdateMode.MONOTONE,
        deflate_by: Cost = 0.0,
    ) -> None:
        super().__init__(node_id, declared_cost, policy, mode=mode)
        if deflate_by < 0:
            raise ValueError("deflation must be non-negative")
        self.deflate_by = deflate_by

    def _advert_for(self, destination: NodeId) -> RouteAdvertisement:
        honest = super()._advert_for(destination)
        if is_zero_cost(self.deflate_by) or len(honest.path) < 3:
            return honest  # nothing to skim on a direct route
        return RouteAdvertisement(
            sender=honest.sender,
            destination=honest.destination,
            path=honest.path,
            cost=max(0.0, honest.cost - self.deflate_by),
            node_costs=honest.node_costs,
            prices=honest.prices,
            generation=honest.generation,
        )


def audit_advertisement(advert: RouteAdvertisement) -> bool:
    """Integrity check: the advertised cost must equal the transit cost
    recomputed from the advertisement's own per-node cost claims."""
    if advert.is_self_route:
        return is_zero_cost(advert.cost)
    try:
        expected = transit_cost(lambda node: advert.node_costs[node], advert.path)
    except KeyError:
        return False
    return abs(expected - advert.cost) <= 1e-9


def audit_engine(engine: SynchronousEngine) -> Dict[NodeId, int]:
    """Audit every stored advertisement at every node; returns
    ``advertiser -> number of inconsistent advertisements seen``."""
    flagged: Dict[NodeId, int] = {}
    for node in engine.nodes.values():
        for neighbor in node.rib_in.neighbors():
            for destination in node.rib_in.destinations():
                advert = node.rib_in.advert(neighbor, destination)
                if advert is not None and not audit_advertisement(advert):
                    flagged[advert.sender] = flagged.get(advert.sender, 0) + 1
    return flagged


@dataclass(frozen=True)
class ManipulationOutcome:
    """Honest vs manipulative protocol runs, from the manipulator's view."""

    manipulator: NodeId
    deflate_by: Cost
    honest_payment: Cost
    honest_utility: Cost
    manipulated_payment: Cost
    manipulated_utility: Cost
    packets_carried_honest: float
    packets_carried_manipulated: float
    audit_flags: Dict[NodeId, int]

    @property
    def gain(self) -> Cost:
        return self.manipulated_utility - self.honest_utility

    @property
    def profitable(self) -> bool:
        return self.gain > 1e-9

    @property
    def caught(self) -> bool:
        return self.manipulator in self.audit_flags


def _run_and_account(
    graph: ASGraph,
    traffic: Mapping[PairKey, float],
    manipulator: NodeId,
    deflate_by: Cost,
) -> Tuple[Cost, Cost, float, SynchronousEngine]:
    """Run the protocol (deflation possibly zero) and account the
    manipulator's payment/utility from the sources' computed prices."""

    def factory(node_id: NodeId, cost: Cost, policy: SelectionPolicy):
        if node_id == manipulator:
            return ManipulativePriceNode(
                node_id, cost, policy, deflate_by=deflate_by
            )
        return PriceComputingNode(node_id, cost, policy)

    engine = SynchronousEngine(graph, node_factory=factory)
    engine.initialize()
    engine.run()

    payment = 0.0
    carried = 0.0
    for (source, destination), intensity in traffic.items():
        if not intensity:
            continue
        node = engine.nodes[source]
        entry = node.route(destination)
        if entry is None or manipulator not in entry.path[1:-1]:
            continue
        carried += intensity
        price = node.price_rows.get(destination, {}).get(manipulator, 0.0)
        payment += intensity * price
    utility = payment - graph.cost(manipulator) * carried
    return payment, utility, carried, engine


def manipulation_outcome(
    graph: ASGraph,
    manipulator: NodeId,
    traffic: Mapping[PairKey, float],
    deflate_by: Cost,
) -> ManipulationOutcome:
    """Compare the manipulator's economics across honest and deflated
    runs, and audit the deflated run."""
    honest_payment, honest_utility, honest_carried, _ = _run_and_account(
        graph, traffic, manipulator, 0.0
    )
    payment, utility, carried, engine = _run_and_account(
        graph, traffic, manipulator, deflate_by
    )
    return ManipulationOutcome(
        manipulator=manipulator,
        deflate_by=deflate_by,
        honest_payment=honest_payment,
        honest_utility=honest_utility,
        manipulated_payment=payment,
        manipulated_utility=utility,
        packets_carried_honest=honest_carried,
        packets_carried_manipulated=carried,
        audit_flags=audit_engine(engine),
    )
