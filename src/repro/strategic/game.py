"""The declaration game.

All agents simultaneously declare costs (per their strategies); the
mechanism routes and pays on the declared profile; utilities are
evaluated against the true costs.  Strategyproofness is a *dominant
strategy* property, so the decisive check is per-agent: fixing all
other declarations, switching yourself to the truth never lowers your
utility.  :func:`play_declaration_game` computes exactly that
counterfactual for every agent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.graphs.asgraph import ASGraph
from repro.mechanism.vcg import compute_price_table
from repro.mechanism.welfare import node_utility
from repro.strategic.agents import StrategicAgent, TruthfulAgent
from repro.traffic.matrix import TrafficMatrix
from repro.types import Cost, NodeId, costs_close


@dataclass
class GameOutcome:
    """What happened to every agent in one play of the game."""

    declared: Dict[NodeId, Cost]
    utilities: Dict[NodeId, Cost]
    truthful_counterfactuals: Dict[NodeId, Cost] = field(default_factory=dict)

    def regret(self, node: NodeId) -> Cost:
        """How much the agent would have gained by switching to the
        truth (>= 0 means lying never helped -- strategyproofness)."""
        return self.truthful_counterfactuals[node] - self.utilities[node]

    @property
    def any_liar_beat_truth(self) -> bool:
        """Whether some agent did strictly better lying than it would
        have done truthfully (should never happen)."""
        return any(self.regret(node) < -1e-9 for node in self.utilities)


def play_declaration_game(
    graph: ASGraph,
    strategies: Mapping[NodeId, StrategicAgent],
    traffic: TrafficMatrix,
    seed: int = 0,
) -> GameOutcome:
    """Play one round and evaluate per-agent truthful counterfactuals.

    *graph* carries the **true** costs; *strategies* may cover any
    subset of nodes (others default to truthful).
    """
    rng = random.Random(seed)
    truthful = TruthfulAgent()
    declared: Dict[NodeId, Cost] = {}
    for node in graph.nodes:
        strategy = strategies.get(node, truthful)
        declared[node] = max(0.0, float(strategy.declare(graph.cost(node), rng)))

    declared_graph = graph.with_costs(declared)
    table = compute_price_table(declared_graph)
    traffic_map = dict(traffic.items())

    utilities: Dict[NodeId, Cost] = {}
    counterfactuals: Dict[NodeId, Cost] = {}
    for node in graph.nodes:
        utilities[node] = node_utility(
            table, traffic_map, node, true_cost=graph.cost(node)
        )
        if costs_close(declared[node], graph.cost(node)):
            counterfactuals[node] = utilities[node]
            continue
        # Fix everyone else's declaration, switch this agent to truth.
        counter_costs = dict(declared)
        counter_costs[node] = graph.cost(node)
        counter_table = compute_price_table(graph.with_costs(counter_costs))
        counterfactuals[node] = node_utility(
            counter_table, traffic_map, node, true_cost=graph.cost(node)
        )
    return GameOutcome(
        declared=declared,
        utilities=utilities,
        truthful_counterfactuals=counterfactuals,
    )
